"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE.java [--args ...]`` — compile and run a MiniJava program
  on the unreplicated mini-JVM.
* ``replicate FILE.java [--strategy S] [--crash-at N]`` — run under
  primary-backup replication, optionally injecting a fail-stop.
* ``disasm FILE.java [--method Class.name/arity]`` — compile and print
  the bytecode of every method (or one method).
* ``bench [--profile P] [--experiment E]`` — regenerate the paper's
  tables and figures.
* ``workloads`` — list the SPEC JVM98-analogue workloads.
* ``conform [--workload W ...] [--quick]`` — exhaustive crash-point
  conformance sweep: every crash event index × strategy × transport,
  checking digest equality, the log prefix property, and exactly-once
  outputs; optionally writes a JSON report.  With ``--chained`` the
  sweep runs through the replica-group supervisor instead, crashing
  every event index of every generation down to ``--depth`` (including
  mid-checkpoint-transfer) and additionally asserting stale-epoch
  records are fenced.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bytecode.assembler import disassemble
from repro.env.environment import Environment
from repro.errors import ReproError
from repro.minijava import compile_program
from repro.replication.config import ReplicationConfig
from repro.replication.machine import ReplicatedJVM, run_unreplicated
from repro.runtime.stdlib import new_program_registry


def _load_source(path: str) -> str:
    with open(path) as fh:
        return fh.read()


# ======================================================================
# Shared replication flags
# ======================================================================
def transport_from_spec(spec: Optional[str], seed: int):
    """Resolve a ``--transport`` spec into a
    :class:`~repro.replication.config.ReplicationConfig` transport value:
    ``None``/``"memory"`` -> in-memory default, ``"socket"`` -> loopback
    TCP, ``"faulty:<profile>"`` -> a factory of seeded fault-injecting
    transports (every generation's faults are reproducible)."""
    from repro.replication.transport import FAULT_PROFILES, FaultyTransport

    if spec is None or spec == "memory":
        return None
    if spec == "socket":
        return "socket"
    kind, _, profile = spec.partition(":")
    profile = profile or "flaky"
    if kind == "faulty" and profile in FAULT_PROFILES:
        return lambda _gen=None: FaultyTransport(
            FAULT_PROFILES[profile], seed=seed
        )
    raise ReproError(
        f"unknown transport {spec!r}; expected 'memory', 'socket', or "
        f"'faulty:<profile>' with a profile from "
        f"{sorted(FAULT_PROFILES)}"
    )


def add_replication_options(
    parser: argparse.ArgumentParser,
    *,
    repeatable: bool = False,
    strategies: tuple = ("lock_sync", "thread_sched"),
    default_strategy: str = "lock_sync",
    engines: tuple = ("step", "slice", "block"),
    default_engine: str = "slice",
    default_seed: int = 20030622,
) -> argparse.ArgumentParser:
    """The shared ``--strategy/--transport/--engine/--seed`` block.

    Every subcommand that builds replicated machines (``replicate``,
    ``conform``, ``fleet``) takes its flags from here, so they spell and
    behave identically; ``repeatable`` switches to the append-style
    variants the sweep matrix needs."""
    if repeatable:
        parser.add_argument("--strategy", action="append", default=None,
                            choices=strategies,
                            help="strategies to sweep (repeatable; "
                                 "default all)")
        parser.add_argument("--transport", action="append", default=None,
                            metavar="T",
                            help="'memory', 'socket', or "
                                 "'faulty:<profile>' (repeatable)")
    else:
        parser.add_argument("--strategy", default=default_strategy,
                            choices=strategies)
        parser.add_argument("--transport", default=None, metavar="T",
                            help="'memory' (default), 'socket', or "
                                 "'faulty:<profile>'")
    parser.add_argument("--engine", choices=engines,
                        default=default_engine,
                        help="execution engine: 'step' re-enters per "
                             "bytecode, 'slice' batches to the next "
                             "safe-point event, 'block' additionally "
                             "compiles hot straight-line runs"
                             + (" ('both' sweeps each cell under every "
                                "engine)" if "both" in engines else ""))
    parser.add_argument("--seed", type=int, default=default_seed,
                        help="seed for fault schedules and generated "
                             "traffic")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    registry = compile_program(_load_source(args.file))
    env = Environment()
    result, _ = run_unreplicated(registry, args.main, args.args, env=env)
    sys.stdout.write(env.console.transcript())
    if result.uncaught:
        for vid, cls, message in result.uncaught:
            print(f"uncaught exception in {vid}: {cls}: {message}",
                  file=sys.stderr)
        return 1
    if args.stats:
        print(f"[instructions={result.instructions} "
              f"locks={result.lock_acquisitions} "
              f"reschedules={result.reschedules}]", file=sys.stderr)
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.runtime.jvm import JVMConfig

    registry = compile_program(_load_source(args.file))
    env = Environment()
    machine = ReplicatedJVM(registry, env=env, config=ReplicationConfig(
        strategy=args.strategy, crash_at=args.crash_at,
        hot_backup=args.hot, digest_interval=args.digest_interval,
        transport=transport_from_spec(args.transport, args.seed),
        jvm_config=JVMConfig(engine=args.engine),
    ))
    result = machine.run(args.main, args.args)
    sys.stdout.write(env.console.transcript())
    print(f"[outcome={result.outcome}"
          + (f" crash_event={result.crash_event}"
             f" detection_intervals={result.detection_intervals}"
             if result.failed_over else "")
          + "]", file=sys.stderr)
    metrics = result.primary_metrics
    print(f"[records={metrics.records_logged} "
          f"messages={metrics.messages_sent} bytes={metrics.bytes_sent} "
          f"commits={metrics.output_commits}]", file=sys.stderr)
    if args.digest_interval is not None:
        print(f"[digests={metrics.digest_records} "
              f"digest_bytes={metrics.digest_bytes}]", file=sys.stderr)
    return 0 if result.final_result.ok else 1


def _cmd_conform(args: argparse.Namespace) -> int:
    from repro.conform.report import build_report, render_report, write_report
    from repro.conform.sweep import SweepConfig, run_sweep
    from repro.conform.workloads import get_workload, workload_names

    if args.list:
        for name in workload_names():
            workload = get_workload(name)
            print(f"{name:10s} {workload.description}")
        return 0

    workloads = args.workload or (
        ["counter"] if args.quick else list(workload_names())
    )
    transports = args.transport or (
        ["memory", "faulty:flaky"] if args.quick
        else ["memory", "faulty:flaky", "faulty:lossy"]
    )
    engines = (["step", "slice", "block"] if args.engine == "both"
               else [args.engine])

    if args.byzantine:
        from repro.conform.byzantine import ByzantineConfig, run_byzantine_sweep
        from repro.conform.report import (
            build_byzantine_report, render_byzantine_report,
        )

        byz_config = ByzantineConfig(
            workloads=workloads,
            n_members=args.members,
            seed=args.seed,
            digest_interval=args.digest_interval or 2,
            stride=args.stride,
            engine=engines[0],
            variants="step+slice" if args.variants else None,
        )

        def byzantine_progress(cell) -> None:
            status = "ok" if cell.ok else f"{len(cell.failures)} FAILURES"
            print(f"[{cell.workload} n={args.members} {cell.engine} "
                  f"variants={cell.variants or 'off'}: "
                  f"{cell.cells} seeded lies {status}]",
                  file=sys.stderr)

        cells = run_byzantine_sweep(byz_config, progress=byzantine_progress)
        report = build_byzantine_report(byz_config, cells)
        if args.json:
            write_report(args.json, report)
        print(render_byzantine_report(report))
        return 0 if report["ok"] else 1

    if args.chained:
        from repro.conform.chained import ChainedConfig, run_chained_sweep
        from repro.conform.report import (
            build_chained_report, render_chained_report,
        )

        intervals = [None if n == 0 else n
                     for n in (args.checkpoint_interval or [0])]
        chained_config = ChainedConfig(
            workloads=workloads,
            strategies=args.strategy or ["lock_sync", "thread_sched"],
            transports=transports,
            depth=args.depth,
            seed=args.seed,
            stride=args.stride,
            engines=engines,
            checkpoint_intervals=intervals,
        )

        def chained_progress(cell) -> None:
            status = ("ok" if cell.ok
                      else f"{len(cell.failures)} FAILURES")
            ckpt = ("off" if cell.checkpoint_interval is None
                    else cell.checkpoint_interval)
            print(f"[{cell.workload} {cell.strategy} {cell.transport} "
                  f"{cell.engine} ckpt={ckpt}: "
                  f"{cell.crash_points} chained crash points {status}]",
                  file=sys.stderr)

        cells = run_chained_sweep(chained_config, progress=chained_progress)
        report = build_chained_report(chained_config, cells)
        if args.json:
            write_report(args.json, report)
        print(render_chained_report(report))
        return 0 if report["ok"] else 1

    config = SweepConfig(
        workloads=workloads,
        strategies=args.strategy or ["lock_sync", "thread_sched"],
        transports=transports,
        seed=args.seed,
        digest_interval=args.digest_interval or 2,
        stride=args.stride,
        workers=args.workers,
        shrink=not args.no_shrink,
        engines=engines,
    )

    def progress(cell) -> None:
        status = "ok" if cell.ok else f"{len(cell.failures)} FAILURES"
        print(f"[{cell.workload} {cell.strategy} {cell.transport} "
              f"{cell.engine}: "
              f"{cell.crash_points} crash points {status}]",
              file=sys.stderr)

    cells = run_sweep(config, progress=progress)
    report = build_report(config, cells)
    if args.json:
        write_report(args.json, report)
    print(render_report(report))
    return 0 if report["ok"] else 1


def _parse_lie_spec(text: str):
    """``digest:EPOCH`` / ``output:ORDINAL`` -> a config ``lie_at``."""
    kind, sep, num = text.partition(":")
    if not sep or kind not in ("digest", "output"):
        raise ReproError(
            f"--lie-spec wants 'digest:EPOCH' or 'output:ORDINAL', "
            f"got {text!r}"
        )
    try:
        return (kind, int(num))
    except ValueError:
        raise ReproError(
            f"--lie-spec target must be an integer, got {text!r}"
        ) from None


def _parse_outage(text: str):
    """``START:END[:DIR]`` -> a :class:`LinkOutage`."""
    from repro.replication.transport import LinkOutage

    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise ReproError(
            f"--outage wants 'START:END[:both|fwd|rev]', got {text!r}"
        )
    try:
        start, end = float(parts[0]), float(parts[1])
    except ValueError:
        raise ReproError(
            f"--outage window must be numeric ticks, got {text!r}"
        ) from None
    return LinkOutage(start, end, parts[2] if len(parts) == 3 else "both")


def _parse_member_partition(text: str):
    """``MEMBER:START:END[:UNIT]`` -> a :class:`MemberPartition`."""
    from repro.replication.transport import MemberPartition

    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise ReproError(
            f"--member-partition wants 'MEMBER:START:END[:records|time]', "
            f"got {text!r}"
        )
    try:
        member = int(parts[0])
        start, end = float(parts[1]), float(parts[2])
    except ValueError:
        raise ReproError(
            f"--member-partition fields must be numeric, got {text!r}"
        ) from None
    return MemberPartition(member, start, end,
                           parts[3] if len(parts) == 4 else "records")


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.fleet import Fleet, TrafficSpec
    from repro.runtime.jvm import JVMConfig
    from repro.workloads import DB_SERVER

    keyspace = args.keyspace
    if keyspace is None:
        keyspace = int(DB_SERVER.params_for(args.profile)["keyspace"])
    spec = TrafficSpec(qps=args.qps, n_requests=args.requests,
                       n_clients=args.clients, keyspace=keyspace,
                       seed=args.seed)
    crash_for = None
    if args.crash_shard is not None:
        if args.voting:
            raise ReproError(
                "--crash-shard injects fail-stop, but a voting fleet "
                "convicts on evidence; seed a liar with --lie-shard and "
                "--lie-spec instead"
            )
        if not 0 <= args.crash_shard < args.shards:
            raise ReproError(
                f"--crash-shard {args.crash_shard} out of range for "
                f"{args.shards} shards"
            )
        schedule = {args.crash_generation: args.crash_at}
        crash_for = (lambda s: schedule if s == args.crash_shard else None)

    lie_at = None
    if not args.voting:
        for flag, value in (("--members", args.members != 3),
                            ("--variants", args.variants),
                            ("--lie-shard", args.lie_shard is not None),
                            ("--lie-spec", args.lie_spec is not None)):
            if value:
                raise ReproError(f"{flag} only makes sense with --voting")
    else:
        if args.members < 3 or args.members % 2 == 0:
            raise ReproError(
                f"a voting fleet needs an odd member count of at least "
                f"3 (n = 2f + 1), got {args.members}"
            )
        if (args.lie_spec is None) != (args.lie_shard is None):
            raise ReproError(
                "--lie-shard and --lie-spec come as a pair: the shard "
                "that lies and where it lies"
            )
        if args.lie_spec is not None:
            lie_at = _parse_lie_spec(args.lie_spec)

    transport_for = None
    base_spec = transport_from_spec(args.transport, args.seed)
    if args.outage or args.member_partition:
        if args.chaos_shard is None:
            raise ReproError(
                "--outage/--member-partition describe the chaos "
                "schedule; pick the shard with --chaos-shard"
            )
    if args.chaos_shard is not None:
        from repro.replication.transport import ChaosTransport

        if not 0 <= args.chaos_shard < args.shards:
            raise ReproError(
                f"--chaos-shard {args.chaos_shard} out of range for "
                f"{args.shards} shards"
            )
        chaos = ChaosTransport(
            seed=args.seed,
            outages=tuple(_parse_outage(t) for t in (args.outage or ())),
            member_partitions=tuple(
                _parse_member_partition(t)
                for t in (args.member_partition or ())
            ),
        )
        transport_for = (lambda s: chaos if s == args.chaos_shard
                         else base_spec)

    fleet = Fleet(
        args.shards,
        profile=args.profile,
        config=ReplicationConfig(
            # Voting needs the lockstep strategy (per-epoch digest
            # ballots); the flag is forced rather than surfaced.
            strategy="thread_sched" if args.voting else args.strategy,
            transport=base_spec,
            jvm_config=JVMConfig(engine=args.engine),
            voting=args.voting,
            n_members=args.members,
            variants="step+slice" if args.variants else None,
            lie_at=lie_at,
            lie_member=args.lie_member,
        ),
        crash_schedule_for=crash_for,
        lie_shard=args.lie_shard,
        transport_for=transport_for,
    )
    metrics = fleet.serve_open_loop(spec)
    report = metrics.as_dict()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    print(f"[fleet shards={metrics.n_shards} "
          f"offered={metrics.requests_offered} "
          f"committed={metrics.responses_committed} "
          f"lost={metrics.responses_lost} "
          f"duplicated={metrics.responses_duplicated} "
          f"wrong={metrics.responses_wrong}]", file=sys.stderr)
    print(f"[latency p50={metrics.p50_latency_ms:.3f}ms "
          f"p99={metrics.p99_latency_ms:.3f}ms "
          f"throughput={metrics.throughput_rps:.1f}rps "
          f"makespan={metrics.makespan_ms:.1f}ms]", file=sys.stderr)
    print(f"[failovers={metrics.failovers_absorbed} "
          f"requeued={metrics.requests_requeued} "
          f"exactly_once={metrics.exactly_once}]", file=sys.stderr)
    if args.voting:
        print(f"[voting members={args.members} "
              f"votes={metrics.votes_cast} "
              f"certs={metrics.quorum_certs} "
              f"gated={metrics.outputs_gated} "
              f"quarantined={metrics.members_quarantined} "
              f"rearmed={metrics.members_rearmed} "
              f"suspected={metrics.members_suspected} "
              f"cleared={metrics.suspicions_cleared} "
              f"demotions={metrics.engine_demotions}"
              + (f" degraded_to={metrics.degraded_to}"
                 if metrics.degraded_to else "")
              + "]", file=sys.stderr)
    return 0 if metrics.exactly_once else 1


def _cmd_disasm(args: argparse.Namespace) -> int:
    registry = compile_program(_load_source(args.file))
    base = set(new_program_registry().class_names())
    for class_name in registry.class_names():
        if class_name in base:
            continue
        cls = registry.resolve(class_name)
        for (name, arity) in sorted(cls.methods):
            method = cls.methods[(name, arity)]
            label = f"{class_name}.{name}/{arity}"
            if args.method and args.method != label:
                continue
            flags = " ".join(flag for flag, on in (
                ("static", method.is_static),
                ("synchronized", method.is_synchronized),
                ("native", method.is_native),
            ) if on)
            print(f"--- {label} [{flags or 'instance'}] "
                  f"max_locals={method.code.max_locals if method.code else 0} "
                  f"max_stack={method.max_stack}")
            if method.code is not None:
                print(disassemble(method.code))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.runner import get_all_runs
    from repro.harness.tables import (
        render_fig2, render_fig3, render_fig4, render_table2,
    )

    renderers = {
        "table2": render_table2, "fig2": render_fig2,
        "fig3": render_fig3, "fig4": render_fig4,
    }
    runs = get_all_runs(args.profile)
    wanted = [args.experiment] if args.experiment else list(renderers)
    for name in wanted:
        print(renderers[name](runs))
        print()
    return 0


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import ALL_WORKLOADS

    for w in ALL_WORKLOADS:
        threads = "multi-threaded" if w.multithreaded else "single-threaded"
        print(f"{w.name:10s} {threads:15s} {w.description}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import io
    import pstats

    from repro.conform.workloads import get_workload, workload_names
    from repro.runtime.jvm import JVMConfig

    target = args.target
    if target in workload_names():
        workload = get_workload(target)
        registry = workload.registry()
        main_class = workload.main_class
        config = workload.jvm_config(engine=args.engine)
    else:
        kernels = {}
        try:
            from benchmarks.bench_interpreter import _KERNEL_SOURCES
            kernels = _KERNEL_SOURCES
        except ImportError:
            pass
        if target in kernels:
            registry = compile_program(kernels[target] % args.reps)
            main_class = "Main"
        else:
            registry = compile_program(_load_source(target))
            main_class = args.main
        config = JVMConfig(engine=args.engine)

    profiler = cProfile.Profile()
    profiler.enable()
    result, _ = run_unreplicated(registry, main_class,
                                 env=Environment(), jvm_config=config)
    profiler.disable()

    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream) \
        .sort_stats(args.sort).print_stats(args.top)
    print(f"[profile target={target} engine={args.engine} "
          f"instructions={result.instructions} ok={result.ok}]",
          file=sys.stderr)
    print(stream.getvalue())
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A fault-tolerant mini-JVM (DSN 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a MiniJava program")
    p_run.add_argument("file")
    p_run.add_argument("--main", default="Main")
    p_run.add_argument("--args", nargs="*", default=[])
    p_run.add_argument("--stats", action="store_true")
    p_run.set_defaults(fn=_cmd_run)

    p_rep = sub.add_parser("replicate", help="run with fault tolerance")
    p_rep.add_argument("file")
    p_rep.add_argument("--main", default="Main")
    p_rep.add_argument("--args", nargs="*", default=[])
    add_replication_options(
        p_rep, strategies=("lock_sync", "thread_sched", "lock_intervals"),
    )
    p_rep.add_argument("--crash-at", type=int, default=None)
    p_rep.add_argument("--hot", action="store_true",
                       help="keep the backup updated during normal "
                            "operation (hot standby)")
    p_rep.add_argument("--digest-interval", type=int, default=None,
                       metavar="N",
                       help="emit a state-digest record every N "
                            "replicated scheduling events (plus one at "
                            "exit); the backup verifies them during "
                            "replay")
    p_rep.set_defaults(fn=_cmd_replicate)

    p_dis = sub.add_parser("disasm", help="show compiled bytecode")
    p_dis.add_argument("file")
    p_dis.add_argument("--method", default=None,
                       help="only this method (Class.name/arity)")
    p_dis.set_defaults(fn=_cmd_disasm)

    p_bench = sub.add_parser("bench", help="regenerate paper tables")
    p_bench.add_argument("--profile", default="test",
                         choices=("test", "bench"))
    p_bench.add_argument("--experiment", default=None,
                         choices=("table2", "fig2", "fig3", "fig4"))
    p_bench.set_defaults(fn=_cmd_bench)

    p_wl = sub.add_parser("workloads", help="list benchmark workloads")
    p_wl.set_defaults(fn=_cmd_workloads)

    p_prof = sub.add_parser(
        "profile",
        help="cProfile one unreplicated run and print the hot spots",
    )
    p_prof.add_argument("target",
                        help="a conform workload name, an interpreter "
                             "bench kernel name (tight_loop, call_heavy, "
                             "monitor_heavy), or a MiniJava source file")
    p_prof.add_argument("--main", default="Main",
                        help="main class (source-file targets only)")
    p_prof.add_argument("--engine",
                        choices=("step", "slice", "block"),
                        default="slice")
    p_prof.add_argument("--reps", type=int, default=50_000, metavar="N",
                        help="iteration count for bench-kernel targets")
    p_prof.add_argument("--top", type=int, default=25, metavar="N",
                        help="rows of the stats table to print")
    p_prof.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "calls"),
                        help="pstats sort key")
    p_prof.set_defaults(fn=_cmd_profile)

    p_conf = sub.add_parser(
        "conform",
        help="exhaustive crash-point conformance sweep",
    )
    p_conf.add_argument("--workload", action="append", default=None,
                        help="conform workload name (repeatable; "
                             "--list shows them)")
    p_conf.add_argument("--quick", action="store_true",
                        help="small pinned matrix for CI smoke runs "
                             "(counter workload, memory + seeded flaky "
                             "transports)")
    add_replication_options(
        p_conf, repeatable=True, engines=("step", "slice", "block", "both"),
    )
    p_conf.add_argument("--workers", type=int, default=0, metavar="N",
                        help="crash points checked in N parallel "
                             "processes (0 = inline)")
    p_conf.add_argument("--stride", type=int, default=1, metavar="N",
                        help="check every Nth crash index (failures "
                             "are shrunk back to the minimal point)")
    p_conf.add_argument("--digest-interval", type=int, default=None,
                        metavar="N",
                        help="schedule records per periodic digest "
                             "(default 2)")
    p_conf.add_argument("--no-shrink", action="store_true",
                        help="report the first failing point as-is")
    p_conf.add_argument("--chained", action="store_true",
                        help="sweep chained failovers through the "
                             "replica-group supervisor: crash every "
                             "event index of every generation "
                             "(including mid-checkpoint-transfer) and "
                             "assert exactly-once output and digest "
                             "equality against an unreplicated run")
    p_conf.add_argument("--depth", type=int, default=2, metavar="K",
                        help="generations to sweep in --chained mode "
                             "(default 2)")
    p_conf.add_argument("--checkpoint-interval", action="append",
                        type=int, default=None, metavar="N", dest="checkpoint_interval",
                        help="steady-state checkpoint interval(s) to add "
                             "to the --chained matrix (repeatable; each "
                             "value sweeps the crash indices with delta "
                             "checkpointing every N slices and checks "
                             "that recovery replay stays bounded by the "
                             "retained-log high-water mark; 0 = off)")
    p_conf.add_argument("--byzantine", action="store_true",
                        help="sweep seeded Byzantine corruptions through "
                             "the quorum-voting group: for every digest "
                             "epoch and output the honest group "
                             "certifies, re-run with a lying proposer "
                             "and a bit-flipped follower, asserting the "
                             "liar is outvoted, quarantined, and "
                             "re-armed with outputs byte-identical to "
                             "an unreplicated run")
    p_conf.add_argument("--variants", action="store_true",
                        help="run --byzantine cells under the "
                             "step+slice multi-variant engine guard "
                             "(alarms only on engine-correlated "
                             "divergence)")
    p_conf.add_argument("--members", type=int, default=3, metavar="N",
                        help="voting group size for --byzantine "
                             "(odd, n = 2f+1; default 3)")
    p_conf.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable report here")
    p_conf.add_argument("--list", action="store_true",
                        help="list conform workloads and exit")
    p_conf.set_defaults(fn=_cmd_conform)

    p_fleet = sub.add_parser(
        "fleet",
        help="serve open-loop traffic on a sharded replica fleet",
    )
    p_fleet.add_argument("--shards", type=int, default=3, metavar="N",
                         help="replica groups, one keyspace shard each")
    p_fleet.add_argument("--qps", type=float, default=400.0,
                         help="open-loop arrival rate")
    p_fleet.add_argument("--requests", type=int, default=500, metavar="N")
    p_fleet.add_argument("--clients", type=int, default=8, metavar="N",
                         help="simulated client ids issuing requests")
    p_fleet.add_argument("--keyspace", type=int, default=None, metavar="K",
                         help="traffic keyspace (default: the workload "
                              "profile's)")
    p_fleet.add_argument("--profile", default="test",
                         choices=("test", "bench"))
    p_fleet.add_argument("--crash-shard", type=int, default=None,
                         metavar="S",
                         help="inject a primary fail-stop on shard S "
                              "mid-load")
    p_fleet.add_argument("--crash-at", type=int, default=40, metavar="E",
                         help="crash event index within the generation "
                              "(with --crash-shard)")
    p_fleet.add_argument("--crash-generation", type=int, default=0,
                         metavar="G",
                         help="generation to crash (with --crash-shard)")
    p_fleet.add_argument("--voting", action="store_true",
                         help="run every shard as an n-member quorum-"
                              "voting group (Byzantine fault model) "
                              "instead of a primary-backup pair")
    p_fleet.add_argument("--members", type=int, default=3, metavar="N",
                         help="voting group size per shard (odd, "
                              "n = 2f+1; with --voting; default 3)")
    p_fleet.add_argument("--variants", action="store_true",
                         help="arm the step+slice multi-variant engine "
                              "guard on every voting shard (a confirmed "
                              "engine-correlated divergence demotes the "
                              "whole fleet to the step engine)")
    p_fleet.add_argument("--lie-shard", type=int, default=None,
                         metavar="S",
                         help="seed one Byzantine liar on shard S "
                              "(with --voting and --lie-spec)")
    p_fleet.add_argument("--lie-spec", default=None, metavar="KIND:N",
                         help="where the liar lies: 'digest:EPOCH' or "
                              "'output:ORDINAL' (serving traffic is "
                              "single-threaded, so only output lies "
                              "fire under load)")
    p_fleet.add_argument("--lie-member", type=int, default=0, metavar="M",
                         help="which member of the lying shard lies "
                              "(0 = the proposer; default 0)")
    p_fleet.add_argument("--chaos-shard", type=int, default=None,
                         metavar="S",
                         help="run shard S on a seeded ChaosTransport "
                              "carrying the --outage/--member-partition "
                              "schedule")
    p_fleet.add_argument("--outage", action="append", default=None,
                         metavar="START:END[:DIR]",
                         help="cut the chaos shard's link over a "
                              "virtual-time window; DIR is 'both' "
                              "(default), 'fwd', or the asymmetric "
                              "'rev' (repeatable)")
    p_fleet.add_argument("--member-partition", action="append",
                         default=None, metavar="M:START:END[:UNIT]",
                         help="partition member M of the chaos shard "
                              "from the delivered log; UNIT is "
                              "'records' (default) or 'time' "
                              "(repeatable)")
    p_fleet.add_argument("--json", default=None, metavar="PATH",
                         help="write the fleet metrics report here")
    add_replication_options(p_fleet)
    p_fleet.set_defaults(fn=_cmd_fleet)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except OSError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

"""MiniJava recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import CompileError
from repro.minijava import ast
from repro.minijava.lexer import Token, tokenize

_PRIMITIVES = {"int", "float", "boolean", "String", "void"}

#: Binary operator precedence tiers, lowest first.
_BINARY_TIERS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],     # instanceof handled at this tier
    ["<<", ">>", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                 "<<=": "<<", ">>=": ">>"}


def parse(source: str) -> ast.Program:
    """Parse MiniJava source text into a :class:`~repro.minijava.ast.Program`."""
    return _Parser(tokenize(source)).parse_program()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._tok
        self._pos += 1
        return tok

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._tok
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self._check(kind, text):
            tok = self._tok
            want = text or kind
            raise CompileError(
                f"expected {want!r}, found {tok.text or tok.kind!r}",
                tok.line, tok.col,
            )
        return self._advance()

    def _error(self, message: str) -> CompileError:
        tok = self._tok
        return CompileError(message, tok.line, tok.col)

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        classes = []
        while not self._check("eof"):
            classes.append(self._parse_class())
        return ast.Program(classes)

    def _skip_modifiers(self) -> dict:
        mods = {"static": False, "synchronized": False}
        while self._tok.kind == "kw" and self._tok.text in (
            "public", "private", "protected", "final", "static", "synchronized"
        ):
            word = self._advance().text
            if word in mods:
                mods[word] = True
        return mods

    def _parse_class(self) -> ast.ClassDecl:
        self._skip_modifiers()
        start = self._expect("kw", "class")
        name = self._expect("ident").text
        superclass = "Object"
        if self._accept("kw", "extends"):
            tok = self._tok
            if tok.kind == "ident" or (tok.kind == "kw" and tok.text == "String"):
                superclass = self._advance().text
            else:
                raise self._error("expected superclass name")
        self._expect("op", "{")
        fields: List[ast.FieldDecl] = []
        methods: List[ast.MethodDecl] = []
        while not self._accept("op", "}"):
            self._parse_member(name, fields, methods)
        return ast.ClassDecl(name, superclass, fields, methods, start.line)

    def _parse_member(self, class_name: str, fields, methods) -> None:
        mods = self._skip_modifiers()
        tok = self._tok
        # Constructor: ClassName '('
        if tok.kind == "ident" and tok.text == class_name \
                and self._peek(1).kind == "op" and self._peek(1).text == "(":
            self._advance()
            params = self._parse_params()
            body = self._parse_block()
            methods.append(ast.MethodDecl(
                "<init>", params, ast.TypeName("void"), body,
                is_static=False, is_synchronized=mods["synchronized"],
                line=tok.line,
            ))
            return
        decl_type = self._parse_type()
        name_tok = self._expect("ident")
        if self._check("op", "("):
            params = self._parse_params()
            body = self._parse_block()
            methods.append(ast.MethodDecl(
                name_tok.text, params, decl_type, body,
                is_static=mods["static"],
                is_synchronized=mods["synchronized"],
                line=name_tok.line,
            ))
            return
        initializer = None
        if self._accept("op", "="):
            initializer = self._parse_expr()
        self._expect("op", ";")
        fields.append(ast.FieldDecl(
            name_tok.text, decl_type, mods["static"], initializer, name_tok.line
        ))

    def _parse_params(self) -> List[ast.Param]:
        self._expect("op", "(")
        params: List[ast.Param] = []
        if not self._check("op", ")"):
            while True:
                ptype = self._parse_type()
                pname = self._expect("ident")
                params.append(ast.Param(pname.text, ptype, pname.line))
                if not self._accept("op", ","):
                    break
        self._expect("op", ")")
        return params

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def _looks_like_type(self) -> bool:
        """Lookahead: does a declaration start here (``T name``)?"""
        tok = self._tok
        if tok.kind == "kw" and tok.text in _PRIMITIVES:
            base_ok = True
        elif tok.kind == "ident":
            base_ok = True
        else:
            return False
        if not base_ok:
            return False
        i = 1
        while (self._peek(i).kind == "op" and self._peek(i).text == "["
               and self._peek(i + 1).kind == "op" and self._peek(i + 1).text == "]"):
            i += 2
        return self._peek(i).kind == "ident"

    def _parse_type(self) -> ast.TypeName:
        tok = self._tok
        if tok.kind == "kw" and tok.text in _PRIMITIVES:
            self._advance()
            base = tok.text
        elif tok.kind == "ident":
            self._advance()
            base = tok.text
        else:
            raise self._error(f"expected a type, found {tok.text!r}")
        dims = 0
        while (self._check("op", "[") and self._peek(1).kind == "op"
               and self._peek(1).text == "]"):
            self._advance()
            self._advance()
            dims += 1
        return ast.TypeName(base, dims)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_block(self) -> List[ast.Stmt]:
        self._expect("op", "{")
        body: List[ast.Stmt] = []
        while not self._accept("op", "}"):
            body.append(self._parse_stmt())
        return body

    def _parse_stmt_or_block(self) -> List[ast.Stmt]:
        if self._check("op", "{"):
            return self._parse_block()
        return [self._parse_stmt()]

    def _parse_stmt(self) -> ast.Stmt:
        tok = self._tok
        if tok.kind == "op" and tok.text == "{":
            return ast.Block(tok.line, self._parse_block())
        if tok.kind == "kw":
            handler = {
                "if": self._parse_if,
                "while": self._parse_while,
                "for": self._parse_for,
                "return": self._parse_return,
                "throw": self._parse_throw,
                "try": self._parse_try,
                "synchronized": self._parse_synchronized,
            }.get(tok.text)
            if handler is not None:
                return handler()
            if tok.text == "break":
                self._advance()
                self._expect("op", ";")
                return ast.Break(tok.line)
            if tok.text == "continue":
                self._advance()
                self._expect("op", ";")
                return ast.Continue(tok.line)
            if tok.text == "super" and self._peek(1).text == "(":
                self._advance()
                args = self._parse_args()
                self._expect("op", ";")
                return ast.SuperCall(tok.line, args)
        if self._looks_like_type():
            return self._parse_var_decl()
        stmt = self._parse_simple_stmt()
        self._expect("op", ";")
        return stmt

    def _parse_var_decl(self) -> ast.Stmt:
        decl_type = self._parse_type()
        name = self._expect("ident")
        initializer = None
        if self._accept("op", "="):
            initializer = self._parse_expr()
        self._expect("op", ";")
        return ast.VarDecl(name.line, name.text, decl_type, initializer)

    def _parse_simple_stmt(self) -> ast.Stmt:
        """Assignment, compound assignment, ++/--, or expression statement
        (no trailing semicolon — shared by for-headers)."""
        tok = self._tok
        expr = self._parse_expr()
        if self._check("op", "="):
            self._advance()
            value = self._parse_expr()
            return ast.Assign(tok.line, expr, value)
        for text, base_op in _COMPOUND_OPS.items():
            if self._check("op", text):
                self._advance()
                value = self._parse_expr()
                combined = ast.Binary(tok.line, None, base_op, expr, value)
                return ast.Assign(tok.line, expr, combined)
        if self._check("op", "++") or self._check("op", "--"):
            op = self._advance().text
            one = ast.IntLit(tok.line, None, 1)
            combined = ast.Binary(
                tok.line, None, "+" if op == "++" else "-", expr, one
            )
            return ast.Assign(tok.line, expr, combined)
        return ast.ExprStmt(tok.line, expr)

    def _parse_if(self) -> ast.Stmt:
        tok = self._expect("kw", "if")
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        then_body = self._parse_stmt_or_block()
        else_body: List[ast.Stmt] = []
        if self._accept("kw", "else"):
            else_body = self._parse_stmt_or_block()
        return ast.If(tok.line, cond, then_body, else_body)

    def _parse_while(self) -> ast.Stmt:
        tok = self._expect("kw", "while")
        self._expect("op", "(")
        cond = self._parse_expr()
        self._expect("op", ")")
        return ast.While(tok.line, cond, self._parse_stmt_or_block())

    def _parse_for(self) -> ast.Stmt:
        tok = self._expect("kw", "for")
        self._expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self._check("op", ";"):
            if self._looks_like_type():
                decl_type = self._parse_type()
                name = self._expect("ident")
                initializer = None
                if self._accept("op", "="):
                    initializer = self._parse_expr()
                init = ast.VarDecl(name.line, name.text, decl_type, initializer)
            else:
                init = self._parse_simple_stmt()
        self._expect("op", ";")
        cond = None if self._check("op", ";") else self._parse_expr()
        self._expect("op", ";")
        update = None if self._check("op", ")") else self._parse_simple_stmt()
        self._expect("op", ")")
        return ast.For(tok.line, init, cond, update, self._parse_stmt_or_block())

    def _parse_return(self) -> ast.Stmt:
        tok = self._expect("kw", "return")
        value = None if self._check("op", ";") else self._parse_expr()
        self._expect("op", ";")
        return ast.Return(tok.line, value)

    def _parse_throw(self) -> ast.Stmt:
        tok = self._expect("kw", "throw")
        value = self._parse_expr()
        self._expect("op", ";")
        return ast.Throw(tok.line, value)

    def _parse_try(self) -> ast.Stmt:
        tok = self._expect("kw", "try")
        body = self._parse_block()
        self._expect("kw", "catch")
        self._expect("op", "(")
        exc_class_tok = self._tok
        if exc_class_tok.kind != "ident":
            raise self._error("expected exception class name")
        self._advance()
        exc_name = self._expect("ident").text
        self._expect("op", ")")
        handler = self._parse_block()
        return ast.TryCatch(tok.line, body, exc_class_tok.text, exc_name, handler)

    def _parse_synchronized(self) -> ast.Stmt:
        tok = self._expect("kw", "synchronized")
        self._expect("op", "(")
        lock = self._parse_expr()
        self._expect("op", ")")
        return ast.Synchronized(tok.line, lock, self._parse_block())

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_args(self) -> List[ast.Expr]:
        self._expect("op", "(")
        args: List[ast.Expr] = []
        if not self._check("op", ")"):
            while True:
                args.append(self._parse_expr())
                if not self._accept("op", ","):
                    break
        self._expect("op", ")")
        return args

    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept("op", "?"):
            then_value = self._parse_expr()
            self._expect("op", ":")
            else_value = self._parse_expr()
            return ast.Ternary(cond.line, None, cond, then_value, else_value)
        return cond

    def _parse_binary(self, tier: int) -> ast.Expr:
        if tier >= len(_BINARY_TIERS):
            return self._parse_unary()
        left = self._parse_binary(tier + 1)
        ops = _BINARY_TIERS[tier]
        while True:
            if "<" in ops and self._check("kw", "instanceof"):
                self._advance()
                class_name = self._expect("ident").text
                left = ast.InstanceOf(left.line, None, left, class_name)
                continue
            tok = self._tok
            if tok.kind == "op" and tok.text in ops:
                self._advance()
                right = self._parse_binary(tier + 1)
                left = ast.Binary(tok.line, None, tok.text, left, right)
            else:
                return left

    def _parse_unary(self) -> ast.Expr:
        tok = self._tok
        if tok.kind == "op" and tok.text in ("!", "-", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(tok.line, None, tok.text, operand)
        # Cast: '(' Type ')' unary — only when it really looks like one.
        if tok.kind == "op" and tok.text == "(":
            save = self._pos
            if self._try_cast():
                self._pos = save
                self._advance()  # '('
                target = self._parse_type()
                self._expect("op", ")")
                value = self._parse_unary()
                return ast.Cast(tok.line, None, target, value)
        return self._parse_postfix()

    def _try_cast(self) -> bool:
        """Heuristic lookahead for '(' Type ')' <operand-start>."""
        save = self._pos
        try:
            self._advance()  # '('
            tok = self._tok
            if not (
                (tok.kind == "kw" and tok.text in _PRIMITIVES and tok.text != "void")
                or tok.kind == "ident"
            ):
                return False
            is_primitive = tok.kind == "kw"
            self._parse_type()
            if not self._check("op", ")"):
                return False
            nxt = self._peek(1)
            if is_primitive:
                return nxt.kind in ("ident", "int", "float", "string", "char") or (
                    nxt.kind == "op" and nxt.text == "("
                ) or (nxt.kind == "kw" and nxt.text in ("this", "new"))
            # Class casts: require an operand that cannot be a binary rhs.
            return nxt.kind == "ident" or (
                nxt.kind == "kw" and nxt.text in ("this", "new", "null")
            )
        except CompileError:
            return False
        finally:
            end = self._pos
            self._pos = save
            del end

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._check("op", "."):
                self._advance()
                name_tok = self._tok
                if name_tok.kind not in ("ident", "kw"):
                    raise self._error("expected member name after '.'")
                self._advance()
                if self._check("op", "("):
                    args = self._parse_args()
                    expr = ast.Call(
                        name_tok.line, None, expr, "", name_tok.text, args
                    )
                else:
                    expr = ast.FieldAccess(
                        name_tok.line, None, expr, name_tok.text
                    )
            elif self._check("op", "["):
                self._advance()
                index = self._parse_expr()
                self._expect("op", "]")
                expr = ast.Index(expr.line, None, expr, index)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._tok
        if tok.kind == "int":
            self._advance()
            return ast.IntLit(tok.line, None, int(tok.text, 0))
        if tok.kind == "float":
            self._advance()
            return ast.FloatLit(tok.line, None, float(tok.text))
        if tok.kind == "string":
            self._advance()
            return ast.StringLit(tok.line, None, tok.text)
        if tok.kind == "char":
            self._advance()
            return ast.IntLit(tok.line, None, ord(tok.text))
        if tok.kind == "kw":
            if tok.text == "true":
                self._advance()
                return ast.BoolLit(tok.line, None, True)
            if tok.text == "false":
                self._advance()
                return ast.BoolLit(tok.line, None, False)
            if tok.text == "null":
                self._advance()
                return ast.NullLit(tok.line)
            if tok.text == "this":
                self._advance()
                return ast.This(tok.line)
            if tok.text == "new":
                return self._parse_new()
            if tok.text == "super":
                self._advance()
                self._expect("op", ".")
                name = self._expect("ident")
                args = self._parse_args()
                return ast.Call(
                    name.line, None, None, "", name.text, args, is_super=True
                )
            if tok.text == "String":
                # Static-looking access like String.x is not supported;
                # String appears only in types.
                raise self._error("'String' cannot start an expression")
        if tok.kind == "ident":
            self._advance()
            if self._check("op", "("):
                args = self._parse_args()
                return ast.Call(tok.line, None, None, "", tok.text, args)
            return ast.Name(tok.line, None, tok.text)
        if tok.kind == "op" and tok.text == "(":
            self._advance()
            expr = self._parse_expr()
            self._expect("op", ")")
            return expr
        raise self._error(f"unexpected token {tok.text or tok.kind!r}")

    def _parse_new(self) -> ast.Expr:
        tok = self._expect("kw", "new")
        type_tok = self._tok
        if type_tok.kind == "kw" and type_tok.text in _PRIMITIVES:
            self._advance()
            base = type_tok.text
        elif type_tok.kind == "ident":
            self._advance()
            base = type_tok.text
        else:
            raise self._error("expected type after 'new'")
        if self._check("op", "["):
            self._advance()
            size = self._parse_expr()
            self._expect("op", "]")
            dims = 0
            while (self._check("op", "[") and self._peek(1).kind == "op"
                   and self._peek(1).text == "]"):
                self._advance()
                self._advance()
                dims += 1
            return ast.NewArray(tok.line, None, ast.TypeName(base, dims), size)
        args = self._parse_args()
        return ast.NewObject(tok.line, None, base, args)

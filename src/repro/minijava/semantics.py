"""MiniJava semantic analysis: name resolution and type checking.

The checker annotates the AST in place (every expression gets ``type``;
calls, names, and field accesses get resolution attributes) and raises
:class:`~repro.errors.CompileError` with source positions on any
violation.  The annotated AST is consumed directly by
:mod:`repro.minijava.codegen`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import CompileError
from repro.minijava import ast
from repro.minijava.types import (
    ANY,
    BOOL,
    BUILTIN_FIELDS,
    BUILTIN_HIERARCHY,
    FLOAT,
    INT,
    NULL,
    OBJECT,
    STRING,
    STRING_SUGAR,
    VOID,
    ArrayType,
    ClassType,
    MethodSig,
    Type,
    builtin_class_signatures,
)

_PRIMITIVE_TYPES = {"int": INT, "float": FLOAT, "boolean": BOOL,
                    "String": STRING, "void": VOID}


class ClassInfo:
    """Everything the checker knows about one class."""

    def __init__(self, name: str, superclass: Optional[str],
                 is_builtin: bool) -> None:
        self.name = name
        self.superclass = superclass
        self.is_builtin = is_builtin
        #: name -> (type, is_static, owner_class)
        self.fields: Dict[str, Tuple[Type, bool, str]] = {}
        #: (name, arity) -> MethodSig
        self.methods: Dict[Tuple[str, int], MethodSig] = {}


class Checker:
    """Single-program semantic analyzer.

    ``extra_builtins`` lets embedders extend the compiler's view of the
    class library with application-provided native classes (the paper's
    user-supplied native methods, §4.4): a mapping from class name to a
    :class:`ClassInfo` that is installed alongside the standard ones.
    """

    def __init__(self, program: ast.Program,
                 extra_builtins: Optional[Dict[str, "ClassInfo"]] = None
                 ) -> None:
        self._program = program
        self._extra_builtins = dict(extra_builtins or {})
        self._classes: Dict[str, ClassInfo] = {}
        # Per-method state
        self._current: Optional[ClassInfo] = None
        self._method: Optional[ast.MethodDecl] = None
        self._return_type: Type = VOID
        self._scopes: List[Dict[str, Type]] = []
        self._loop_depth = 0

    @property
    def classes(self) -> Dict[str, ClassInfo]:
        """Resolved class table (valid after :meth:`check`)."""
        return self._classes

    # ==================================================================
    # Entry point
    # ==================================================================
    def check(self) -> ast.Program:
        self._install_builtins()
        self._collect_user_classes()
        self._check_hierarchy()
        for decl in self._program.classes:
            self._check_class(decl)
        return self._program

    # ==================================================================
    # Symbol collection
    # ==================================================================
    def _install_builtins(self) -> None:
        signatures = builtin_class_signatures()
        for name, parent in BUILTIN_HIERARCHY.items():
            info = ClassInfo(name, parent, is_builtin=True)
            for key, sig in signatures.get(name, {}).items():
                info.methods[key] = sig
            for fname, (ftype, static) in BUILTIN_FIELDS.get(name, {}).items():
                info.fields[fname] = (ftype, static, name)
            self._classes[name] = info
        for name, info in self._extra_builtins.items():
            if name in self._classes:
                raise CompileError(
                    f"extra builtin class {name!r} collides with the "
                    f"standard library"
                )
            self._classes[name] = info

    def _collect_user_classes(self) -> None:
        for decl in self._program.classes:
            if decl.name in self._classes:
                raise CompileError(
                    f"class {decl.name!r} redefines an existing class", decl.line
                )
            if decl.name in _PRIMITIVE_TYPES:
                raise CompileError(
                    f"class name {decl.name!r} is reserved", decl.line
                )
            self._classes[decl.name] = ClassInfo(
                decl.name, decl.superclass, is_builtin=False
            )
        for decl in self._program.classes:
            info = self._classes[decl.name]
            for f in decl.fields:
                if f.name in info.fields:
                    raise CompileError(
                        f"duplicate field {f.name!r} in {decl.name}", f.line
                    )
                info.fields[f.name] = (
                    self._resolve_type(f.type, f.line), f.is_static, decl.name
                )
            for m in decl.methods:
                key = (m.name, len(m.params))
                if key in info.methods:
                    raise CompileError(
                        f"duplicate method {m.name}/{len(m.params)} in "
                        f"{decl.name}", m.line
                    )
                m.owner = decl.name
                info.methods[key] = MethodSig(
                    decl.name,
                    m.name,
                    tuple(self._resolve_type(p.type, p.line) for p in m.params),
                    self._resolve_type(m.return_type, m.line),
                    is_static=m.is_static,
                    is_synchronized=m.is_synchronized,
                )

    def _check_hierarchy(self) -> None:
        for decl in self._program.classes:
            info = self._classes[decl.name]
            if info.superclass not in self._classes:
                raise CompileError(
                    f"{decl.name} extends unknown class {info.superclass!r}",
                    decl.line,
                )
            # Cycle detection
            seen = {decl.name}
            parent = info.superclass
            while parent is not None:
                if parent in seen:
                    raise CompileError(
                        f"inheritance cycle through {decl.name}", decl.line
                    )
                seen.add(parent)
                parent = self._classes[parent].superclass
            # Override compatibility
            for key, sig in info.methods.items():
                inherited = self._lookup_method_in(info.superclass, *key)
                if inherited is None or key[0] == "<init>":
                    continue
                if (inherited.params != sig.params
                        or inherited.ret is not sig.ret
                        or inherited.is_static != sig.is_static):
                    raise CompileError(
                        f"{decl.name}.{key[0]}/{key[1]} overrides "
                        f"{inherited.owner}.{key[0]} with an incompatible "
                        f"signature", decl.line,
                    )

    # ==================================================================
    # Type utilities
    # ==================================================================
    def _resolve_type(self, tn: ast.TypeName, line: int) -> Type:
        base = _PRIMITIVE_TYPES.get(tn.name)
        if base is None:
            if tn.name not in self._classes:
                raise CompileError(f"unknown type {tn.name!r}", line)
            base = ClassType(tn.name)
        if base is VOID and tn.dims:
            raise CompileError("void[] is not a type", line)
        for _ in range(tn.dims):
            base = ArrayType(base)
        return base

    def _is_subclass(self, sub: str, sup: str) -> bool:
        node: Optional[str] = sub
        while node is not None:
            if node == sup:
                return True
            node = self._classes[node].superclass
        return False

    def _assignable(self, value: Type, target: Type) -> bool:
        if value is target:
            return True
        if value is INT and target is FLOAT:
            return True
        if value is NULL:
            return isinstance(target, (ClassType, ArrayType))
        if isinstance(value, ClassType) and isinstance(target, ClassType):
            return self._is_subclass(value.name, target.name)
        if isinstance(value, ArrayType) and target is OBJECT:
            return True
        if isinstance(value, ArrayType) and isinstance(target, ClassType) \
                and target.name == "_array":
            return True  # System.arraycopy accepts arrays of any element
        if target is ANY:
            return value in (INT, FLOAT, BOOL, STRING) or isinstance(
                value, (ClassType, ArrayType)
            )
        if target is OBJECT and isinstance(value, ClassType):
            return True
        return False

    def _require(self, cond: bool, message: str, line: int) -> None:
        if not cond:
            raise CompileError(message, line)

    def _lookup_method_in(self, class_name: Optional[str], name: str,
                          arity: int) -> Optional[MethodSig]:
        node = class_name
        while node is not None:
            info = self._classes[node]
            sig = info.methods.get((name, arity))
            if sig is not None:
                return sig
            node = info.superclass
        return None

    def _lookup_field_in(self, class_name: Optional[str],
                         name: str) -> Optional[Tuple[Type, bool, str]]:
        node = class_name
        while node is not None:
            info = self._classes[node]
            entry = info.fields.get(name)
            if entry is not None:
                return entry
            node = info.superclass
        return None

    # ==================================================================
    # Class / method bodies
    # ==================================================================
    def _check_class(self, decl: ast.ClassDecl) -> None:
        self._current = self._classes[decl.name]
        for f in decl.fields:
            if f.initializer is not None:
                self._require(
                    f.is_static,
                    "instance field initializers are not supported; "
                    "assign in a constructor",
                    f.line,
                )
                self._scopes = [{}]
                self._method = None
                value_type = self._check_expr(f.initializer)
                ftype = self._classes[decl.name].fields[f.name][0]
                self._require(
                    self._assignable(value_type, ftype),
                    f"cannot initialize {ftype} field {f.name!r} with "
                    f"{value_type}", f.line,
                )
        for m in decl.methods:
            self._check_method(decl, m)
        self._current = None

    def _check_method(self, decl: ast.ClassDecl, m: ast.MethodDecl) -> None:
        self._method = m
        sig = self._classes[decl.name].methods[(m.name, len(m.params))]
        self._return_type = sig.ret
        scope: Dict[str, Type] = {}
        for p, ptype in zip(m.params, sig.params):
            if p.name in scope:
                raise CompileError(f"duplicate parameter {p.name!r}", p.line)
            scope[p.name] = ptype
        self._scopes = [scope]
        self._loop_depth = 0
        if m.name == "<init>":
            for i, stmt in enumerate(m.body):
                if isinstance(stmt, ast.SuperCall):
                    self._require(
                        i == 0, "super(...) must be the first statement",
                        stmt.line,
                    )
        self._check_stmts(m.body)
        self._method = None

    # ==================================================================
    # Statements
    # ==================================================================
    def _check_stmts(self, body: List[ast.Stmt]) -> None:
        self._scopes.append({})
        for stmt in body:
            self._check_stmt(stmt)
        self._scopes.pop()

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._check_stmts(stmt.body)
        elif isinstance(stmt, ast.VarDecl):
            declared = self._resolve_type(stmt.type, stmt.line)
            self._require(declared is not VOID, "void variable", stmt.line)
            for scope in self._scopes:
                self._require(
                    stmt.name not in scope,
                    f"variable {stmt.name!r} already defined", stmt.line,
                )
            if stmt.initializer is not None:
                value_type = self._check_expr(stmt.initializer)
                self._require(
                    self._assignable(value_type, declared),
                    f"cannot assign {value_type} to {declared} "
                    f"variable {stmt.name!r}", stmt.line,
                )
            self._scopes[-1][stmt.name] = declared
            stmt.sem_type = declared
        elif isinstance(stmt, ast.Assign):
            target_type = self._check_assign_target(stmt.target)
            value_type = self._check_expr(stmt.value)
            self._require(
                self._assignable(value_type, target_type),
                f"cannot assign {value_type} to {target_type}", stmt.line,
            )
        elif isinstance(stmt, ast.ExprStmt):
            self._require(
                isinstance(stmt.expr, ast.Call)
                or isinstance(stmt.expr, ast.NewObject),
                "expression statement must be a call", stmt.line,
            )
            self._check_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._require(
                self._check_expr(stmt.cond) is BOOL,
                "if condition must be boolean", stmt.line,
            )
            self._check_stmts(stmt.then_body)
            self._check_stmts(stmt.else_body)
        elif isinstance(stmt, ast.While):
            self._require(
                self._check_expr(stmt.cond) is BOOL,
                "while condition must be boolean", stmt.line,
            )
            self._loop_depth += 1
            self._check_stmts(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.For):
            self._scopes.append({})
            if stmt.init is not None:
                self._check_stmt(stmt.init)
            if stmt.cond is not None:
                self._require(
                    self._check_expr(stmt.cond) is BOOL,
                    "for condition must be boolean", stmt.line,
                )
            self._loop_depth += 1
            self._check_stmts(stmt.body)
            if stmt.update is not None:
                self._check_stmt(stmt.update)
            self._loop_depth -= 1
            self._scopes.pop()
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            self._require(self._loop_depth > 0,
                          "break/continue outside a loop", stmt.line)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self._require(
                    self._return_type is VOID,
                    f"method must return {self._return_type}", stmt.line,
                )
            else:
                self._require(
                    self._return_type is not VOID,
                    "void method cannot return a value", stmt.line,
                )
                value_type = self._check_expr(stmt.value)
                self._require(
                    self._assignable(value_type, self._return_type),
                    f"cannot return {value_type} from a {self._return_type} "
                    f"method", stmt.line,
                )
        elif isinstance(stmt, ast.Throw):
            thrown = self._check_expr(stmt.value)
            self._require(
                isinstance(thrown, ClassType)
                and self._is_subclass(thrown.name, "Throwable"),
                f"cannot throw non-Throwable {thrown}", stmt.line,
            )
        elif isinstance(stmt, ast.TryCatch):
            self._require(
                stmt.exc_class in self._classes
                and self._is_subclass(stmt.exc_class, "Throwable"),
                f"catch of non-Throwable {stmt.exc_class!r}", stmt.line,
            )
            self._check_stmts(stmt.body)
            self._scopes.append({stmt.exc_name: ClassType(stmt.exc_class)})
            for inner in stmt.handler:
                self._check_stmt(inner)
            self._scopes.pop()
        elif isinstance(stmt, ast.Synchronized):
            lock_type = self._check_expr(stmt.lock)
            self._require(
                isinstance(lock_type, (ClassType, ArrayType)),
                f"cannot synchronize on {lock_type}", stmt.line,
            )
            self._check_stmts(stmt.body)
        elif isinstance(stmt, ast.SuperCall):
            self._require(
                self._method is not None and self._method.name == "<init>",
                "super(...) only allowed in constructors", stmt.line,
            )
            parent = self._current.superclass
            sig = self._lookup_method_in(parent, "<init>", len(stmt.args))
            self._require(
                sig is not None,
                f"no superclass constructor with {len(stmt.args)} "
                f"argument(s)", stmt.line,
            )
            self._check_args(stmt.args, sig.params, stmt.line)
            stmt.target_class = sig.owner
            stmt.param_types = sig.params
        else:
            raise CompileError(f"unhandled statement {stmt!r}", stmt.line)

    def _check_assign_target(self, target: ast.Expr) -> Type:
        if isinstance(target, ast.Name):
            t = self._check_expr(target)
            self._require(
                target.kind in ("local", "field", "static"),
                f"cannot assign to {target.ident!r}", target.line,
            )
            return t
        if isinstance(target, ast.FieldAccess):
            t = self._check_expr(target)
            self._require(
                target.kind in ("instance", "static"),
                "cannot assign to array length", target.line,
            )
            return t
        if isinstance(target, ast.Index):
            return self._check_expr(target)
        raise CompileError("invalid assignment target", target.line)

    # ==================================================================
    # Expressions
    # ==================================================================
    def _check_expr(self, expr: ast.Expr) -> Type:
        t = self._infer(expr)
        expr.type = t
        return t

    def _infer(self, expr: ast.Expr) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.StringLit):
            return STRING
        if isinstance(expr, ast.BoolLit):
            return BOOL
        if isinstance(expr, ast.NullLit):
            return NULL
        if isinstance(expr, ast.This):
            self._require(
                self._method is not None and not self._method.is_static,
                "'this' in a static context", expr.line,
            )
            return ClassType(self._current.name)
        if isinstance(expr, ast.Name):
            return self._infer_name(expr)
        if isinstance(expr, ast.Unary):
            return self._infer_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._infer_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._infer_ternary(expr)
        if isinstance(expr, ast.FieldAccess):
            return self._infer_field_access(expr)
        if isinstance(expr, ast.Index):
            array_type = self._check_expr(expr.array)
            self._require(
                isinstance(array_type, ArrayType),
                f"cannot index {array_type}", expr.line,
            )
            self._require(
                self._check_expr(expr.index) is INT,
                "array index must be int", expr.line,
            )
            return array_type.elem
        if isinstance(expr, ast.Call):
            return self._infer_call(expr)
        if isinstance(expr, ast.NewObject):
            return self._infer_new_object(expr)
        if isinstance(expr, ast.NewArray):
            elem = self._resolve_type(expr.elem, expr.line)
            self._require(elem is not VOID, "void[] array", expr.line)
            self._require(
                self._check_expr(expr.size) is INT,
                "array size must be int", expr.line,
            )
            return ArrayType(elem)
        if isinstance(expr, ast.Cast):
            return self._infer_cast(expr)
        if isinstance(expr, ast.InstanceOf):
            value_type = self._check_expr(expr.value)
            self._require(
                isinstance(value_type, (ClassType, ArrayType)) or value_type is NULL,
                f"instanceof on {value_type}", expr.line,
            )
            self._require(
                expr.class_name in self._classes,
                f"unknown class {expr.class_name!r}", expr.line,
            )
            return BOOL
        raise CompileError(f"unhandled expression {expr!r}", expr.line)

    def _infer_name(self, expr: ast.Name) -> Type:
        for scope in reversed(self._scopes):
            if expr.ident in scope:
                expr.kind = "local"
                return scope[expr.ident]
        entry = self._lookup_field_in(self._current.name, expr.ident) \
            if self._current else None
        if entry is not None:
            ftype, is_static, owner = entry
            if is_static:
                expr.kind = "static"
            else:
                self._require(
                    self._method is not None and not self._method.is_static,
                    f"instance field {expr.ident!r} in a static context",
                    expr.line,
                )
                expr.kind = "field"
            expr.owner = owner
            return ftype
        if expr.ident in self._classes:
            expr.kind = "class"
            return ClassType(expr.ident)  # only valid as a qualifier
        raise CompileError(f"unknown name {expr.ident!r}", expr.line)

    def _infer_unary(self, expr: ast.Unary) -> Type:
        operand = self._check_expr(expr.operand)
        if expr.op == "!":
            self._require(operand is BOOL, "'!' needs boolean", expr.line)
            return BOOL
        if expr.op == "-":
            self._require(operand in (INT, FLOAT), "'-' needs a number",
                          expr.line)
            return operand
        if expr.op == "~":
            self._require(operand is INT, "'~' needs int", expr.line)
            return INT
        raise CompileError(f"unknown unary {expr.op!r}", expr.line)

    def _infer_binary(self, expr: ast.Binary) -> Type:
        op = expr.op
        left = self._check_expr(expr.left)
        right = self._check_expr(expr.right)
        if op == "+" and (left is STRING or right is STRING):
            for side, t in ((expr.left, left), (expr.right, right)):
                self._require(
                    t in (STRING, INT, FLOAT, BOOL),
                    f"cannot concatenate {t} into a String", side.line,
                )
            return STRING
        if op in ("+", "-", "*", "/", "%"):
            self._require(
                left in (INT, FLOAT) and right in (INT, FLOAT),
                f"arithmetic on {left} and {right}", expr.line,
            )
            return FLOAT if FLOAT in (left, right) else INT
        if op in ("<<", ">>", ">>>", "&", "|", "^"):
            if op in ("&", "|", "^") and left is BOOL and right is BOOL:
                return BOOL
            self._require(
                left is INT and right is INT,
                f"bitwise {op} on {left} and {right}", expr.line,
            )
            return INT
        if op in ("<", "<=", ">", ">="):
            if left is STRING and right is STRING:
                return BOOL
            self._require(
                left in (INT, FLOAT) and right in (INT, FLOAT),
                f"comparison on {left} and {right}", expr.line,
            )
            return BOOL
        if op in ("==", "!="):
            numeric = left in (INT, FLOAT) and right in (INT, FLOAT)
            booleans = left is BOOL and right is BOOL
            strings = left is STRING and right is STRING
            refs = (
                isinstance(left, (ClassType, ArrayType)) or left is NULL
            ) and (
                isinstance(right, (ClassType, ArrayType)) or right is NULL
            )
            self._require(
                numeric or booleans or strings or refs,
                f"cannot compare {left} with {right}", expr.line,
            )
            return BOOL
        if op in ("&&", "||"):
            self._require(
                left is BOOL and right is BOOL,
                f"logical {op} on {left} and {right}", expr.line,
            )
            return BOOL
        raise CompileError(f"unknown operator {op!r}", expr.line)

    def _infer_ternary(self, expr: ast.Ternary) -> Type:
        self._require(
            self._check_expr(expr.cond) is BOOL,
            "ternary condition must be boolean", expr.line,
        )
        then_t = self._check_expr(expr.then_value)
        else_t = self._check_expr(expr.else_value)
        if then_t is else_t:
            return then_t
        if then_t in (INT, FLOAT) and else_t in (INT, FLOAT):
            return FLOAT
        if self._assignable(then_t, else_t):
            return else_t
        if self._assignable(else_t, then_t):
            return then_t
        raise CompileError(
            f"incompatible ternary arms {then_t} / {else_t}", expr.line
        )

    def _infer_field_access(self, expr: ast.FieldAccess) -> Type:
        # ClassName.field ?
        if isinstance(expr.obj, ast.Name) and not self._resolves_as_value(
            expr.obj.ident
        ) and expr.obj.ident in self._classes:
            entry = self._lookup_field_in(expr.obj.ident, expr.field_name)
            self._require(
                entry is not None and entry[1],
                f"no static field {expr.field_name!r} in {expr.obj.ident}",
                expr.line,
            )
            expr.kind = "static"
            expr.owner = entry[2]
            expr.class_name = expr.obj.ident
            return entry[0]
        obj_type = self._check_expr(expr.obj)
        if isinstance(obj_type, ArrayType):
            self._require(
                expr.field_name == "length",
                f"arrays have no field {expr.field_name!r}", expr.line,
            )
            expr.kind = "arraylength"
            return INT
        if obj_type is STRING and expr.field_name == "length":
            raise CompileError("use s.length() on Strings", expr.line)
        self._require(
            isinstance(obj_type, ClassType),
            f"cannot access field of {obj_type}", expr.line,
        )
        entry = self._lookup_field_in(obj_type.name, expr.field_name)
        self._require(
            entry is not None,
            f"no field {expr.field_name!r} in {obj_type.name}", expr.line,
        )
        ftype, is_static, owner = entry
        expr.kind = "static" if is_static else "instance"
        expr.owner = owner
        expr.class_name = obj_type.name
        return ftype

    def _resolves_as_value(self, ident: str) -> bool:
        for scope in reversed(self._scopes):
            if ident in scope:
                return True
        return (
            self._current is not None
            and self._lookup_field_in(self._current.name, ident) is not None
        )

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _check_args(self, args: List[ast.Expr], params: Tuple[Type, ...],
                    line: int) -> None:
        for arg, ptype in zip(args, params):
            atype = self._check_expr(arg)
            self._require(
                self._assignable(atype, ptype),
                f"argument of type {atype} where {ptype} expected", arg.line,
            )

    def _finish_call(self, expr: ast.Call, sig: MethodSig,
                     invoke_kind: str) -> Type:
        self._check_args(expr.args, sig.params, expr.line)
        expr.target_class = sig.owner
        expr.invoke_kind = invoke_kind
        expr.returns = sig.returns
        expr.param_types = sig.params
        expr.ret = sig.ret
        return sig.ret

    def _infer_call(self, expr: ast.Call) -> Type:
        arity = len(expr.args)

        if expr.is_super:
            self._require(
                self._method is not None and not self._method.is_static,
                "super call in a static context", expr.line,
            )
            sig = self._lookup_method_in(
                self._current.superclass, expr.method_name, arity
            )
            self._require(
                sig is not None,
                f"no inherited method {expr.method_name}/{arity}", expr.line,
            )
            return self._finish_call(expr, sig, "special")

        # Unqualified call: method of the current class.
        if expr.obj is None:
            sig = self._lookup_method_in(
                self._current.name, expr.method_name, arity
            )
            self._require(
                sig is not None,
                f"unknown method {expr.method_name}/{arity}", expr.line,
            )
            if not sig.is_static:
                self._require(
                    not self._method.is_static,
                    f"instance method {expr.method_name!r} called from a "
                    f"static context", expr.line,
                )
                expr.obj = ast.This(expr.line)
                self._check_expr(expr.obj)
                return self._finish_call(expr, sig, "virtual")
            return self._finish_call(expr, sig, "static")

        # ClassName.m(...) static call.
        if isinstance(expr.obj, ast.Name) and not self._resolves_as_value(
            expr.obj.ident
        ) and expr.obj.ident in self._classes:
            sig = self._lookup_method_in(
                expr.obj.ident, expr.method_name, arity
            )
            self._require(
                sig is not None and sig.is_static,
                f"no static method {expr.method_name}/{arity} in "
                f"{expr.obj.ident}", expr.line,
            )
            expr.obj = None
            expr.class_name = sig.owner
            return self._finish_call(expr, sig, "static")

        obj_type = self._check_expr(expr.obj)

        # String instance-method sugar lowers to Strings statics.
        if obj_type is STRING:
            if (expr.method_name, arity) == ("equals", 1):
                self._check_args(expr.args, (STRING,), expr.line)
                expr.builtin = "streq"
                expr.returns = True
                expr.ret = BOOL
                return BOOL
            sugar = STRING_SUGAR.get((expr.method_name, arity))
            self._require(
                sugar is not None,
                f"String has no method {expr.method_name}/{arity}", expr.line,
            )
            static_name, extra_params, ret = sugar
            self._check_args(expr.args, extra_params, expr.line)
            expr.builtin = f"Strings.{static_name}"
            expr.returns = ret is not VOID
            expr.ret = ret
            expr.param_types = extra_params
            return ret

        self._require(
            isinstance(obj_type, ClassType),
            f"cannot call a method on {obj_type}", expr.line,
        )
        sig = self._lookup_method_in(obj_type.name, expr.method_name, arity)
        self._require(
            sig is not None,
            f"no method {expr.method_name}/{arity} in {obj_type.name}",
            expr.line,
        )
        if sig.is_static:
            # Java allows instance-qualified static calls; we don't.
            raise CompileError(
                f"static method {expr.method_name!r} must be called as "
                f"{sig.owner}.{expr.method_name}(...)", expr.line,
            )
        return self._finish_call(expr, sig, "virtual")

    def _infer_new_object(self, expr: ast.NewObject) -> Type:
        self._require(
            expr.class_name in self._classes,
            f"unknown class {expr.class_name!r}", expr.line,
        )
        sig = self._lookup_method_in(expr.class_name, "<init>", len(expr.args))
        self._require(
            sig is not None,
            f"no constructor {expr.class_name}/{len(expr.args)}", expr.line,
        )
        self._check_args(expr.args, sig.params, expr.line)
        expr.target_class = sig.owner
        expr.param_types = sig.params
        return ClassType(expr.class_name)

    def _infer_cast(self, expr: ast.Cast) -> Type:
        value_type = self._check_expr(expr.value)
        target = self._resolve_type(expr.target, expr.line)
        if target is FLOAT and value_type in (INT, FLOAT):
            expr.kind = "noop" if value_type is FLOAT else "i2f"
        elif target is INT and value_type in (INT, FLOAT):
            expr.kind = "noop" if value_type is INT else "f2i"
        elif isinstance(target, (ClassType, ArrayType)) and (
            isinstance(value_type, (ClassType, ArrayType)) or value_type is NULL
        ):
            expr.kind = "ref"
        else:
            raise CompileError(
                f"cannot cast {value_type} to {target}", expr.line
            )
        expr.sem_target = target
        return target

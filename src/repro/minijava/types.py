"""MiniJava semantic types and the builtin-signature table."""

from __future__ import annotations

from typing import Dict, Tuple


class Type:
    """Base of the semantic type lattice."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


class _Primitive(Type):
    def __init__(self, name: str) -> None:
        self.name = name

    def __str__(self) -> str:
        return self.name


INT = _Primitive("int")
FLOAT = _Primitive("float")
BOOL = _Primitive("boolean")
STRING = _Primitive("String")
VOID = _Primitive("void")
NULL = _Primitive("null")
#: Accepts any printable value (System.println convenience).
ANY = _Primitive("any")


class ClassType(Type):
    _cache: Dict[str, "ClassType"] = {}

    def __new__(cls, name: str) -> "ClassType":
        cached = cls._cache.get(name)
        if cached is None:
            cached = super().__new__(cls)
            cached.name = name
            cls._cache[name] = cached
        return cached

    def __str__(self) -> str:
        return self.name


class ArrayType(Type):
    _cache: Dict[str, "ArrayType"] = {}

    def __new__(cls, elem: Type) -> "ArrayType":
        key = str(elem)
        cached = cls._cache.get(key)
        if cached is None:
            cached = super().__new__(cls)
            cached.elem = elem
            cls._cache[key] = cached
        return cached

    def __str__(self) -> str:
        return f"{self.elem}[]"


OBJECT = ClassType("Object")


def elem_token(t: Type) -> str:
    """Runtime array element type token for a semantic type."""
    if t is INT or t is BOOL:
        return "int"
    if t is FLOAT:
        return "float"
    if t is STRING:
        return "str"
    return "ref"


def field_token(t: Type) -> str:
    """Runtime field type token for a semantic type."""
    return elem_token(t)


class MethodSig:
    """A resolved method signature."""

    __slots__ = ("owner", "name", "params", "ret", "is_static",
                 "is_synchronized")

    def __init__(self, owner: str, name: str, params: Tuple[Type, ...],
                 ret: Type, *, is_static: bool = False,
                 is_synchronized: bool = False) -> None:
        self.owner = owner
        self.name = name
        self.params = params
        self.ret = ret
        self.is_static = is_static
        self.is_synchronized = is_synchronized

    @property
    def nargs(self) -> int:
        return len(self.params)

    @property
    def returns(self) -> bool:
        return self.ret is not VOID

    def __repr__(self) -> str:
        return f"<MethodSig {self.owner}.{self.name}/{self.nargs}>"


def _sig(owner, name, params, ret, **kw) -> MethodSig:
    return MethodSig(owner, name, tuple(params), ret, **kw)


def builtin_class_signatures() -> Dict[str, Dict[Tuple[str, int], MethodSig]]:
    """Method signatures of the standard library, keyed by class then
    (name, arity).  Must stay in sync with
    :mod:`repro.runtime.stdlib` — ``tests/minijava`` asserts the match.
    """
    table: Dict[str, Dict[Tuple[str, int], MethodSig]] = {}

    def add(owner: str, name: str, params, ret, **kw) -> None:
        table.setdefault(owner, {})[(name, len(params))] = _sig(
            owner, name, params, ret, **kw
        )

    add("Object", "<init>", [], VOID)
    add("Object", "hashCode", [], INT)
    add("Object", "equals", [OBJECT], BOOL)
    add("Object", "toString", [], STRING)
    add("Object", "wait", [], VOID)
    add("Object", "timedWait", [INT], VOID)
    add("Object", "notify", [], VOID)
    add("Object", "notifyAll", [], VOID)
    add("Object", "finalize", [], VOID)

    add("Throwable", "<init>", [STRING], VOID)
    add("Throwable", "getMessage", [], STRING)

    add("Thread", "run", [], VOID)
    add("Thread", "start", [], VOID)
    add("Thread", "join", [], VOID)
    add("Thread", "isAlive", [], BOOL)
    add("Thread", "setDaemon", [BOOL], VOID)
    add("Thread", "stop", [], VOID)
    add("Thread", "sleep", [INT], VOID, is_static=True)
    add("Thread", "yield", [], VOID, is_static=True)
    add("Thread", "currentThread", [], ClassType("Thread"), is_static=True)

    add("System", "println", [ANY], VOID, is_static=True)
    add("System", "print", [ANY], VOID, is_static=True)
    add("System", "currentTimeMillis", [], INT, is_static=True)
    add("System", "arraycopy",
        [ClassType("_array"), INT, ClassType("_array"), INT, INT],
        VOID, is_static=True)
    add("System", "gc", [], VOID, is_static=True)

    add("Strings", "length", [STRING], INT, is_static=True)
    add("Strings", "charAt", [STRING, INT], INT, is_static=True)
    add("Strings", "substring", [STRING, INT, INT], STRING, is_static=True)
    add("Strings", "indexOf", [STRING, STRING], INT, is_static=True)
    add("Strings", "indexOfFrom", [STRING, STRING, INT], INT, is_static=True)
    add("Strings", "compare", [STRING, STRING], INT, is_static=True)
    add("Strings", "fromChar", [INT], STRING, is_static=True)
    add("Strings", "hash", [STRING], INT, is_static=True)
    add("Strings", "trim", [STRING], STRING, is_static=True)
    add("Strings", "startsWith", [STRING, STRING], BOOL, is_static=True)
    add("Strings", "endsWith", [STRING, STRING], BOOL, is_static=True)
    add("Strings", "toChars", [STRING], ArrayType(INT), is_static=True)
    add("Strings", "fromChars", [ArrayType(INT), INT], STRING, is_static=True)
    add("Strings", "repeat", [STRING, INT], STRING, is_static=True)
    add("Strings", "upper", [STRING], STRING, is_static=True)
    add("Strings", "lower", [STRING], STRING, is_static=True)

    for name in ("sqrt", "sin", "cos", "atan", "exp", "log", "floor",
                 "ceil", "fabs"):
        add("Math", name, [FLOAT], FLOAT, is_static=True)
    add("Math", "atan2", [FLOAT, FLOAT], FLOAT, is_static=True)
    add("Math", "pow", [FLOAT, FLOAT], FLOAT, is_static=True)
    add("Math", "fmin", [FLOAT, FLOAT], FLOAT, is_static=True)
    add("Math", "fmax", [FLOAT, FLOAT], FLOAT, is_static=True)
    add("Math", "imin", [INT, INT], INT, is_static=True)
    add("Math", "imax", [INT, INT], INT, is_static=True)
    add("Math", "iabs", [INT], INT, is_static=True)

    add("Env", "randomInt", [INT], INT, is_static=True)
    add("Env", "randomFloat", [], FLOAT, is_static=True)

    add("Files", "open", [STRING, STRING], INT, is_static=True)
    add("Files", "close", [INT], VOID, is_static=True)
    add("Files", "write", [INT, STRING], VOID, is_static=True)
    add("Files", "writeLine", [INT, STRING], VOID, is_static=True)
    add("Files", "readLine", [INT], STRING, is_static=True)
    add("Files", "readChar", [INT], INT, is_static=True)
    add("Files", "seek", [INT, INT], VOID, is_static=True)
    add("Files", "tell", [INT], INT, is_static=True)
    add("Files", "size", [STRING], INT, is_static=True)
    add("Files", "exists", [STRING], BOOL, is_static=True)
    add("Files", "delete", [STRING], VOID, is_static=True)

    add("Server", "recv", [STRING], STRING, is_static=True)
    add("Server", "reply", [STRING, STRING], VOID, is_static=True)

    add("Refs", "soft", [OBJECT], ClassType("SoftReference"), is_static=True)
    add("Refs", "weak", [OBJECT], ClassType("WeakReference"), is_static=True)
    add("SoftReference", "<init>", [OBJECT], VOID)
    add("SoftReference", "get", [], OBJECT)
    add("WeakReference", "<init>", [OBJECT], VOID)
    add("WeakReference", "get", [], OBJECT)

    return table


#: Stdlib class hierarchy known to the checker (class -> superclass).
BUILTIN_HIERARCHY = {
    "Object": None,
    "Throwable": "Object",
    "Exception": "Throwable",
    "Error": "Throwable",
    "RuntimeException": "Exception",
    "InterruptedException": "Exception",
    "IOException": "Exception",
    "NullPointerException": "RuntimeException",
    "ArithmeticException": "RuntimeException",
    "ArrayIndexOutOfBoundsException": "RuntimeException",
    "StringIndexOutOfBoundsException": "RuntimeException",
    "NegativeArraySizeException": "RuntimeException",
    "ClassCastException": "RuntimeException",
    "IllegalMonitorStateException": "RuntimeException",
    "IllegalStateException": "RuntimeException",
    "IllegalArgumentException": "RuntimeException",
    "NumberFormatException": "IllegalArgumentException",
    "OutOfMemoryError": "Error",
    "StackOverflowError": "Error",
    "Thread": "Object",
    "System": "Object",
    "Strings": "Object",
    "Math": "Object",
    "Env": "Object",
    "Files": "Object",
    "Server": "Object",
    "Refs": "Object",
    "SoftReference": "Object",
    "WeakReference": "Object",
}

#: Builtin fields visible to MiniJava code (class -> name -> (type, static)).
BUILTIN_FIELDS = {
    "Throwable": {"message": (STRING, False)},
    "SoftReference": {"referent": (OBJECT, False)},
    "WeakReference": {"referent": (OBJECT, False)},
}

#: String instance-method sugar: name -> (Strings-static name, extra
#: params, return).  ``s.length()`` lowers to ``Strings.length(s)``.
STRING_SUGAR: Dict[Tuple[str, int], Tuple[str, Tuple[Type, ...], Type]] = {
    ("length", 0): ("length", (), INT),
    ("charAt", 1): ("charAt", (INT,), INT),
    ("substring", 2): ("substring", (INT, INT), STRING),
    ("indexOf", 1): ("indexOf", (STRING,), INT),
    ("indexOfFrom", 2): ("indexOfFrom", (STRING, INT), INT),
    ("compareTo", 1): ("compare", (STRING,), INT),
    ("startsWith", 1): ("startsWith", (STRING,), BOOL),
    ("endsWith", 1): ("endsWith", (STRING,), BOOL),
    ("trim", 0): ("trim", (), STRING),
    ("hashCode", 0): ("hash", (), INT),
    ("toChars", 0): ("toChars", (), ArrayType(INT)),
    ("repeat", 1): ("repeat", (INT,), STRING),
    ("toUpperCase", 0): ("upper", (), STRING),
    ("toLowerCase", 0): ("lower", (), STRING),
}

"""MiniJava: the Java-like source language for the mini-JVM."""

from repro.minijava.compiler import compile_program
from repro.minijava.parser import parse
from repro.minijava.lexer import tokenize
from repro.minijava.semantics import Checker

__all__ = ["compile_program", "parse", "tokenize", "Checker"]

from repro.minijava.extensions import (  # noqa: E402
    NativeClassSpec, NativeMethodSpec, parse_type_name,
)

__all__ += ["NativeClassSpec", "NativeMethodSpec", "parse_type_name"]

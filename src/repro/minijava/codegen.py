"""MiniJava code generation: annotated AST → mini-JVM bytecode.

Lowering follows javac's shapes where they matter for the paper:

* ``synchronized (lock) { ... }`` compiles to ``monitorenter`` plus a
  catch-all exception region whose handler releases the monitor and
  rethrows — exactly the structured-locking pattern the interpreter's
  exception dispatch expects;
* ``synchronized`` methods only set the method flag; the interpreter
  acquires/releases the monitor in the invoke path;
* string concatenation lowers to ``sconcat`` with per-operand
  conversions (ints/floats/booleans stringify like Java's implicit
  ``String.valueOf``).
"""

from __future__ import annotations

from typing import Dict, List

from repro.bytecode.builder import CodeBuilder
from repro.bytecode.methodref import method_ref
from repro.bytecode.opcodes import Op
from repro.classfile.loader import ClassRegistry
from repro.classfile.model import CLINIT_NAME, JClass, JField, JMethod
from repro.errors import CompileError
from repro.minijava import ast
from repro.minijava.semantics import Checker
from repro.minijava.types import (
    ANY,
    BOOL,
    FLOAT,
    INT,
    NULL,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    Type,
    elem_token,
    field_token,
)

_NUMERIC_OPS = {"+": (Op.IADD, Op.FADD), "-": (Op.ISUB, Op.FSUB),
                "*": (Op.IMUL, Op.FMUL), "/": (Op.IDIV, Op.FDIV)}
_INT_ONLY_OPS = {"%": Op.IREM, "<<": Op.ISHL, ">>": Op.ISHR,
                 ">>>": Op.IUSHR, "&": Op.IAND, "|": Op.IOR, "^": Op.IXOR}
_CMP_TOKENS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
               ">": "gt", ">=": "ge"}
_NEGATED = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
            "gt": "le", "le": "gt"}


class CodeGen:
    """Generates classes for one checked program into a registry."""

    def __init__(self, program: ast.Program, checker: Checker) -> None:
        self._program = program
        self._classes = checker.classes

    def generate(self, registry: ClassRegistry) -> ClassRegistry:
        for decl in self._program.classes:
            registry.register(self._gen_class(decl))
        return registry

    # ==================================================================
    # Classes and methods
    # ==================================================================
    def _gen_class(self, decl: ast.ClassDecl) -> JClass:
        cls = JClass(decl.name, decl.superclass)
        info = self._classes[decl.name]
        for f in decl.fields:
            ftype = info.fields[f.name][0]
            cls.add_field(JField(f.name, field_token(ftype), f.is_static))
        for m in decl.methods:
            cls.add_method(self._gen_method(decl, m))
        static_inits = [f for f in decl.fields
                        if f.is_static and f.initializer is not None]
        if static_inits:
            cls.add_method(self._gen_clinit(decl, static_inits))
        return cls

    def _gen_clinit(self, decl: ast.ClassDecl,
                    inits: List[ast.FieldDecl]) -> JMethod:
        gen = _MethodEmitter(self._classes, decl.name, is_static=True)
        for f in inits:
            ftype = self._classes[decl.name].fields[f.name][0]
            gen.emit_expr(f.initializer)
            gen.coerce(f.initializer.type, ftype)
            gen.b.emit(Op.PUTSTATIC, decl.name, f.name, line=f.line)
        gen.b.emit(Op.RETURN)
        return JMethod(CLINIT_NAME, 0, False, gen.b.assemble(), is_static=True)

    def _gen_method(self, decl: ast.ClassDecl, m: ast.MethodDecl) -> JMethod:
        info = self._classes[decl.name]
        sig = info.methods[(m.name, len(m.params))]
        gen = _MethodEmitter(self._classes, decl.name, is_static=m.is_static,
                             return_type=sig.ret)
        if not m.is_static:
            gen.declare_param("this", ClassType(decl.name))
        for p, ptype in zip(m.params, sig.params):
            gen.declare_param(p.name, ptype)

        if m.name == "<init>" and not (
            m.body and isinstance(m.body[0], ast.SuperCall)
        ):
            gen.b.emit(Op.LOAD, 0, line=m.line)
            gen.b.emit(
                Op.INVOKESPECIAL,
                method_ref(decl.superclass, "<init>", 0, False),
                line=m.line,
            )

        gen.emit_stmts(m.body)

        # Fallback exit so control never falls off the end.
        if sig.ret is VOID:
            gen.b.emit(Op.RETURN)
        else:
            gen.push_default(sig.ret)
            gen.b.emit(Op.VRETURN)

        nargs = len(m.params)
        code = gen.b.assemble(min_locals=nargs + (0 if m.is_static else 1))
        try:
            return JMethod(
                m.name, nargs, sig.ret is not VOID, code,
                is_static=m.is_static, is_synchronized=m.is_synchronized,
            )
        except Exception as err:  # verifier failure = codegen bug
            raise CompileError(
                f"internal codegen error in {decl.name}.{m.name}: {err}",
                m.line,
            ) from err


class _MethodEmitter:
    """Per-method emission state."""

    def __init__(self, classes, current_class: str, *, is_static: bool,
                 return_type: Type = VOID) -> None:
        self._classes = classes
        self._current_class = current_class
        self._is_static = is_static
        self._return_type = return_type
        self.b = CodeBuilder()
        self._scopes: List[Dict[str, int]] = [{}]
        self._break_labels: List[str] = []
        self._continue_labels: List[str] = []
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Locals and labels
    # ------------------------------------------------------------------
    def declare_param(self, name: str, ptype: Type) -> None:
        self._scopes[0][name] = self.b.reserve_local()

    def declare_local(self, name: str) -> int:
        slot = self.b.reserve_local()
        self._scopes[-1][name] = slot
        return slot

    def slot_of(self, name: str) -> int:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        raise CompileError(f"internal: unresolved local {name!r}")

    def fresh(self, hint: str) -> str:
        self._label_counter += 1
        return f"_{hint}{self._label_counter}"

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def emit_stmts(self, body: List[ast.Stmt]) -> None:
        self._scopes.append({})
        for stmt in body:
            self.emit_stmt(stmt)
        self._scopes.pop()

    def emit_stmt(self, stmt: ast.Stmt) -> None:
        line = stmt.line
        if isinstance(stmt, ast.Block):
            self.emit_stmts(stmt.body)
        elif isinstance(stmt, ast.VarDecl):
            slot = self.declare_local(stmt.name)
            if stmt.initializer is not None:
                self.emit_expr(stmt.initializer)
                self.coerce(stmt.initializer.type, stmt.sem_type)
                self.b.emit(Op.STORE, slot, line=line)
        elif isinstance(stmt, ast.Assign):
            self._emit_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self.emit_expr(stmt.expr)
            if getattr(stmt.expr, "type", VOID) is not VOID:
                self.b.emit(Op.POP, line=line)
        elif isinstance(stmt, ast.If):
            else_label = self.fresh("else")
            end_label = self.fresh("fi")
            self.emit_branch_unless(stmt.cond, else_label)
            self.emit_stmts(stmt.then_body)
            if stmt.else_body:
                self.b.emit(Op.GOTO, end_label, line=line)
                self.b.label(else_label)
                self.emit_stmts(stmt.else_body)
                self.b.label(end_label)
            else:
                self.b.label(else_label)
        elif isinstance(stmt, ast.While):
            top = self.fresh("while")
            done = self.fresh("wend")
            self.b.label(top)
            self.emit_branch_unless(stmt.cond, done)
            self._break_labels.append(done)
            self._continue_labels.append(top)
            self.emit_stmts(stmt.body)
            self._break_labels.pop()
            self._continue_labels.pop()
            self.b.emit(Op.GOTO, top, line=line)
            self.b.label(done)
        elif isinstance(stmt, ast.For):
            self._scopes.append({})
            if stmt.init is not None:
                self.emit_stmt(stmt.init)
            top = self.fresh("for")
            cont = self.fresh("fcont")
            done = self.fresh("fend")
            self.b.label(top)
            if stmt.cond is not None:
                self.emit_branch_unless(stmt.cond, done)
            self._break_labels.append(done)
            self._continue_labels.append(cont)
            self.emit_stmts(stmt.body)
            self._break_labels.pop()
            self._continue_labels.pop()
            self.b.label(cont)
            if stmt.update is not None:
                self.emit_stmt(stmt.update)
            self.b.emit(Op.GOTO, top, line=line)
            self.b.label(done)
            self._scopes.pop()
        elif isinstance(stmt, ast.Break):
            self.b.emit(Op.GOTO, self._break_labels[-1], line=line)
        elif isinstance(stmt, ast.Continue):
            self.b.emit(Op.GOTO, self._continue_labels[-1], line=line)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.b.emit(Op.RETURN, line=line)
            else:
                self.emit_expr(stmt.value)
                self.coerce(stmt.value.type, self._return_type)
                self.b.emit(Op.VRETURN, line=line)
        elif isinstance(stmt, ast.Throw):
            self.emit_expr(stmt.value)
            self.b.emit(Op.ATHROW, line=line)
        elif isinstance(stmt, ast.TryCatch):
            self._emit_try(stmt)
        elif isinstance(stmt, ast.Synchronized):
            self._emit_synchronized(stmt)
        elif isinstance(stmt, ast.SuperCall):
            self.b.emit(Op.LOAD, 0, line=line)
            for arg, ptype in zip(stmt.args, stmt.param_types):
                self.emit_expr(arg)
                self.coerce(arg.type, ptype)
            self.b.emit(
                Op.INVOKESPECIAL,
                method_ref(stmt.target_class, "<init>", len(stmt.args), False),
                line=line,
            )
        else:
            raise CompileError(f"internal: unhandled statement {stmt!r}", line)

    def _emit_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        line = stmt.line
        if isinstance(target, ast.Name):
            if target.kind == "local":
                self.emit_expr(stmt.value)
                self.coerce(stmt.value.type, target.type)
                self.b.emit(Op.STORE, self.slot_of(target.ident), line=line)
            elif target.kind == "field":
                self.b.emit(Op.LOAD, 0, line=line)  # this
                self.emit_expr(stmt.value)
                self.coerce(stmt.value.type, target.type)
                self.b.emit(Op.PUTFIELD, target.ident, line=line)
            else:  # static
                self.emit_expr(stmt.value)
                self.coerce(stmt.value.type, target.type)
                self.b.emit(Op.PUTSTATIC, target.owner, target.ident, line=line)
        elif isinstance(target, ast.FieldAccess):
            if target.kind == "static":
                self.emit_expr(stmt.value)
                self.coerce(stmt.value.type, target.type)
                self.b.emit(
                    Op.PUTSTATIC, target.owner, target.field_name, line=line
                )
            else:
                self.emit_expr(target.obj)
                self.emit_expr(stmt.value)
                self.coerce(stmt.value.type, target.type)
                self.b.emit(Op.PUTFIELD, target.field_name, line=line)
        elif isinstance(target, ast.Index):
            self.emit_expr(target.array)
            self.emit_expr(target.index)
            self.emit_expr(stmt.value)
            self.coerce(stmt.value.type, target.type)
            self.b.emit(Op.ARRSTORE, line=line)
        else:
            raise CompileError("internal: bad assignment target", line)

    def _emit_try(self, stmt: ast.TryCatch) -> None:
        start = self.fresh("try")
        end = self.fresh("tryend")
        handler = self.fresh("catch")
        out = self.fresh("tryout")
        slot = self.declare_local(f"${stmt.exc_name}.{id(stmt)}")
        self.b.label(start)
        self.emit_stmts(stmt.body)
        self.b.label(end)
        self.b.emit(Op.GOTO, out, line=stmt.line)
        self.b.label(handler)
        self.b.emit(Op.STORE, slot, line=stmt.line)
        self._scopes.append({stmt.exc_name: slot})
        for inner in stmt.handler:
            self.emit_stmt(inner)
        self._scopes.pop()
        self.b.label(out)
        self.b.exception_region(start, end, handler, stmt.exc_class)

    def _emit_synchronized(self, stmt: ast.Synchronized) -> None:
        line = stmt.line
        lock_slot = self.declare_local(f"$lock.{id(stmt)}")
        self.emit_expr(stmt.lock)
        self.b.emit(Op.STORE, lock_slot, line=line)
        self.b.emit(Op.LOAD, lock_slot, line=line)
        self.b.emit(Op.MONITORENTER, line=line)
        start = self.fresh("sync")
        end = self.fresh("syncend")
        handler = self.fresh("synccatch")
        out = self.fresh("syncout")
        self.b.label(start)
        self.emit_stmts(stmt.body)
        self.b.emit(Op.LOAD, lock_slot, line=line)
        self.b.emit(Op.MONITOREXIT, line=line)
        self.b.label(end)
        self.b.emit(Op.GOTO, out, line=line)
        self.b.label(handler)
        self.b.emit(Op.LOAD, lock_slot, line=line)
        self.b.emit(Op.MONITOREXIT, line=line)
        self.b.emit(Op.ATHROW, line=line)
        self.b.label(out)
        self.b.exception_region(start, end, handler, "*")

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def emit_branch_unless(self, cond: ast.Expr, false_label: str) -> None:
        """Emit ``cond``; jump to ``false_label`` when it is false."""
        if isinstance(cond, ast.BoolLit):
            if not cond.value:
                self.b.emit(Op.GOTO, false_label, line=cond.line)
            return
        if isinstance(cond, ast.Unary) and cond.op == "!":
            true_label = self.fresh("not")
            self.emit_branch_unless(cond.operand, true_label)
            self.b.emit(Op.GOTO, false_label, line=cond.line)
            self.b.label(true_label)
            return
        if isinstance(cond, ast.Binary):
            if cond.op == "&&":
                self.emit_branch_unless(cond.left, false_label)
                self.emit_branch_unless(cond.right, false_label)
                return
            if cond.op == "||":
                ok = self.fresh("or")
                fail = self.fresh("orfail")
                self.emit_branch_unless(cond.left, fail)
                self.b.emit(Op.GOTO, ok, line=cond.line)
                self.b.label(fail)
                self.emit_branch_unless(cond.right, false_label)
                self.b.label(ok)
                return
            if cond.op in _CMP_TOKENS:
                self._emit_comparison_branch(
                    cond, _NEGATED[_CMP_TOKENS[cond.op]], false_label
                )
                return
        # Generic boolean expression: 0 means false.
        self.emit_expr(cond)
        self.b.emit(Op.IF, "eq", false_label, line=cond.line)

    def _emit_comparison_branch(self, cond: ast.Binary, token: str,
                                target: str) -> None:
        """Jump to ``target`` when ``left <token> right`` holds."""
        left_t, right_t = cond.left.type, cond.right.type
        line = cond.line
        if isinstance(left_t, (ClassType, ArrayType)) or left_t is NULL:
            self.emit_expr(cond.left)
            self.emit_expr(cond.right)
            op = Op.IF_ACMP_EQ if token == "eq" else Op.IF_ACMP_NE
            self.b.emit(op, target, line=line)
            return
        if left_t is STRING and right_t is STRING:
            self.emit_expr(cond.left)
            self.emit_expr(cond.right)
            self.b.emit(Op.IF_SCMP, token, target, line=line)
            return
        promote = FLOAT in (left_t, right_t)
        self.emit_expr(cond.left)
        if promote and left_t is INT:
            self.b.emit(Op.I2F, line=line)
        self.emit_expr(cond.right)
        if promote and right_t is INT:
            self.b.emit(Op.I2F, line=line)
        self.b.emit(Op.IF_FCMP if promote else Op.IF_ICMP, token, target,
                    line=line)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def push_default(self, t: Type) -> None:
        if t is INT or t is BOOL:
            self.b.emit(Op.ICONST, 0)
        elif t is FLOAT:
            self.b.emit(Op.FCONST, 0.0)
        elif t is STRING:
            self.b.emit(Op.SCONST, "")
        else:
            self.b.emit(Op.ACONST_NULL)

    def coerce(self, from_t: Type, to_t: Type) -> None:
        if from_t is INT and to_t is FLOAT:
            self.b.emit(Op.I2F)
        elif from_t is BOOL and to_t is ANY:
            # Printable contexts (System.println) render booleans as
            # Java does: "true"/"false", not 1/0.
            self._stringify(BOOL, 0)

    def _stringify(self, t: Type, line: int) -> None:
        """Convert the TOS value of type ``t`` to a String."""
        if t is STRING:
            return
        if t is INT:
            self.b.emit(Op.I2S, line=line)
        elif t is FLOAT:
            self.b.emit(Op.F2S, line=line)
        elif t is BOOL:
            true_label = self.fresh("bs")
            end = self.fresh("bse")
            self.b.emit(Op.IF, "ne", true_label, line=line)
            self.b.emit(Op.SCONST, "false", line=line)
            self.b.emit(Op.GOTO, end, line=line)
            self.b.label(true_label)
            self.b.emit(Op.SCONST, "true", line=line)
            self.b.label(end)
        else:
            # Reference: Class@oid via Object.toString.
            self.b.emit(
                Op.INVOKEVIRTUAL, method_ref("Object", "toString", 0, True),
                line=line,
            )

    def emit_expr(self, expr: ast.Expr) -> None:
        line = expr.line
        if isinstance(expr, ast.IntLit):
            self.b.emit(Op.ICONST, expr.value, line=line)
        elif isinstance(expr, ast.FloatLit):
            self.b.emit(Op.FCONST, expr.value, line=line)
        elif isinstance(expr, ast.StringLit):
            self.b.emit(Op.SCONST, expr.value, line=line)
        elif isinstance(expr, ast.BoolLit):
            self.b.emit(Op.ICONST, 1 if expr.value else 0, line=line)
        elif isinstance(expr, ast.NullLit):
            self.b.emit(Op.ACONST_NULL, line=line)
        elif isinstance(expr, ast.This):
            self.b.emit(Op.LOAD, 0, line=line)
        elif isinstance(expr, ast.Name):
            if expr.kind == "local":
                self.b.emit(Op.LOAD, self.slot_of(expr.ident), line=line)
            elif expr.kind == "field":
                self.b.emit(Op.LOAD, 0, line=line)
                self.b.emit(Op.GETFIELD, expr.ident, line=line)
            elif expr.kind == "static":
                self.b.emit(Op.GETSTATIC, expr.owner, expr.ident, line=line)
            else:
                raise CompileError(
                    f"class name {expr.ident!r} used as a value", line
                )
        elif isinstance(expr, ast.Unary):
            self._emit_unary(expr)
        elif isinstance(expr, ast.Binary):
            self._emit_binary(expr)
        elif isinstance(expr, ast.Ternary):
            else_label = self.fresh("terne")
            end = self.fresh("ternx")
            self.emit_branch_unless(expr.cond, else_label)
            self.emit_expr(expr.then_value)
            self.coerce(expr.then_value.type, expr.type)
            self.b.emit(Op.GOTO, end, line=line)
            self.b.label(else_label)
            self.emit_expr(expr.else_value)
            self.coerce(expr.else_value.type, expr.type)
            self.b.label(end)
        elif isinstance(expr, ast.FieldAccess):
            if expr.kind == "static":
                self.b.emit(Op.GETSTATIC, expr.owner, expr.field_name, line=line)
            elif expr.kind == "arraylength":
                self.emit_expr(expr.obj)
                self.b.emit(Op.ARRAYLENGTH, line=line)
            else:
                self.emit_expr(expr.obj)
                self.b.emit(Op.GETFIELD, expr.field_name, line=line)
        elif isinstance(expr, ast.Index):
            self.emit_expr(expr.array)
            self.emit_expr(expr.index)
            self.b.emit(Op.ARRLOAD, line=line)
        elif isinstance(expr, ast.Call):
            self._emit_call(expr)
        elif isinstance(expr, ast.NewObject):
            self.b.emit(Op.NEW, expr.class_name, line=line)
            self.b.emit(Op.DUP, line=line)
            for arg, ptype in zip(expr.args, expr.param_types):
                self.emit_expr(arg)
                self.coerce(arg.type, ptype)
            self.b.emit(
                Op.INVOKESPECIAL,
                method_ref(expr.target_class, "<init>", len(expr.args), False),
                line=line,
            )
        elif isinstance(expr, ast.NewArray):
            self.emit_expr(expr.size)
            elem = expr.type.elem
            self.b.emit(Op.NEWARRAY, elem_token(elem), line=line)
        elif isinstance(expr, ast.Cast):
            self.emit_expr(expr.value)
            if expr.kind == "i2f":
                self.b.emit(Op.I2F, line=line)
            elif expr.kind == "f2i":
                self.b.emit(Op.F2I, line=line)
            elif expr.kind == "ref" and isinstance(expr.sem_target, ClassType):
                self.b.emit(Op.CHECKCAST, expr.sem_target.name, line=line)
            # casts to array types are unchecked (documented deviation)
        elif isinstance(expr, ast.InstanceOf):
            self.emit_expr(expr.value)
            self.b.emit(Op.INSTANCEOF, expr.class_name, line=line)
        else:
            raise CompileError(f"internal: unhandled expression {expr!r}", line)

    def _emit_unary(self, expr: ast.Unary) -> None:
        line = expr.line
        self.emit_expr(expr.operand)
        if expr.op == "-":
            self.b.emit(
                Op.FNEG if expr.operand.type is FLOAT else Op.INEG, line=line
            )
        elif expr.op == "!":
            self.b.emit(Op.ICONST, 1, line=line)
            self.b.emit(Op.IXOR, line=line)
        elif expr.op == "~":
            self.b.emit(Op.ICONST, -1, line=line)
            self.b.emit(Op.IXOR, line=line)

    def _emit_binary(self, expr: ast.Binary) -> None:
        op = expr.op
        line = expr.line
        left_t, right_t = expr.left.type, expr.right.type

        if op == "+" and expr.type is STRING:
            self.emit_expr(expr.left)
            self._stringify(left_t, line)
            self.emit_expr(expr.right)
            self._stringify(right_t, line)
            self.b.emit(Op.SCONCAT, line=line)
            return

        if op in _NUMERIC_OPS and expr.type in (INT, FLOAT):
            int_op, float_op = _NUMERIC_OPS[op]
            promote = expr.type is FLOAT
            self.emit_expr(expr.left)
            if promote and left_t is INT:
                self.b.emit(Op.I2F, line=line)
            self.emit_expr(expr.right)
            if promote and right_t is INT:
                self.b.emit(Op.I2F, line=line)
            self.b.emit(float_op if promote else int_op, line=line)
            return

        if op == "%" and expr.type is FLOAT:
            raise CompileError("float remainder is not supported", line)

        if op in _INT_ONLY_OPS:
            self.emit_expr(expr.left)
            self.emit_expr(expr.right)
            self.b.emit(_INT_ONLY_OPS[op], line=line)
            return

        if op in _CMP_TOKENS or op in ("&&", "||"):
            # Boolean-valued: materialize 0/1 through branches.
            true_label = self.fresh("bt")
            end = self.fresh("bte")
            false_label = self.fresh("bf")
            self.emit_branch_unless(expr, false_label)
            self.b.label(true_label)
            self.b.emit(Op.ICONST, 1, line=line)
            self.b.emit(Op.GOTO, end, line=line)
            self.b.label(false_label)
            self.b.emit(Op.ICONST, 0, line=line)
            self.b.label(end)
            return

        raise CompileError(f"internal: unhandled binary {op!r}", line)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def _emit_call(self, expr: ast.Call) -> None:
        line = expr.line
        if expr.builtin == "streq":
            self.emit_expr(expr.obj)
            self.emit_expr(expr.args[0])
            true_label = self.fresh("seq")
            end = self.fresh("seqe")
            self.b.emit(Op.IF_SCMP, "eq", true_label, line=line)
            self.b.emit(Op.ICONST, 0, line=line)
            self.b.emit(Op.GOTO, end, line=line)
            self.b.label(true_label)
            self.b.emit(Op.ICONST, 1, line=line)
            self.b.label(end)
            return
        if expr.builtin.startswith("Strings."):
            name = expr.builtin.split(".", 1)[1]
            self.emit_expr(expr.obj)
            for arg, ptype in zip(expr.args, expr.param_types):
                self.emit_expr(arg)
                self.coerce(arg.type, ptype)
            self.b.emit(
                Op.INVOKESTATIC,
                method_ref("Strings", name, 1 + len(expr.args), expr.returns),
                line=line,
            )
            return

        if expr.invoke_kind == "static":
            for arg, ptype in zip(expr.args, expr.param_types):
                self.emit_expr(arg)
                self.coerce(arg.type, ptype)
            self.b.emit(
                Op.INVOKESTATIC,
                method_ref(expr.target_class, expr.method_name,
                           len(expr.args), expr.returns),
                line=line,
            )
            return

        self.emit_expr(expr.obj) if expr.obj is not None else self.b.emit(
            Op.LOAD, 0, line=line
        )
        for arg, ptype in zip(expr.args, expr.param_types):
            self.emit_expr(arg)
            self.coerce(arg.type, ptype)
        opcode = (
            Op.INVOKESPECIAL if expr.invoke_kind == "special"
            else Op.INVOKEVIRTUAL
        )
        self.b.emit(
            opcode,
            method_ref(expr.target_class, expr.method_name,
                       len(expr.args), expr.returns),
            line=line,
        )

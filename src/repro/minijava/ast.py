"""MiniJava abstract syntax tree.

Plain dataclasses.  Every node carries a source line for diagnostics.
The semantic analyzer annotates expression nodes in place (``type``)
and stores resolution results (``target``/``slot``/...) consumed by the
code generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

# ----------------------------------------------------------------------
# Types (as written in source — resolved by the checker)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TypeName:
    """A syntactic type: base name + array depth."""

    name: str          # "int", "float", "boolean", "String", "void", class
    dims: int = 0      # number of [] pairs

    def __str__(self) -> str:
        return self.name + "[]" * self.dims


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------


@dataclass
class Program:
    classes: List["ClassDecl"]


@dataclass
class ClassDecl:
    name: str
    superclass: str          # "Object" by default
    fields: List["FieldDecl"]
    methods: List["MethodDecl"]
    line: int = 0


@dataclass
class FieldDecl:
    name: str
    type: TypeName
    is_static: bool
    initializer: Optional["Expr"]  # static fields only
    line: int = 0


@dataclass
class Param:
    name: str
    type: TypeName
    line: int = 0


@dataclass
class MethodDecl:
    name: str                       # "<init>" for constructors
    params: List[Param]
    return_type: TypeName           # void for constructors
    body: List["Stmt"]
    is_static: bool = False
    is_synchronized: bool = False
    line: int = 0
    #: Filled by the checker: owning class name.
    owner: str = ""


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    body: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    type: TypeName = TypeName("int")
    initializer: Optional["Expr"] = None
    #: Local slot, assigned by codegen.
    slot: int = -1


@dataclass
class Assign(Stmt):
    """target = value, where target is Name / FieldAccess / Index."""

    target: "Expr" = None
    value: "Expr" = None


@dataclass
class ExprStmt(Stmt):
    expr: "Expr" = None


@dataclass
class If(Stmt):
    cond: "Expr" = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: "Expr" = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None      # VarDecl / Assign / ExprStmt
    cond: Optional["Expr"] = None
    update: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional["Expr"] = None


@dataclass
class Throw(Stmt):
    value: "Expr" = None


@dataclass
class TryCatch(Stmt):
    body: List[Stmt] = field(default_factory=list)
    exc_class: str = "Exception"
    exc_name: str = "e"
    handler: List[Stmt] = field(default_factory=list)
    #: Local slot for the caught exception (codegen).
    slot: int = -1


@dataclass
class Synchronized(Stmt):
    lock: "Expr" = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class SuperCall(Stmt):
    """``super(args);`` — only as the first statement of a constructor."""

    args: List["Expr"] = field(default_factory=list)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0
    #: Resolved type, set by the checker (a semantics.Type).
    type: Any = None


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Name(Expr):
    """An identifier: local, param, field, or class reference.

    Resolution (set by the checker):
        kind: 'local' | 'field' | 'static' | 'class'
        owner: declaring class for field/static
        slot: codegen-assigned for locals
    """

    ident: str = ""
    kind: str = ""
    owner: str = ""
    slot: int = -1


@dataclass
class This(Expr):
    pass


@dataclass
class Unary(Expr):
    op: str = ""
    operand: "Expr" = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: "Expr" = None
    right: "Expr" = None


@dataclass
class Ternary(Expr):
    cond: "Expr" = None
    then_value: "Expr" = None
    else_value: "Expr" = None


@dataclass
class FieldAccess(Expr):
    """obj.field or ClassName.field (checker distinguishes).

    Resolution: kind 'instance'|'static'|'arraylength'; owner class.
    """

    obj: Optional["Expr"] = None
    field_name: str = ""
    class_name: str = ""     # set when obj is a class reference
    kind: str = ""
    owner: str = ""


@dataclass
class Index(Expr):
    array: "Expr" = None
    index: "Expr" = None


@dataclass
class Call(Expr):
    """obj.m(args), ClassName.m(args), m(args), super.m(args).

    Resolution: target_class, target_name, is_static, returns,
    invoke_kind ('virtual'|'special'|'static'), builtin (optional
    lowering tag for String sugar).
    """

    obj: Optional["Expr"] = None
    class_name: str = ""
    method_name: str = ""
    args: List["Expr"] = field(default_factory=list)
    is_super: bool = False
    target_class: str = ""
    invoke_kind: str = ""
    returns: bool = False
    builtin: str = ""


@dataclass
class NewObject(Expr):
    class_name: str = ""
    args: List["Expr"] = field(default_factory=list)


@dataclass
class NewArray(Expr):
    elem: TypeName = TypeName("int")
    size: "Expr" = None


@dataclass
class Cast(Expr):
    target: TypeName = TypeName("int")
    value: "Expr" = None


@dataclass
class InstanceOf(Expr):
    value: "Expr" = None
    class_name: str = ""

"""Application-provided native classes.

The paper's side-effect handler interface exists so that *applications*
can bring their own native methods and still be recovered correctly
(§4.4: "Applications can incorporate their own handlers using the same
functions").  This module is the compiler-facing half of that story: a
declarative way to register a native class so MiniJava programs can
call it, with the runtime stubs generated automatically.

Example::

    beeper = NativeClassSpec("Beeper", methods=(
        NativeMethodSpec("beep", ("int",), "void"),
    ))
    registry = compile_program(source, native_classes=[beeper])
    natives.register(NativeSpec("Beeper.beep/1", impl, is_output=True,
                                testable=True, se_handler="beeper"))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.classfile.loader import ClassRegistry
from repro.classfile.model import JClass, JMethod
from repro.errors import CompileError
from repro.minijava.semantics import ClassInfo
from repro.minijava.types import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    VOID,
    ArrayType,
    ClassType,
    MethodSig,
    Type,
)

_NAMED_TYPES = {"int": INT, "float": FLOAT, "boolean": BOOL,
                "String": STRING, "void": VOID}


def parse_type_name(text: str) -> Type:
    """Parse a type string like ``int``, ``String``, ``int[]``, ``Foo[][]``."""
    dims = 0
    while text.endswith("[]"):
        text = text[:-2]
        dims += 1
    base = _NAMED_TYPES.get(text)
    if base is None:
        if not text or not text[0].isalpha():
            raise CompileError(f"bad type name {text!r}")
        base = ClassType(text)
    if base is VOID and dims:
        raise CompileError("void[] is not a type")
    for _ in range(dims):
        base = ArrayType(base)
    return base


@dataclass(frozen=True)
class NativeMethodSpec:
    """One native method on an application-provided class."""

    name: str
    params: Tuple[str, ...]
    ret: str = "void"
    is_static: bool = True


@dataclass(frozen=True)
class NativeClassSpec:
    """An application-provided class of native methods."""

    name: str
    methods: Tuple[NativeMethodSpec, ...] = field(default_factory=tuple)
    superclass: str = "Object"

    def class_info(self) -> ClassInfo:
        """The checker-side view of this class."""
        info = ClassInfo(self.name, self.superclass, is_builtin=True)
        for m in self.methods:
            info.methods[(m.name, len(m.params))] = MethodSig(
                self.name,
                m.name,
                tuple(parse_type_name(p) for p in m.params),
                parse_type_name(m.ret),
                is_static=m.is_static,
            )
        return info

    def register_stubs(self, registry: ClassRegistry) -> None:
        """Register the runtime class with native method stubs."""
        cls = JClass(self.name, self.superclass)
        for m in self.methods:
            cls.add_method(JMethod(
                m.name, len(m.params), m.ret != "void",
                is_native=True, is_static=m.is_static,
            ))
        registry.register(cls)

"""MiniJava compiler facade.

Typical use::

    from repro.minijava import compile_program

    registry = compile_program(source_text)
    jvm = JVM(registry, default_natives(), env.attach("p"))
    jvm.run("Main")
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from repro.classfile.loader import ClassRegistry
from repro.minijava import ast
from repro.minijava.codegen import CodeGen
from repro.minijava.parser import parse
from repro.minijava.semantics import Checker
from repro.runtime.stdlib import new_program_registry


def compile_program(
    sources: Union[str, Iterable[str]],
    registry: Optional[ClassRegistry] = None,
    native_classes: Iterable = (),
) -> ClassRegistry:
    """Compile one or more MiniJava source texts into a class registry.

    All sources are checked together as a single program (cross-source
    references are allowed).  The returned registry contains the
    standard library plus the compiled classes and is ready to hand to
    :class:`~repro.runtime.jvm.JVM`.

    Args:
        sources: MiniJava text(s).
        registry: an existing registry to compile into (a fresh one
            with the standard library otherwise).
        native_classes: application-provided
            :class:`~repro.minijava.extensions.NativeClassSpec` classes
            — their methods become callable from MiniJava and their
            native stubs are registered automatically (implementations
            go into a :class:`~repro.runtime.natives.NativeRegistry`).

    Raises:
        CompileError: on any lexical, syntactic, or semantic error.
    """
    if isinstance(sources, str):
        sources = [sources]
    classes: List[ast.ClassDecl] = []
    for text in sources:
        classes.extend(parse(text).classes)
    program = ast.Program(classes)
    native_classes = list(native_classes)
    extra = {spec.name: spec.class_info() for spec in native_classes}
    checker = Checker(program, extra_builtins=extra)
    checker.check()
    if registry is None:
        registry = new_program_registry()
    for spec in native_classes:
        spec.register_stubs(registry)
    CodeGen(program, checker).generate(registry)
    return registry

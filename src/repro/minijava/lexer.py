"""MiniJava lexer.

MiniJava is the Java-like source language used to author workloads and
examples for the mini-JVM (the paper's substrate is Java source run on
the JVM).  The lexer produces a flat token stream with line/column
information for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import CompileError

KEYWORDS = {
    "class", "extends", "static", "synchronized", "native",
    "int", "float", "boolean", "void", "String",
    "if", "else", "while", "for", "return", "break", "continue",
    "new", "this", "super", "null", "true", "false",
    "try", "catch", "throw", "instanceof",
    "public", "private", "protected", "final",  # accepted and ignored
}

#: Multi-character operators, longest first.
OPERATORS = [
    ">>>=", "<<=", ">>=", ">>>",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str        # 'kw', 'ident', 'int', 'float', 'string', 'char', 'op', 'eof'
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            '"': '"', "'": "'"}


def tokenize(source: str) -> List[Token]:
    """Lex MiniJava source into tokens (plus a trailing EOF token).

    Raises:
        CompileError: on unterminated literals or unknown characters.
    """
    tokens: List[Token] = []
    line, col = 1, 1
    i = 0
    n = len(source)

    def error(message: str) -> CompileError:
        return CompileError(message, line, col)

    while i < n:
        ch = source[i]

        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue

        # Comments
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end == -1 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = end + 2
            continue

        start_line, start_col = line, col

        # Identifiers and keywords
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, start_line, start_col))
            col += j - i
            i = j
            continue

        # Numbers
        if ch.isdigit():
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
                if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                    is_float = True
                    j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                if j < n and source[j] in "eE":
                    k = j + 1
                    if k < n and source[k] in "+-":
                        k += 1
                    if k < n and source[k].isdigit():
                        is_float = True
                        j = k
                        while j < n and source[j].isdigit():
                            j += 1
            if j < n and source[j] in "fF":
                is_float = True
                text = source[i:j]
                j += 1
            else:
                text = source[i:j]
            tokens.append(Token("float" if is_float else "int", text,
                                start_line, start_col))
            col += j - i
            i = j
            continue

        # String literals
        if ch == '"':
            j = i + 1
            out = []
            while True:
                if j >= n:
                    raise error("unterminated string literal")
                c = source[j]
                if c == '"':
                    j += 1
                    break
                if c == "\n":
                    raise error("newline in string literal")
                if c == "\\":
                    j += 1
                    if j >= n or source[j] not in _ESCAPES:
                        raise error("bad string escape")
                    out.append(_ESCAPES[source[j]])
                else:
                    out.append(c)
                j += 1
            tokens.append(Token("string", "".join(out), start_line, start_col))
            col += j - i
            i = j
            continue

        # Character literals (become int tokens)
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                j += 1
                if j >= n or source[j] not in _ESCAPES:
                    raise error("bad character escape")
                value = _ESCAPES[source[j]]
                j += 1
            elif j < n and source[j] != "'":
                value = source[j]
                j += 1
            else:
                raise error("empty character literal")
            if j >= n or source[j] != "'":
                raise error("unterminated character literal")
            j += 1
            tokens.append(Token("char", value, start_line, start_col))
            col += j - i
            i = j
            continue

        # Operators / punctuation
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, start_line, start_col))
                i += len(op)
                col += len(op)
                break
        else:
            raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, col))
    return tokens

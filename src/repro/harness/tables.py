"""Render the paper's table and figures from measured runs.

Every function takes the ``{workload: WorkloadRun}`` dict produced by
:func:`repro.harness.runner.get_all_runs` and returns both structured
data (for assertions) and a printable text rendition that mirrors the
paper's layout (Table 2 and the stacked bars of Figures 2-4, rendered
as numeric columns).
"""

from __future__ import annotations

from typing import Dict, List

from repro.harness.costs import DEFAULT_COST_MODEL, CostModel
from repro.harness.runner import WorkloadRun

#: Paper column order.
WORKLOAD_ORDER = ("jess", "jack", "compress", "db", "mpegaudio", "mtrt")


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(title: str, headers: List[str],
                 rows: List[List]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    table = [headers] + [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = [title]
    for r, row in enumerate(table):
        line = "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        )
        lines.append(line)
        if r == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


# ======================================================================
# Table 2
# ======================================================================

def table2_data(runs: Dict[str, WorkloadRun]) -> Dict[str, Dict[str, int]]:
    """Table 2 rows: per-benchmark properties of both implementations."""
    data: Dict[str, Dict[str, int]] = {}
    for name in WORKLOAD_ORDER:
        run = runs[name]
        lock = run.lock_sync.primary
        sched = run.thread_sched.primary
        data[name] = {
            "nm_intercepted": lock.natives_intercepted,
            "nm_output_commits": lock.output_commits,
            "lock_logged_messages": lock.messages_sent,
            "lock_records": lock.lock_records,
            "locks_acquired": lock.locks_acquired,
            "objects_locked": lock.objects_locked,
            "largest_l_asn": lock.largest_l_asn,
            "ts_logged_messages": sched.messages_sent,
            "ts_schedule_records": sched.schedule_records,
            "reschedules": sched.reschedules,
        }
    return data


def render_table2(runs: Dict[str, WorkloadRun]) -> str:
    data = table2_data(runs)
    rows = [
        ["NM Intercepted"] + [data[w]["nm_intercepted"] for w in WORKLOAD_ORDER],
        ["NM Output Commits"] + [data[w]["nm_output_commits"] for w in WORKLOAD_ORDER],
        ["Logged Messages (Lock)"] + [data[w]["lock_logged_messages"] for w in WORKLOAD_ORDER],
        ["Locks Acquired"] + [data[w]["locks_acquired"] for w in WORKLOAD_ORDER],
        ["Objects Locked"] + [data[w]["objects_locked"] for w in WORKLOAD_ORDER],
        ["Largest l_asn"] + [data[w]["largest_l_asn"] for w in WORKLOAD_ORDER],
        ["Logged Messages (TS)"] + [data[w]["ts_logged_messages"] for w in WORKLOAD_ORDER],
        ["Reschedules (TS)"] + [data[w]["reschedules"] for w in WORKLOAD_ORDER],
    ]
    return render_table(
        "Table 2: benchmark properties (this reproduction, scaled)",
        ["Event"] + list(WORKLOAD_ORDER),
        rows,
    )


# ======================================================================
# Figure 2: normalized execution times, four bars per workload
# ======================================================================

def fig2_data(runs: Dict[str, WorkloadRun],
              model: CostModel = DEFAULT_COST_MODEL
              ) -> Dict[str, Dict[str, float]]:
    data: Dict[str, Dict[str, float]] = {}
    for name in WORKLOAD_ORDER:
        run = runs[name]
        base = model.base_time(run.baseline)
        data[name] = {
            "ts_primary": model.primary_time(
                run.thread_sched.primary, "thread_sched") / base,
            "ts_backup": model.backup_time(run.thread_sched.backup) / base,
            "lock_primary": model.primary_time(
                run.lock_sync.primary, "lock_sync") / base,
            "lock_backup": model.backup_time(run.lock_sync.backup) / base,
        }
    return data


def render_fig2(runs: Dict[str, WorkloadRun],
                model: CostModel = DEFAULT_COST_MODEL) -> str:
    data = fig2_data(runs, model)
    bars = ("ts_primary", "ts_backup", "lock_primary", "lock_backup")
    rows = [
        [bar] + [data[w][bar] for w in WORKLOAD_ORDER] for bar in bars
    ]
    return render_table(
        "Figure 2: execution time normalized to the unreplicated JVM",
        ["Configuration"] + list(WORKLOAD_ORDER),
        rows,
    )


# ======================================================================
# Figures 3 / 4: stacked overhead breakdowns
# ======================================================================

_FIG3_COMPONENTS = ("base", "communication", "lock_acquire",
                    "pessimistic", "misc")
_FIG4_COMPONENTS = ("base", "communication", "rescheduling",
                    "pessimistic", "misc")


def _breakdown_data(runs, strategy, components, model):
    data: Dict[str, Dict[str, float]] = {}
    for name in WORKLOAD_ORDER:
        run = runs[name]
        base = model.base_time(run.baseline)
        breakdown = model.primary_breakdown(
            run.strategy(strategy).primary, strategy
        )
        data[name] = {c: breakdown.get(c, 0.0) / base for c in components}
        data[name]["total"] = sum(
            breakdown.get(c, 0.0) for c in components
        ) / base
    return data


def fig3_data(runs: Dict[str, WorkloadRun],
              model: CostModel = DEFAULT_COST_MODEL):
    """Normalized overhead components for replicated lock acquisition."""
    return _breakdown_data(runs, "lock_sync", _FIG3_COMPONENTS, model)


def fig4_data(runs: Dict[str, WorkloadRun],
              model: CostModel = DEFAULT_COST_MODEL):
    """Normalized overhead components for replicated thread scheduling."""
    return _breakdown_data(runs, "thread_sched", _FIG4_COMPONENTS, model)


def _render_breakdown(title, data, components):
    rows = [
        [component] + [data[w][component] for w in WORKLOAD_ORDER]
        for component in components + ("total",)
    ]
    return render_table(title, ["Component"] + list(WORKLOAD_ORDER), rows)


def render_fig3(runs, model: CostModel = DEFAULT_COST_MODEL) -> str:
    return _render_breakdown(
        "Figure 3: replicated lock acquisition — normalized overhead",
        fig3_data(runs, model), _FIG3_COMPONENTS,
    )


def render_fig4(runs, model: CostModel = DEFAULT_COST_MODEL) -> str:
    return _render_breakdown(
        "Figure 4: replicated thread scheduling — normalized overhead",
        fig4_data(runs, model), _FIG4_COMPONENTS,
    )


def averages(data: Dict[str, Dict[str, float]], key: str) -> float:
    """Mean of one column across workloads (paper: 140% vs 60%)."""
    return sum(data[w][key] for w in WORKLOAD_ORDER) / len(WORKLOAD_ORDER)

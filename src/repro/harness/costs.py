"""Simulated-time cost model.

The paper measures wall-clock seconds on two Sun E5000s over 100 Mbps
Ethernet; we measure *event counts* on a simulated substrate and
convert them to simulated time with the weights below.  The weights are
calibrated once, against the qualitative facts the paper reports — they
are NOT fitted per experiment, so the benchmark figures are genuine
model outputs, not curve fits:

* communication dominates replication overhead (paper §5): per-byte
  and per-message costs are the largest multipliers;
* an output commit stalls the primary for a LAN round trip;
* a lock acquisition record costs a few dozen "instructions" to build
  and buffer (the paper's records are 36 bytes and cheap to create);
* replicated thread scheduling adds ~12 instructions of bookkeeping to
  the bytecode dispatch loop (paper §5) — modelled as a per-bytecode
  tracking charge plus a per-control-flow-change charge;
* heavy bytecodes (array element access, float arithmetic) cost more
  host cycles per dispatch than simple stack ops, and native calls pay
  a JNI-style transition — this is what makes compress and mpegaudio
  *relatively* cheap to replicate, as in Figures 3 and 4.

Time units are abstract "simple bytecode equivalents".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.replication.metrics import ReplicationMetrics


@dataclass(frozen=True)
class CostModel:
    """Weights for converting counters into simulated time."""

    # --- base execution -------------------------------------------------
    instr_unit: float = 1.0
    heavy_extra: float = 1.8        # extra cost of an array/float bytecode
    native_call: float = 12.0       # JNI-style transition per native
    #: Host-dispatch surcharge per bytecode by execution engine:
    #: ``step`` re-enters the engine (fetch, handler lookup, full
    #: checks) for every bytecode, ``slice`` amortizes dispatch over a
    #: batch between safe-point events, and ``block`` executes whole
    #: hot straight-line runs as one compiled superinstruction.  Fleet
    #: serving prices request service with :meth:`dispatch_rate`, so
    #: the engine tier shows up in the latency distribution.
    dispatch_step: float = 0.50
    dispatch_slice: float = 0.10
    dispatch_block: float = 0.02

    # --- communication ---------------------------------------------------
    msg_fixed: float = 2500.0       # per message put on the wire
    per_byte: float = 11.0          # per payload byte
    ack_rtt: float = 30000.0        # output-commit stall (LAN round trip)

    # --- transport faults (all zero-contribution on the default
    # --- in-memory transport) -------------------------------------------
    retransmit_msg: float = 2500.0  # a resent message re-pays the wire cost
    rtt_wait_unit: float = 250.0    # per simulated tick inside an ack wait
    backpressure_wait: float = 600.0  # per stall on the bounded send buffer

    # --- bookkeeping: replicated lock acquisition ------------------------
    lock_record: float = 22.0       # build + buffer one acquisition record
    id_map: float = 22.0

    # --- bookkeeping: replicated thread scheduling -----------------------
    sched_record: float = 150.0     # capture progress point + buffer
    per_instr_tracking: float = 0.40   # pc_off update per bytecode
    per_cf_tracking: float = 0.55      # br_cnt update per control-flow change
    #: pc_off tracking under the batched ("slice") execution engine:
    #: progress is only materialized at safe-point events, so the
    #: per-bytecode charge shrinks to the amortized cost of keeping the
    #: batch counter (the per-CF charge is unchanged — br_cnt still
    #: ticks on every control-flow change).
    per_instr_tracking_fast: float = 0.08
    #: pc_off tracking under the compiled ("block") engine: a whole
    #: straight-line run settles its accounting as one add at block
    #: exit, so the per-bytecode charge amortizes to near zero.
    per_instr_tracking_block: float = 0.02
    #: Credit per record serialized by the per-flush batch encoder:
    #: the hot log call buffers the record object and the constant
    #: framing (epoch envelope prefix) is built once per flush instead
    #: of once per record.  Small against msg_fixed by design.
    batched_encode_discount: float = 6.0

    # --- divergence detection --------------------------------------------
    digest_record: float = 180.0    # hash the reachable state at a slice
                                    # boundary (digest bytes additionally
                                    # pay per_byte through bytes_sent)

    # --- checkpoint transfer (replica-group re-integration) --------------
    checkpoint_chunk: float = 90.0   # serialize + frame one chunk record
    checkpoint_byte: float = 2.5     # walk/encode one byte of JVM state
                                     # (wire bytes additionally pay
                                     # per_byte through bytes_sent)
    checkpoint_restore: float = 4000.0  # rebuild heap/frames/monitors
                                        # from an adopted snapshot
    #: Compose one delta checkpoint onto the retained basis (steady
    #: state incremental checkpointing; the delta's chunks and bytes
    #: are priced like full-checkpoint chunks and bytes).
    delta_compose: float = 800.0

    # --- quorum voting (Byzantine mode) -----------------------------------
    vote_record: float = 45.0       # build + buffer one ballot record
                                    # (vote bytes additionally pay
                                    # per_byte through bytes_sent)
    cert_check: float = 18.0        # tally lookup + certificate match
                                    # per quorum decision
    output_gate: float = 35.0       # hold one output at the commit gate
                                    # until its certificate lands (the
                                    # ack stall itself is priced via
                                    # ack_rtt like every other commit)

    # --- native interception ---------------------------------------------
    native_check: float = 8.0       # hash-table lookup per nd/output native
    result_record: float = 25.0     # build one native-result record
    se_record: float = 20.0         # run a side-effect handler's log()

    # --- backup replay ----------------------------------------------------
    replay_record: float = 28.0     # match/consume one logged record

    # --- fleet serving (per request, simulated "bytecode equivalents") ---
    request_route: float = 40.0     # hash the key, pick the shard, enqueue
    ingest_wakeup: float = 120.0    # unpark the server thread at its
                                    # Server.recv safe-point event
    response_commit: float = 60.0   # append the reply to the stable
                                    # response log (the output commit's
                                    # ack stall is priced via ack_rtt)
    #: Flat serving gap charged to the in-flight request when its shard's
    #: primary dies mid-service: detection timeout + backup promotion +
    #: log replay + request-port reconciliation, before the first
    #: post-failover response can commit.  The checkpoint-transfer work
    #: of re-arming the *next* backup happens off the serving path.
    failover_gap: float = 1_500_000.0

    # ------------------------------------------------------------------
    def dispatch_rate(self, engine: str) -> float:
        """Per-bytecode dispatch surcharge of one execution engine
        (unknown names price like the reference ``step`` loop)."""
        return {"slice": self.dispatch_slice,
                "block": self.dispatch_block}.get(engine,
                                                  self.dispatch_step)

    def base_time(self, metrics: ReplicationMetrics) -> float:
        """Execution time of the program itself on this substrate."""
        return (
            metrics.instructions * self.instr_unit
            + metrics.heavy_ops * self.heavy_extra
            + metrics.native_calls * self.native_call
        )

    def primary_breakdown(self, metrics: ReplicationMetrics,
                          strategy: str) -> Dict[str, float]:
        """Overhead components at the primary (Figures 3 and 4)."""
        communication = max(0.0, (
            metrics.messages_sent * self.msg_fixed
            + metrics.bytes_sent * self.per_byte
            + metrics.retransmits * self.retransmit_msg
            + metrics.backpressure_stalls * self.backpressure_wait
            - metrics.records_batch_encoded * self.batched_encode_discount
        ))
        pessimistic = (
            metrics.ack_waits * self.ack_rtt
            + metrics.ack_wait_time * self.rtt_wait_unit
        )
        misc = (
            metrics.natives_intercepted * self.native_check
            + metrics.native_result_records * self.result_record
            + metrics.se_records * self.se_record
            + metrics.digest_records * self.digest_record
        )
        breakdown = {
            "base": self.base_time(metrics),
            "communication": communication,
            "pessimistic": pessimistic,
        }
        # Re-integration work is only present for supervised replica
        # groups; single-failover runs keep their original components.
        ckpt = self.checkpoint_component(metrics)
        if ckpt:
            breakdown["checkpoint"] = ckpt
        # Ballot traffic only exists for quorum-voting groups; crash
        # fault runs keep their original components.
        voting = self.voting_component(metrics)
        if voting:
            breakdown["voting"] = voting
        if strategy == "lock_sync":
            breakdown["lock_acquire"] = (
                metrics.lock_records * self.lock_record
                + metrics.id_maps * self.id_map
            )
            breakdown["misc"] = misc
        elif strategy == "thread_sched":
            breakdown["rescheduling"] = (
                metrics.schedule_records * self.sched_record
            )
            instr_tracking = {
                "slice": self.per_instr_tracking_fast,
                "block": self.per_instr_tracking_block,
            }.get(metrics.engine, self.per_instr_tracking)
            breakdown["misc"] = misc + (
                metrics.instructions * instr_tracking
                + metrics.cf_changes * self.per_cf_tracking
            )
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        return breakdown

    def checkpoint_component(self, metrics: ReplicationMetrics) -> float:
        """Cost of taking, framing, and shipping checkpoints (zero when
        the run never checkpointed).  Wire bytes and the commit's ack
        stall are charged where every other byte and ack is charged —
        this component covers the state capture itself."""
        return (
            metrics.checkpoint_records * self.checkpoint_chunk
            + metrics.checkpoint_bytes * self.checkpoint_byte
            + metrics.delta_records * self.checkpoint_chunk
            + metrics.delta_bytes * self.checkpoint_byte
            + metrics.deltas_composed * self.delta_compose
            + metrics.checkpoints_restored * self.checkpoint_restore
        )

    def voting_component(self, metrics: ReplicationMetrics) -> float:
        """Cost of casting ballots, tallying certificates, and gating
        outputs on quorum (zero for any non-voting run).  Vote wire
        bytes are charged where every other byte is charged — this
        component covers building the ballots and running the tally."""
        return (
            getattr(metrics, "votes_cast", 0) * self.vote_record
            + getattr(metrics, "quorum_certs", 0) * self.cert_check
            + getattr(metrics, "outputs_gated", 0) * self.output_gate
        )

    def backup_time(self, metrics: ReplicationMetrics) -> float:
        """Replay time at the backup: re-execution plus record matching
        (no messages to send, no output-commit stalls)."""
        return (
            self.base_time(metrics)
            + metrics.records_replayed * self.replay_record
        )

    def primary_time(self, metrics: ReplicationMetrics,
                     strategy: str) -> float:
        return sum(self.primary_breakdown(metrics, strategy).values())

    # ------------------------------------------------------------------
    def request_overhead(self) -> float:
        """Fixed serving cost of one fleet request, beyond the bytecodes
        the server program itself executes for it."""
        return self.request_route + self.ingest_wakeup + self.response_commit

    def fleet_breakdown(self, instructions: int, requests: int,
                        failovers: int) -> Dict[str, float]:
        """Serving-time components of one traffic run: program work,
        per-request fleet plumbing, and failover gaps."""
        return {
            "base": instructions * self.instr_unit,
            "routing": requests * self.request_route,
            "ingest": requests * self.ingest_wakeup,
            "response_commit": requests * self.response_commit,
            "failover": failovers * self.failover_gap,
        }


DEFAULT_COST_MODEL = CostModel()

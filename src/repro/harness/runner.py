"""Experiment runner: executes workloads under every configuration.

For one workload the paper's evaluation needs five executions:

1. the original (unreplicated) JVM — the normalization baseline;
2. primary under replicated lock acquisition;
3. backup replaying the full lock-acquisition log;
4. primary under replicated thread scheduling;
5. backup replaying the full schedule log.

:func:`run_workload` performs all five, cross-checks that every
configuration produced the *same program output* (the replication
machinery must be semantically invisible), and returns the metric
bundles the tables and figures are computed from.  Results are memoized
per (workload, profile) so the four benchmark programs — one per table
or figure — share executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.env.environment import Environment
from repro.errors import ReproError
from repro.replication.config import ReplicationConfig
from repro.replication.machine import ReplicatedJVM, run_unreplicated
from repro.replication.metrics import ReplicationMetrics
from repro.workloads import ALL_WORKLOADS, BY_NAME
from repro.workloads.base import Workload


@dataclass
class StrategyRun:
    """Primary + full-log backup replay for one strategy."""

    primary: ReplicationMetrics
    backup: ReplicationMetrics
    primary_console: str
    backup_digest_matches: bool


@dataclass
class WorkloadRun:
    """All five configurations for one workload."""

    workload: str
    baseline: ReplicationMetrics
    baseline_console: str
    lock_sync: StrategyRun
    thread_sched: StrategyRun

    def strategy(self, name: str) -> StrategyRun:
        if name == "lock_sync":
            return self.lock_sync
        if name == "thread_sched":
            return self.thread_sched
        raise KeyError(name)


def _baseline_metrics(jvm) -> ReplicationMetrics:
    metrics = ReplicationMetrics(role="baseline")
    metrics.instructions = jvm.instructions
    metrics.cf_changes = sum(t.br_cnt for t in jvm.scheduler.threads)
    metrics.heavy_ops = jvm.heavy_ops
    metrics.native_calls = jvm.native_calls
    metrics.locks_acquired = jvm.sync.total_acquisitions
    metrics.objects_locked = jvm.sync.monitors_created
    metrics.largest_l_asn = jvm.sync.largest_l_asn
    metrics.reschedules = jvm.scheduler.reschedules
    return metrics


def _run_strategy(workload: Workload, profile: str,
                  strategy: str) -> StrategyRun:
    env = Environment()
    workload.prepare_env(env, profile)
    machine = ReplicatedJVM(
        workload.compile(profile), env=env,
        config=ReplicationConfig(strategy=strategy),
    )
    result = machine.run(workload.main_class)
    if not result.final_result.ok:
        raise ReproError(
            f"{workload.name}/{strategy} primary failed: "
            f"{result.final_result.uncaught}"
        )
    primary_console = env.console.transcript()
    primary_digest = machine.primary_jvm.state_digest()

    replay = machine.replay_backup(workload.main_class)
    if not replay.ok:
        raise ReproError(
            f"{workload.name}/{strategy} backup replay failed: "
            f"{replay.uncaught}"
        )
    digest_ok = machine.backup_jvm.state_digest() == primary_digest
    if env.console.transcript() != primary_console:
        raise ReproError(
            f"{workload.name}/{strategy}: backup replay duplicated output"
        )
    return StrategyRun(
        primary=machine.primary_metrics,
        backup=machine.backup_metrics,
        primary_console=primary_console,
        backup_digest_matches=digest_ok,
    )


def run_workload(workload: Workload, profile: str = "bench") -> WorkloadRun:
    """Execute all five configurations of one workload."""
    env = Environment()
    workload.prepare_env(env, profile)
    result, jvm = run_unreplicated(
        workload.compile(profile), workload.main_class, env=env
    )
    if not result.ok:
        raise ReproError(
            f"{workload.name} baseline failed: {result.uncaught}"
        )
    baseline_console = env.console.transcript()

    lock = _run_strategy(workload, profile, "lock_sync")
    sched = _run_strategy(workload, profile, "thread_sched")

    # The replicated runs use the same non-determinism seeds as the
    # baseline, so single-threaded workloads must produce the identical
    # transcript; mtrt's transcript is order-stable too (output happens
    # after the join).
    for name, console in (("lock_sync", lock.primary_console),
                          ("thread_sched", sched.primary_console)):
        if console != baseline_console:
            raise ReproError(
                f"{workload.name}/{name} output diverged from baseline:\n"
                f"baseline: {baseline_console!r}\n"
                f"replica:  {console!r}"
            )

    return WorkloadRun(
        workload=workload.name,
        baseline=_baseline_metrics(jvm),
        baseline_console=baseline_console,
        lock_sync=lock,
        thread_sched=sched,
    )


_CACHE: Dict[Tuple[str, str], WorkloadRun] = {}


def get_run(name: str, profile: str = "bench") -> WorkloadRun:
    """Memoized :func:`run_workload` by workload name."""
    key = (name, profile)
    if key not in _CACHE:
        _CACHE[key] = run_workload(BY_NAME[name], profile)
    return _CACHE[key]


def get_all_runs(profile: str = "bench") -> Dict[str, WorkloadRun]:
    """Runs for every workload, in paper order."""
    return {w.name: get_run(w.name, profile) for w in ALL_WORKLOADS}


def clear_cache() -> None:
    _CACHE.clear()

"""Benchmark harness: cost model, experiment runner, table rendering."""

from repro.harness.costs import CostModel, DEFAULT_COST_MODEL
from repro.harness.runner import (
    WorkloadRun, StrategyRun, run_workload, get_run, get_all_runs,
    clear_cache,
)
from repro.harness.tables import (
    WORKLOAD_ORDER, table2_data, render_table2,
    fig2_data, render_fig2, fig3_data, render_fig3,
    fig4_data, render_fig4, averages, render_table,
)

__all__ = [
    "CostModel", "DEFAULT_COST_MODEL",
    "WorkloadRun", "StrategyRun", "run_workload", "get_run",
    "get_all_runs", "clear_cache",
    "WORKLOAD_ORDER", "table2_data", "render_table2",
    "fig2_data", "render_fig2", "fig3_data", "render_fig3",
    "fig4_data", "render_fig4", "averages", "render_table",
]

"""Ablation analyses for the design choices DESIGN.md calls out.

A1 — record buffering: the paper's primary buffers small records and
flushes periodically or on output commit.  :func:`buffering_sweep`
re-runs a workload with different batch sizes and reports messages and
simulated communication cost per batch size.

A2 — progress-tracking cost: the paper added ~12 instructions to the
bytecode dispatch loop to track the PC, dominating thread-scheduling
overhead.  :func:`tracking_sweep` re-costs an existing run under
different per-bytecode tracking charges (including the cheaper
per-branch-only design the paper suggests Jikes-style deterministic
yield points would enable).

A3 — interval coalescing: the paper observes (§6, vs DejaVu) that
logical thread intervals would collapse mtrt's 700k lock acquisitions
to 56 intervals.  :func:`coalesce_lock_records` computes exactly that
transform on our logs: consecutive acquisitions by the same thread
merge into one interval record.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.env.environment import Environment
from repro.harness.costs import CostModel
from repro.replication.config import ReplicationConfig
from repro.replication.machine import ReplicatedJVM
from repro.replication.records import LockAcqRecord
from repro.workloads.base import Workload


def buffering_sweep(workload: Workload, profile: str,
                    batch_sizes: Tuple[int, ...] = (1, 16, 64, 512),
                    model: CostModel = CostModel()) -> Dict[int, Dict[str, float]]:
    """Run the lock-sync primary with several channel batch sizes."""
    results: Dict[int, Dict[str, float]] = {}
    for batch in batch_sizes:
        env = Environment()
        workload.prepare_env(env, profile)
        machine = ReplicatedJVM(
            workload.compile(profile), env=env,
            config=ReplicationConfig(strategy="lock_sync",
                                     batch_records=batch),
        )
        run = machine.run(workload.main_class)
        assert run.final_result.ok
        metrics = machine.primary_metrics
        results[batch] = {
            "messages": metrics.messages_sent,
            "records": metrics.records_sent,
            "bytes": metrics.bytes_sent,
            "communication_cost": (
                metrics.messages_sent * model.msg_fixed
                + metrics.bytes_sent * model.per_byte
            ),
        }
    return results


def tracking_sweep(metrics, base_time: float,
                   charges: Tuple[float, ...] = (0.0, 0.1, 0.4, 1.0),
                   model: CostModel = CostModel()) -> Dict[float, float]:
    """Normalized thread-sched overhead under different per-bytecode
    tracking charges (0.0 models a deterministic-yield-point design
    where only branch counts are maintained)."""
    results: Dict[float, float] = {}
    for charge in charges:
        misc = (
            metrics.instructions * charge
            + metrics.cf_changes * model.per_cf_tracking
            + metrics.natives_intercepted * model.native_check
            + metrics.native_result_records * model.result_record
            + metrics.se_records * model.se_record
        )
        communication = (
            metrics.messages_sent * model.msg_fixed
            + metrics.bytes_sent * model.per_byte
        )
        rescheduling = metrics.schedule_records * model.sched_record
        pessimistic = metrics.ack_waits * model.ack_rtt
        total = (model.base_time(metrics) + misc + communication
                 + rescheduling + pessimistic)
        results[charge] = total / base_time
    return results


def coalesce_lock_records(raw_log: List[bytes]) -> Tuple[int, int]:
    """(record_count, interval_count) for the lock acquisition log:
    consecutive acquisitions by the same thread form one interval."""
    intervals = 0
    count = 0
    previous_thread = None
    for data in raw_log:
        from repro.replication.records import decode_record
        record = decode_record(data)
        if not isinstance(record, LockAcqRecord):
            continue
        count += 1
        if record.t_id != previous_thread:
            intervals += 1
            previous_thread = record.t_id
    return count, intervals

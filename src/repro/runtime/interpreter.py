"""The bytecode execution engine (BEE).

One :class:`Interpreter` instance executes bytecodes for every thread of
one JVM.  The paper's model — "a set of cooperating state machines,
each corresponding to an application thread" — maps onto this directly:
the state machine's commands are bytecodes, its state variables are the
frames, heap, and statics reachable from the thread.

The engine has a single execution semantics with two drivers:

* :meth:`Interpreter.run_slice` is the fast path.  Each method's code
  array is translated once into a *pre-decoded stream* of
  ``(kind, bound_handler, decoded_operands)`` triples (cached per
  interpreter, keyed by ``Code.uid``), and the inner loop executes
  straight-line bytecodes back-to-back, returning to the
  scheduler/replication layer only at *safe-point-relevant events*:
  control-flow instructions that tick ``br_cnt``, monitor operations,
  and budget exhaustion (natives and output only occur inside invokes,
  which are control flow).  GC requests and replay-preemption checks
  are honoured at every such boundary — see DESIGN.md, "The execution
  fast path", for why those are the only points where they can matter.
* With ``engine="block"``, :meth:`Interpreter.run_slice` additionally
  compiles *hot* straight-line runs of plain bytecodes into single
  generated-Python superinstructions (:mod:`repro.runtime.blockjit`),
  cached on the decoded stream and invalidated with it.
* :meth:`Interpreter.step` executes exactly one instruction with the
  identical semantics (a specialized ``budget=1`` path), restoring the
  seed's per-instruction discipline for detached contexts and for the
  ``engine="step"`` reference loop.

Counter discipline (replication-critical):

* ``thread.br_cnt`` increments on every executed control-flow-change
  instruction (branches, jumps, invocations, returns, throws) — the
  paper instruments exactly this set rather than every bytecode;
* ``thread.instructions`` increments on every instruction (cost model);
* monitor counters are maintained by :mod:`repro.runtime.sync`.

Blocking instructions (``monitorenter``, synchronized-method entry,
``wait`` re-acquisition) leave the pc unchanged when they cannot
complete, so the thread retries the same instruction when rescheduled.
This gives clean safe-point semantics: a thread's progress point
``(br_cnt, pc, mon_cnt)`` always identifies an instruction boundary.

Inline caches: method resolution (static/special once, virtual
monomorphic by receiver class), static-field slots, and
instanceof/checkcast subtype answers are cached in the decoded
operands; string/float/int constants are materialized at decode time.
All of it is dropped when the class registry's version moves.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.bytecode.methodref import MethodRef, parse_method_ref
from repro.bytecode.opcodes import CMP_FNS, OP_INFO, Op
from repro.errors import LinkageError, ReproError
from repro.runtime.blockjit import BRANCH, compile_block
from repro.runtime.frames import Frame
from repro.runtime.scheduler import SliceEnd
from repro.runtime.sync import EnterResult
from repro.runtime.threads import JavaThread
from repro.runtime.values import (
    JArray,
    JObject,
    conforms,
    describe,
    java_div,
    java_rem,
    java_shl,
    java_shr,
    java_ushr,
    wrap_int,
)

#: Opcodes counted as control-flow changes for ``br_cnt``.
CF_OPS = frozenset(op for op, info in OP_INFO.items() if info.is_control_flow)

#: Decoded-stream instruction kinds.  Plain instructions may be batched
#: between safe-point boundaries; the other two are safe-point events.
_K_PLAIN = 0   # no br_cnt tick, no monitor effect
_K_CF = 1      # control-flow change: ticks br_cnt
_K_MON = 2     # monitorenter/monitorexit: may tick mon_cnt or block

#: Effectively-unbounded default for quantum/budget.
_UNLIMITED = 1 << 60


class StepResult(enum.Enum):
    CONTINUE = "continue"
    BLOCKED = "blocked"
    WAITING = "waiting"
    PARKED = "parked"
    YIELDED = "yielded"
    TERMINATED = "terminated"
    #: A hot backup reached a native whose log record has not been
    #: delivered yet; the instruction retries when more log arrives.
    STARVED = "starved"


class _DecodedStream(list):
    """One method's pre-decoded instruction stream plus the ``block``
    engine's per-stream state: compiled blocks keyed by entry pc
    (``False`` marks an uncompilable entry) and the per-entry execution
    counts feeding the hot threshold.  Everything hangs off the stream
    itself, so a registry-version bump — which drops the stream — drops
    the compiled blocks *atomically* with the decoded triples and the
    inline caches they share."""

    __slots__ = ("code", "blocks", "counts")

    def __init__(self, triples, code) -> None:
        super().__init__(triples)
        self.code = code
        self.blocks: dict = {}
        self.counts: dict = {}


class _InvokeSite:
    """Per-call-site inline cache for method resolution.

    Static and special sites resolve once; virtual sites cache the last
    receiver class seen (monomorphic inline cache).  The matching
    intrinsic lookup is cached alongside the method so the hot path
    never rebuilds the ``(class, name, nargs)`` key.  Sites live inside
    an interpreter's decoded streams, so they can never leak a bound
    method or intrinsic across replicas.
    """

    __slots__ = ("op", "ref", "nargs", "method", "intrinsic",
                 "vclass", "vmethod", "vintrinsic")

    def __init__(self, op: Op, ref: MethodRef) -> None:
        self.op = op
        self.ref = ref
        self.nargs = ref.nargs
        self.method = None        # static/special resolution
        self.intrinsic = None
        self.vclass: Optional[str] = None   # virtual: last receiver class
        self.vmethod = None
        self.vintrinsic = None


class Interpreter:
    """Executes bytecodes against one JVM instance."""

    def __init__(self, jvm) -> None:
        self._jvm = jvm
        self._registry = jvm.registry
        self._heap = jvm.heap
        self._sync = jvm.sync
        self._ref_cache: Dict[str, MethodRef] = {}
        self._dispatch = self._build_dispatch()
        self._decoders = self._build_decoders()
        #: Decoded streams keyed by ``Code.uid`` — per interpreter, so
        #: bound handlers and inline caches never cross replicas even
        #: though the class registry (and its Code objects) are shared.
        self._code_cache: Dict[int, list] = {}
        self._new_checked: set = set()
        self._registry_version = self._registry.version
        self._compile_blocks = jvm.config.engine == "block"
        self._block_threshold = jvm.config.block_hot_threshold
        #: Lifetime counters for the block tier (metrics/cost model).
        self.blocks_compiled = 0
        self.block_cache_hits = 0

    # ==================================================================
    # The execution engine
    # ==================================================================
    def run_slice(self, thread: JavaThread, *, quantum: int = _UNLIMITED,
                  controller=None, budget: int = _UNLIMITED) -> SliceEnd:
        """Run ``thread`` until a safe-point event ends the slice.

        With a ``controller`` (the scheduler's), the engine honours the
        full slice discipline: GC safe points and replay preemption are
        checked at every event boundary, ``jvm.instructions`` advances,
        and the slice ends on quantum exhaustion (measured in control
        flow changes, like the legacy loop).  Without one (detached
        contexts, :meth:`step`), the engine never collects, never
        preempts, and leaves ``jvm.instructions`` alone — exactly the
        seed's ``step()`` behaviour.

        ``budget`` bounds the number of instructions executed;
        exhaustion returns :data:`SliceEnd.BUDGET`, which only this
        engine's callers observe (the JVM run loop never sees it).
        """
        if self._registry_version != self._registry.version:
            self._invalidate_caches()
        if quantum <= 0:
            # The legacy loop noticed a degenerate quantum only after
            # running one instruction; mirror that exactly.
            end = self.run_slice(thread, controller=controller, budget=1)
            return SliceEnd.QUANTUM if end is SliceEnd.BUDGET else end
        jvm = self._jvm
        heap = self._heap
        track = controller is not None
        check_preempt = track and controller.needs_preempt_checks
        should_preempt = controller.should_preempt if check_preempt else None
        frames = thread.frames
        cache = self._code_cache
        compile_blocks = self._compile_blocks
        start_br = thread.br_cnt
        rem = budget
        pending = 0  # executed plain ops not yet flushed to jvm.instructions
        bhits = 0    # compiled-block hits, flushed to the counter once
        try:
            while True:
                # ---- safe-point boundary: full checks ----------------
                if track:
                    if heap.gc_requested:
                        if pending:
                            jvm.instructions += pending
                            pending = 0
                        end = jvm.gc_safepoint(thread)
                        if end is not None:
                            return end
                    if check_preempt and should_preempt(thread):
                        return SliceEnd.CONTROLLER
                frame = frames[-1]
                stream = frame.decoded
                if stream is None:
                    code = frame.method.code
                    stream = cache.get(code.uid)
                    if stream is None:
                        stream = self._decode(code)
                    frame.decoded = stream
                kind, handler, arg = stream[frame.pc]
                if kind == _K_PLAIN:
                    if compile_blocks:
                        pc = frame.pc
                        blk = stream.blocks.get(pc)
                        if blk is None:
                            counts = stream.counts
                            seen = counts.get(pc, 0) + 1
                            counts[pc] = seen
                            if seen >= self._block_threshold:
                                blk = compile_block(self, stream, pc)
                                stream.blocks[pc] = (
                                    False if blk is None else blk
                                )
                                if blk is not None:
                                    self.blocks_compiled += 1
                        if blk and rem >= blk.size:
                            # ---- compiled superinstruction block -----
                            # Executes the whole straight-line run in
                            # one call; counts come back deferred, like
                            # the batch loop's, and every exit lands on
                            # the same boundaries it would reach.
                            bhits += 1
                            n, result = blk.fn(thread, frame, check_preempt)
                            thread.instructions += n
                            pending += n
                            rem -= n
                            while result is BRANCH:
                                # The fused branch ran: event-exit
                                # bookkeeping, same order as below —
                                # then chain straight into the next
                                # compiled block.  The loop-top checks
                                # are provably no-ops here: the block
                                # bails *before* the branch when a GC
                                # is pending or preemption checks are
                                # on, and a branch can set neither.
                                if track and pending:
                                    jvm.instructions += pending
                                    pending = 0
                                if thread.br_cnt - start_br >= quantum:
                                    return SliceEnd.QUANTUM
                                if rem <= 0:
                                    return SliceEnd.BUDGET
                                pc = frame.pc
                                blk = stream.blocks.get(pc)
                                if blk is None:
                                    counts = stream.counts
                                    seen = counts.get(pc, 0) + 1
                                    counts[pc] = seen
                                    if seen < self._block_threshold:
                                        break
                                    blk = compile_block(self, stream, pc)
                                    stream.blocks[pc] = (
                                        False if blk is None else blk
                                    )
                                    if blk is not None:
                                        self.blocks_compiled += 1
                                if not blk or rem < blk.size:
                                    break
                                bhits += 1
                                n, result = blk.fn(
                                    thread, frame, check_preempt
                                )
                                thread.instructions += n
                                pending += n
                                rem -= n
                            if result is BRANCH:
                                continue  # un-compiled target: dispatch
                            if result is None:
                                if rem <= 0:
                                    return SliceEnd.BUDGET
                                continue  # event op next: full checks
                            if result is not StepResult.CONTINUE:
                                return _SLICE_END_OF_RESULT[result]
                            if rem <= 0:
                                return SliceEnd.BUDGET
                            continue
                    # ---- batch straight-line bytecodes ---------------
                    # Per-thread accounting runs in a local and is
                    # flushed at every batch exit: nothing inside a
                    # plain handler can observe thread.instructions,
                    # and the undo paths all live in event handlers.
                    n = 0
                    while True:
                        n += 1
                        result = handler(thread, frame, arg)
                        if result is not None:
                            break
                        if n >= rem:
                            thread.instructions += n
                            pending += n
                            return SliceEnd.BUDGET
                        kind, handler, arg = stream[frame.pc]
                        if kind != _K_PLAIN:
                            result = None
                            break
                    thread.instructions += n
                    pending += n
                    rem -= n
                    if result is None:
                        continue  # event op next: boundary checks first
                    if result is not StepResult.CONTINUE:
                        return _SLICE_END_OF_RESULT[result]
                    # An implicit exception transferred control without
                    # ticking br_cnt; treat it as a boundary so the next
                    # instruction gets full checks.
                    if rem <= 0:
                        return SliceEnd.BUDGET
                    continue
                # ---- safe-point event op (control flow / monitor) ----
                thread.instructions += 1
                if kind == _K_CF:
                    thread.br_cnt += 1
                if track:
                    if pending:
                        jvm.instructions += pending
                        pending = 0
                    result = handler(thread, frame, arg)
                    jvm.instructions += 1
                else:
                    result = handler(thread, frame, arg)
                if result is not None and result is not StepResult.CONTINUE:
                    return _SLICE_END_OF_RESULT[result]
                if thread.br_cnt - start_br >= quantum:
                    return SliceEnd.QUANTUM
                rem -= 1
                if rem <= 0:
                    return SliceEnd.BUDGET
        except IndexError:
            frame = thread.frames[-1] if thread.frames else None
            if frame is None or frame.pc >= len(frame.method.code.instructions):
                raise
            op = frame.method.code.instructions[frame.pc].op
            raise ReproError(
                f"operand stack underflow at {frame.method.qualified_name}"
                f":{frame.pc} ({op.value}) — verifier should have caught this"
            ) from None
        finally:
            if pending and track:
                jvm.instructions += pending
            if bhits:
                self.block_cache_hits += bhits

    def step(self, thread: JavaThread) -> StepResult:
        """Execute exactly one instruction of ``thread``.

        Semantically identical to :meth:`run_slice` with ``budget=1``
        and no controller, but specialized: the per-slice setup
        (quantum bookkeeping, budget/batch state, deferred-accounting
        plumbing) is hoisted out so the ``engine="step"`` oracle does
        not pay fast-path re-entry per instruction.  Counter discipline
        is preserved exactly — plain ops bump ``thread.instructions``
        *after* their handler, event ops *before* (their handlers carry
        the undo paths).
        """
        if self._registry_version != self._registry.version:
            self._invalidate_caches()
        try:
            frame = thread.frames[-1]
            stream = frame.decoded
            if stream is None:
                code = frame.method.code
                stream = self._code_cache.get(code.uid)
                if stream is None:
                    stream = self._decode(code)
                frame.decoded = stream
            kind, handler, arg = stream[frame.pc]
            if kind == _K_PLAIN:
                result = handler(thread, frame, arg)
                thread.instructions += 1
            else:
                thread.instructions += 1
                if kind == _K_CF:
                    thread.br_cnt += 1
                result = handler(thread, frame, arg)
            if result is None or result is StepResult.CONTINUE:
                return StepResult.CONTINUE
            return result
        except IndexError:
            frame = thread.frames[-1] if thread.frames else None
            if frame is None or frame.pc >= len(frame.method.code.instructions):
                raise
            op = frame.method.code.instructions[frame.pc].op
            raise ReproError(
                f"operand stack underflow at {frame.method.qualified_name}"
                f":{frame.pc} ({op.value}) — verifier should have caught this"
            ) from None

    # ==================================================================
    # Pre-decoded instruction streams
    # ==================================================================
    def _decode(self, code) -> list:
        """Translate (and cache) one code array into its stream of
        ``(kind, bound_handler, decoded_operands)`` triples."""
        stream = _DecodedStream(
            (self._decode_instr(instr) for instr in code.instructions), code
        )
        self._code_cache[code.uid] = stream
        return stream

    def _decode_instr(self, instr):
        op = instr.op
        info = OP_INFO[op]
        if info.is_control_flow:
            kind = _K_CF
        elif info.is_monitor:
            kind = _K_MON
        else:
            kind = _K_PLAIN
        decoder = self._decoders.get(op)
        arg = decoder(instr) if decoder is not None else None
        return (kind, self._dispatch[op], arg)

    def _build_decoders(self):
        """Per-opcode operand pre-decoding: the hot loop never touches
        ``Instruction`` objects or re-parses operand strings."""
        def first(instr):
            return instr.operands[0]

        def all_operands(instr):
            return instr.operands

        def cmp_pair(instr):
            cmp_op, target = instr.operands
            return (CMP_FNS[cmp_op], target)

        def static_cell(instr):
            class_name, field_name = instr.operands
            return [class_name, field_name, None]  # slot filled on first use

        def type_cell(instr):
            return [instr.operands[0], None, False]  # last class, last answer

        def invoke_site(instr):
            return _InvokeSite(instr.op, self._method_ref(instr.operands[0]))

        d = {
            op: first
            for op in (
                Op.ICONST, Op.FCONST, Op.SCONST, Op.LOAD, Op.STORE,
                Op.GOTO, Op.IF_NULL, Op.IF_NONNULL, Op.IF_ACMP_EQ,
                Op.IF_ACMP_NE, Op.NEW, Op.GETFIELD, Op.PUTFIELD,
                Op.NEWARRAY,
            )
        }
        d[Op.IINC] = all_operands
        for op in (Op.IF, Op.IF_ICMP, Op.IF_FCMP, Op.IF_SCMP):
            d[op] = cmp_pair
        d[Op.GETSTATIC] = static_cell
        d[Op.PUTSTATIC] = static_cell
        d[Op.INSTANCEOF] = type_cell
        d[Op.CHECKCAST] = type_cell
        for op in (Op.INVOKEVIRTUAL, Op.INVOKESPECIAL, Op.INVOKESTATIC):
            d[op] = invoke_site
        return d

    def _invalidate_caches(self) -> None:
        """Drop all decoded streams and inline caches.

        Called at slice entry whenever the class registry's version has
        moved (class (re)definition): every cached stream may hold stale
        method resolutions, and every live frame may point at one.
        Compiled blocks hang off the streams, so they are dropped in
        the same motion — no stale closure can survive the bump.
        """
        self._code_cache.clear()
        self._new_checked.clear()
        for t in self._jvm.scheduler.threads:
            for fr in t.frames:
                fr.decoded = None
        self._registry_version = self._registry.version

    # ==================================================================
    # Java exception machinery
    # ==================================================================
    def throw_new(self, thread: JavaThread, class_name: str,
                  message: str = "") -> StepResult:
        """Allocate and throw a Java exception of the given class."""
        exc = self._heap.alloc_object(class_name)
        if "message" in exc.fields:
            exc.fields["message"] = message
        return self.dispatch_exception(thread, exc)

    def dispatch_exception(self, thread: JavaThread, exc: JObject) -> StepResult:
        """Unwind frames looking for a handler for ``exc``.

        Monitors held by abandoned frames are released (synchronized
        epilogue + structured-locking cleanup).  If no handler exists,
        the thread terminates with the exception uncaught.
        """
        while thread.frames:
            frame = thread.frames[-1]
            handler_pc = self._find_handler(frame, exc)
            if handler_pc is not None:
                frame.stack.clear()
                frame.stack.append(exc)
                frame.pc = handler_pc
                return StepResult.CONTINUE
            self._release_frame_monitors(thread, frame)
            thread.frames.pop()
        return self._jvm.thread_uncaught(thread, exc)

    def _find_handler(self, frame: Frame, exc: JObject) -> Optional[int]:
        pc = frame.pc
        for row in frame.method.code.exception_table:
            if not row.start_pc <= pc < row.end_pc:
                continue
            if row.class_name == "*" or self._registry.is_subtype(
                exc.class_name, row.class_name
            ):
                return row.handler_pc
        return None

    def _release_frame_monitors(self, thread: JavaThread, frame: Frame) -> None:
        for obj in reversed(frame.held_monitors):
            self._sync.exit(thread, obj)
        frame.held_monitors.clear()
        if frame.sync_object is not None:
            self._sync.exit(thread, frame.sync_object)
            frame.sync_object = None

    # ==================================================================
    # Dispatch table construction
    # ==================================================================
    def _build_dispatch(self):
        d = {
            Op.NOP: self._op_nop,
            Op.ICONST: self._op_const,
            Op.FCONST: self._op_const,
            Op.SCONST: self._op_const,
            Op.ACONST_NULL: self._op_aconst_null,
            Op.LOAD: self._op_load,
            Op.STORE: self._op_store,
            Op.IINC: self._op_iinc,
            Op.POP: self._op_pop,
            Op.DUP: self._op_dup,
            Op.DUP_X1: self._op_dup_x1,
            Op.SWAP: self._op_swap,
            Op.INEG: self._op_ineg,
            Op.FNEG: self._op_fneg,
            Op.I2F: self._op_i2f,
            Op.F2I: self._op_f2i,
            Op.SCONCAT: self._op_sconcat,
            Op.S2I: self._op_s2i,
            Op.I2S: self._op_i2s,
            Op.F2S: self._op_f2s,
            Op.GOTO: self._op_goto,
            Op.IF_ICMP: self._op_if_cmp,
            Op.IF_FCMP: self._op_if_cmp,
            Op.IF_SCMP: self._op_if_cmp,
            Op.IF: self._op_if,
            Op.IF_NULL: self._op_if_null,
            Op.IF_NONNULL: self._op_if_nonnull,
            Op.IF_ACMP_EQ: self._op_if_acmp_eq,
            Op.IF_ACMP_NE: self._op_if_acmp_ne,
            Op.NEW: self._op_new,
            Op.GETFIELD: self._op_getfield,
            Op.PUTFIELD: self._op_putfield,
            Op.GETSTATIC: self._op_getstatic,
            Op.PUTSTATIC: self._op_putstatic,
            Op.INSTANCEOF: self._op_instanceof,
            Op.CHECKCAST: self._op_checkcast,
            Op.NEWARRAY: self._op_newarray,
            Op.ARRLOAD: self._op_arrload,
            Op.ARRSTORE: self._op_arrstore,
            Op.ARRAYLENGTH: self._op_arraylength,
            Op.INVOKEVIRTUAL: self._op_invoke,
            Op.INVOKESPECIAL: self._op_invoke,
            Op.INVOKESTATIC: self._op_invoke,
            Op.RETURN: self._op_return,
            Op.VRETURN: self._op_vreturn,
            Op.MONITORENTER: self._op_monitorenter,
            Op.MONITOREXIT: self._op_monitorexit,
            Op.ATHROW: self._op_athrow,
        }
        for op, fn in _INT_BINOPS.items():
            d[op] = self._make_int_binop(fn, op)
        for op, fn in _FLOAT_BINOPS.items():
            d[op] = self._make_float_binop(fn)
        return d

    # ==================================================================
    # Simple handlers
    #
    # Signature is (thread, frame, arg) where ``arg`` is the pre-decoded
    # operand payload for the opcode (None when it has none).
    # ==================================================================
    def _op_nop(self, thread, frame, arg):
        frame.pc += 1

    def _op_const(self, thread, frame, value):
        frame.stack.append(value)
        frame.pc += 1

    def _op_aconst_null(self, thread, frame, arg):
        frame.stack.append(None)
        frame.pc += 1

    def _op_load(self, thread, frame, slot):
        frame.stack.append(frame.locals[slot])
        frame.pc += 1

    def _op_store(self, thread, frame, slot):
        frame.locals[slot] = frame.stack.pop()
        frame.pc += 1

    def _op_iinc(self, thread, frame, arg):
        slot, delta = arg
        frame.locals[slot] = wrap_int(frame.locals[slot] + delta)
        frame.pc += 1

    def _op_pop(self, thread, frame, arg):
        frame.stack.pop()
        frame.pc += 1

    def _op_dup(self, thread, frame, arg):
        frame.stack.append(frame.stack[-1])
        frame.pc += 1

    def _op_dup_x1(self, thread, frame, arg):
        stack = frame.stack
        top = stack[-1]
        stack.insert(-2, top)
        frame.pc += 1

    def _op_swap(self, thread, frame, arg):
        stack = frame.stack
        stack[-1], stack[-2] = stack[-2], stack[-1]
        frame.pc += 1

    # ==================================================================
    # Arithmetic
    # ==================================================================
    def _make_int_binop(self, fn, op):
        zero_div = op in (Op.IDIV, Op.IREM)

        def handler(thread, frame, arg):
            stack = frame.stack
            b = stack.pop()
            a = stack.pop()
            if zero_div and b == 0:
                return self.throw_new(
                    thread, "ArithmeticException", "/ by zero"
                )
            stack.append(fn(a, b))
            frame.pc += 1

        return handler

    def _make_float_binop(self, fn):
        jvm = self._jvm

        def handler(thread, frame, arg):
            stack = frame.stack
            b = stack.pop()
            a = stack.pop()
            stack.append(fn(a, b))
            jvm.heavy_ops += 1
            frame.pc += 1

        return handler

    def _op_ineg(self, thread, frame, arg):
        frame.stack[-1] = wrap_int(-frame.stack[-1])
        frame.pc += 1

    def _op_fneg(self, thread, frame, arg):
        frame.stack[-1] = -frame.stack[-1]
        frame.pc += 1

    def _op_i2f(self, thread, frame, arg):
        frame.stack[-1] = float(frame.stack[-1])
        frame.pc += 1

    def _op_f2i(self, thread, frame, arg):
        frame.stack[-1] = wrap_int(int(frame.stack[-1]))
        frame.pc += 1

    # ==================================================================
    # Strings
    # ==================================================================
    def _op_sconcat(self, thread, frame, arg):
        stack = frame.stack
        b = stack.pop()
        a = stack.pop()
        stack.append(a + b)
        frame.pc += 1

    def _op_s2i(self, thread, frame, arg):
        text = frame.stack.pop()
        try:
            frame.stack.append(wrap_int(int(text.strip(), 10)))
        except ValueError:
            return self.throw_new(
                thread, "NumberFormatException", f"for input string: {text!r}"
            )
        frame.pc += 1

    def _op_i2s(self, thread, frame, arg):
        frame.stack[-1] = str(frame.stack[-1])
        frame.pc += 1

    def _op_f2s(self, thread, frame, arg):
        value = frame.stack[-1]
        frame.stack[-1] = repr(float(value))
        frame.pc += 1

    # ==================================================================
    # Control flow
    # ==================================================================
    def _op_goto(self, thread, frame, target):
        frame.pc = target

    def _op_if_cmp(self, thread, frame, arg):
        cmp_fn, target = arg
        b = frame.stack.pop()
        a = frame.stack.pop()
        frame.pc = target if cmp_fn(a, b) else frame.pc + 1

    def _op_if(self, thread, frame, arg):
        cmp_fn, target = arg
        a = frame.stack.pop()
        frame.pc = target if cmp_fn(a, 0) else frame.pc + 1

    def _op_if_null(self, thread, frame, target):
        frame.pc = target if frame.stack.pop() is None else frame.pc + 1

    def _op_if_nonnull(self, thread, frame, target):
        frame.pc = target if frame.stack.pop() is not None else frame.pc + 1

    def _op_if_acmp_eq(self, thread, frame, target):
        b = frame.stack.pop()
        a = frame.stack.pop()
        frame.pc = target if a is b else frame.pc + 1

    def _op_if_acmp_ne(self, thread, frame, target):
        b = frame.stack.pop()
        a = frame.stack.pop()
        frame.pc = target if a is not b else frame.pc + 1

    # ==================================================================
    # Objects and fields
    # ==================================================================
    def _op_new(self, thread, frame, class_name):
        if class_name not in self._new_checked:
            self._registry.resolve(class_name)  # raises LinkageError if unknown
            self._new_checked.add(class_name)
        frame.stack.append(self._heap.alloc_object(class_name))
        frame.pc += 1

    def _op_getfield(self, thread, frame, name):
        obj = frame.stack.pop()
        if obj is None:
            return self._npe(thread, f"getfield {name}")
        try:
            frame.stack.append(obj.fields[name])
        except (KeyError, AttributeError):
            raise LinkageError(
                f"no field {name!r} on {describe(obj)}"
            ) from None
        frame.pc += 1

    def _op_putfield(self, thread, frame, name):
        value = frame.stack.pop()
        obj = frame.stack.pop()
        if obj is None:
            return self._npe(thread, f"putfield {name}")
        if not isinstance(obj, JObject) or name not in obj.fields:
            raise LinkageError(f"no field {name!r} on {describe(obj)}")
        obj.fields[name] = value
        obj.mut_era = self._heap.era
        frame.pc += 1

    def _op_getstatic(self, thread, frame, cell):
        slot = cell[2]
        if slot is None:
            slot = self._jvm._static_slot(cell[0], cell[1])
            cell[2] = slot
        frame.stack.append(self._jvm.statics[slot])
        frame.pc += 1

    def _op_putstatic(self, thread, frame, cell):
        slot = cell[2]
        if slot is None:
            slot = self._jvm._static_slot(cell[0], cell[1])
            cell[2] = slot
        self._jvm.statics[slot] = frame.stack.pop()
        frame.pc += 1

    def _op_instanceof(self, thread, frame, cell):
        value = frame.stack.pop()
        frame.stack.append(1 if self._cached_instance(value, cell) else 0)
        frame.pc += 1

    def _op_checkcast(self, thread, frame, cell):
        value = frame.stack[-1]
        if value is not None and not self._cached_instance(value, cell):
            frame.stack.pop()
            return self.throw_new(
                thread,
                "ClassCastException",
                f"{describe(value)} cannot be cast to {cell[0]}",
            )
        frame.pc += 1

    def _cached_instance(self, value, cell) -> bool:
        """``value instanceof cell[0]``, memoizing the last receiver
        class's answer in the cell (monomorphic type-check cache)."""
        if value is None:
            return False
        if isinstance(value, JArray):
            return cell[0] == "Object"
        cls = value.class_name
        if cls == cell[1]:
            return cell[2]
        answer = self._registry.is_subtype(cls, cell[0])
        cell[1] = cls
        cell[2] = answer
        return answer

    def _is_instance(self, value, class_name: str) -> bool:
        if value is None:
            return False
        if isinstance(value, JArray):
            return class_name == "Object"
        return self._registry.is_subtype(value.class_name, class_name)

    # ==================================================================
    # Arrays
    # ==================================================================
    def _op_newarray(self, thread, frame, elem_type):
        length = frame.stack.pop()
        if length < 0:
            return self.throw_new(
                thread, "NegativeArraySizeException", str(length)
            )
        frame.stack.append(self._heap.alloc_array(elem_type, length))
        frame.pc += 1

    def _op_arrload(self, thread, frame, arg):
        index = frame.stack.pop()
        arr = frame.stack.pop()
        if arr is None:
            return self._npe(thread, "arrload")
        if not 0 <= index < len(arr.data):
            return self._oob(thread, index, len(arr.data))
        frame.stack.append(arr.data[index])
        self._jvm.heavy_ops += 1
        frame.pc += 1

    def _op_arrstore(self, thread, frame, arg):
        value = frame.stack.pop()
        index = frame.stack.pop()
        arr = frame.stack.pop()
        if arr is None:
            return self._npe(thread, "arrstore")
        if not 0 <= index < len(arr.data):
            return self._oob(thread, index, len(arr.data))
        if not conforms(value, arr.elem_type):
            raise ReproError(
                f"array store type mismatch: {describe(value)} into "
                f"{arr.elem_type}[]"
            )
        arr.data[index] = value
        arr.mut_era = self._heap.era
        self._jvm.heavy_ops += 1
        frame.pc += 1

    def _op_arraylength(self, thread, frame, arg):
        arr = frame.stack.pop()
        if arr is None:
            return self._npe(thread, "arraylength")
        frame.stack.append(len(arr.data))
        frame.pc += 1

    def _npe(self, thread, what: str) -> StepResult:
        return self.throw_new(thread, "NullPointerException", what)

    def _oob(self, thread, index: int, length: int) -> StepResult:
        return self.throw_new(
            thread,
            "ArrayIndexOutOfBoundsException",
            f"index {index} out of bounds for length {length}",
        )

    # ==================================================================
    # Monitors
    # ==================================================================
    def _op_monitorenter(self, thread, frame, arg):
        obj = frame.stack[-1]  # popped only once acquisition completes
        if obj is None:
            frame.stack.pop()
            return self._npe(thread, "monitorenter")
        result = self._sync.enter(thread, obj)
        if result is EnterResult.ACQUIRED:
            frame.stack.pop()
            frame.held_monitors.append(obj)
            frame.pc += 1
            return None
        # A failed attempt retries later: keep the counters as if the
        # instruction never ran, so progress points don't depend on
        # whether this replica happened to contend.
        thread.instructions -= 1
        return (
            StepResult.BLOCKED
            if result is EnterResult.BLOCKED
            else StepResult.PARKED
        )

    def _op_monitorexit(self, thread, frame, arg):
        obj = frame.stack.pop()
        if obj is None:
            return self._npe(thread, "monitorexit")
        if not self._sync.exit(thread, obj):
            return self.throw_new(
                thread, "IllegalMonitorStateException", "not the owner"
            )
        if obj in frame.held_monitors:
            frame.held_monitors.remove(obj)
        frame.pc += 1

    # ==================================================================
    # Exceptions
    # ==================================================================
    def _op_athrow(self, thread, frame, arg):
        exc = frame.stack.pop()
        if exc is None:
            return self._npe(thread, "athrow")
        if not isinstance(exc, JObject) or not self._registry.is_subtype(
            exc.class_name, "Throwable"
        ):
            raise ReproError(f"athrow of non-Throwable {describe(exc)}")
        return self.dispatch_exception(thread, exc)

    # ==================================================================
    # Invocation
    # ==================================================================
    def _method_ref(self, operand: str) -> MethodRef:
        ref = self._ref_cache.get(operand)
        if ref is None:
            ref = parse_method_ref(operand)
            self._ref_cache[operand] = ref
        return ref

    def _op_invoke(self, thread, frame, site):
        ref = site.ref
        op = site.op
        stack = frame.stack
        nargs = site.nargs

        if op is Op.INVOKESTATIC:
            receiver = None
            method = site.method
            if method is None:
                method = self._jvm.resolve_static_method(ref)
                site.method = method
                site.intrinsic = self._jvm.intrinsics.get(
                    (method.declaring_class.name, method.name, nargs)
                )
            intrinsic = site.intrinsic
        else:
            receiver = stack[-1 - nargs]
            if receiver is None:
                del stack[len(stack) - 1 - nargs:]
                thread.br_cnt -= 1  # the call never happened
                return self._npe(thread, f"invoke {ref.class_name}.{ref.method_name}")
            if op is Op.INVOKESPECIAL:
                method = site.method
                if method is None:
                    method = self._registry.lookup_method(
                        ref.class_name, ref.method_name, nargs
                    )
                    site.method = method
                    site.intrinsic = self._jvm.intrinsics.get(
                        (method.declaring_class.name, method.name, nargs)
                    )
                intrinsic = site.intrinsic
            else:
                dyn_class = (
                    "Object" if isinstance(receiver, JArray)
                    else receiver.class_name
                )
                if dyn_class == site.vclass:
                    method = site.vmethod
                    intrinsic = site.vintrinsic
                else:
                    method = self._registry.lookup_method(
                        dyn_class, ref.method_name, nargs
                    )
                    intrinsic = self._jvm.intrinsics.get(
                        (method.declaring_class.name, method.name, nargs)
                    )
                    site.vclass = dyn_class
                    site.vmethod = method
                    site.vintrinsic = intrinsic

        # Intrinsics (wait/notify/thread ops) manage the stack themselves
        # because several of them suspend mid-instruction.
        if intrinsic is not None:
            return intrinsic(thread, frame, method, receiver, nargs)

        # Hot backups pause on natives whose log record has not arrived
        # yet — checked before any state (stack, monitors) changes, so
        # the invoke retries cleanly.
        if method.is_native and self._jvm.native_policy.would_starve(
            self._jvm, method, thread
        ):
            thread.br_cnt -= 1
            thread.instructions -= 1
            return StepResult.STARVED

        # Synchronized methods acquire their monitor *before* arguments
        # are popped, so a blocked attempt can retry cleanly.
        sync_target = None
        if method.is_synchronized:
            sync_target = (
                self._jvm.class_lock_object(method.declaring_class.name)
                if method.is_static
                else receiver
            )
            result = self._sync.enter(thread, sync_target)
            if result is not EnterResult.ACQUIRED:
                thread.br_cnt -= 1  # retried later; count it once
                thread.instructions -= 1
                return (
                    StepResult.BLOCKED
                    if result is EnterResult.BLOCKED
                    else StepResult.PARKED
                )

        args = stack[len(stack) - nargs:] if nargs else []
        del stack[len(stack) - nargs:]
        if receiver is not None:
            stack.pop()
            args = [receiver] + args

        if method.is_native:
            return self._jvm.invoke_native(
                thread, frame, method, receiver, args, sync_target
            )

        callee = Frame(method, args)
        callee.sync_object = sync_target
        thread.frames.append(callee)
        return None

    # ==================================================================
    # Returns
    # ==================================================================
    def _op_return(self, thread, frame, arg):
        return self._do_return(thread, frame, None, push=False)

    def _op_vreturn(self, thread, frame, arg):
        return self._do_return(thread, frame, frame.stack.pop(), push=True)

    def _do_return(self, thread, frame, value, push: bool):
        self._release_frame_monitors(thread, frame)
        thread.frames.pop()
        if not thread.frames:
            return self._jvm.thread_finished(thread, value if push else None)
        caller = thread.frames[-1]
        if push:
            caller.stack.append(value)
        caller.pc += 1
        return None


_SLICE_END_OF_RESULT = {
    StepResult.BLOCKED: SliceEnd.BLOCKED,
    StepResult.WAITING: SliceEnd.WAITING,
    StepResult.PARKED: SliceEnd.PARKED,
    StepResult.YIELDED: SliceEnd.YIELDED,
    StepResult.TERMINATED: SliceEnd.TERMINATED,
    StepResult.STARVED: SliceEnd.STARVED,
}

_STEP_OF_SLICE_END = {
    SliceEnd.BUDGET: StepResult.CONTINUE,
    SliceEnd.BLOCKED: StepResult.BLOCKED,
    SliceEnd.WAITING: StepResult.WAITING,
    SliceEnd.PARKED: StepResult.PARKED,
    SliceEnd.YIELDED: StepResult.YIELDED,
    SliceEnd.TERMINATED: StepResult.TERMINATED,
    SliceEnd.STARVED: StepResult.STARVED,
}


_INT_BINOPS = {
    Op.IADD: lambda a, b: wrap_int(a + b),
    Op.ISUB: lambda a, b: wrap_int(a - b),
    Op.IMUL: lambda a, b: wrap_int(a * b),
    Op.IDIV: java_div,
    Op.IREM: java_rem,
    Op.ISHL: java_shl,
    Op.ISHR: java_shr,
    Op.IUSHR: java_ushr,
    Op.IAND: lambda a, b: wrap_int(a & b),
    Op.IOR: lambda a, b: wrap_int(a | b),
    Op.IXOR: lambda a, b: wrap_int(a ^ b),
}

_FLOAT_BINOPS = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FDIV: lambda a, b: (a / b) if b != 0.0 else _f_div_zero(a),
}


def _f_div_zero(a: float) -> float:
    """Java float division by zero yields ±Inf or NaN, never a trap."""
    if a == 0.0:
        return float("nan")
    return float("inf") if a > 0 else float("-inf")

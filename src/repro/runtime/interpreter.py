"""The bytecode execution engine (BEE).

One :class:`Interpreter` instance executes bytecodes for every thread of
one JVM; :meth:`Interpreter.step` runs exactly one instruction of one
thread and reports how the thread's state changed.  The paper's model —
"a set of cooperating state machines, each corresponding to an
application thread" — maps onto this directly: the state machine's
commands are bytecodes, its state variables are the frames, heap, and
statics reachable from the thread.

Counter discipline (replication-critical):

* ``thread.br_cnt`` increments on every executed control-flow-change
  instruction (branches, jumps, invocations, returns, throws) — the
  paper instruments exactly this set rather than every bytecode;
* ``thread.instructions`` increments on every instruction (cost model);
* monitor counters are maintained by :mod:`repro.runtime.sync`.

Blocking instructions (``monitorenter``, synchronized-method entry,
``wait`` re-acquisition) leave the pc unchanged when they cannot
complete, so the thread retries the same instruction when rescheduled.
This gives clean safe-point semantics: a thread's progress point
``(br_cnt, pc, mon_cnt)`` always identifies an instruction boundary.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.bytecode.methodref import MethodRef, parse_method_ref
from repro.bytecode.opcodes import OP_INFO, Op, compare
from repro.errors import LinkageError, ReproError
from repro.runtime.frames import Frame
from repro.runtime.sync import EnterResult
from repro.runtime.threads import JavaThread
from repro.runtime.values import (
    JArray,
    JObject,
    conforms,
    describe,
    java_div,
    java_rem,
    java_shl,
    java_shr,
    java_ushr,
    wrap_int,
)

#: Opcodes counted as control-flow changes for ``br_cnt``.
CF_OPS = frozenset(op for op, info in OP_INFO.items() if info.is_control_flow)


class StepResult(enum.Enum):
    CONTINUE = "continue"
    BLOCKED = "blocked"
    WAITING = "waiting"
    PARKED = "parked"
    YIELDED = "yielded"
    TERMINATED = "terminated"
    #: A hot backup reached a native whose log record has not been
    #: delivered yet; the instruction retries when more log arrives.
    STARVED = "starved"


class Interpreter:
    """Executes bytecodes against one JVM instance."""

    def __init__(self, jvm) -> None:
        self._jvm = jvm
        self._registry = jvm.registry
        self._heap = jvm.heap
        self._sync = jvm.sync
        self._ref_cache: Dict[str, MethodRef] = {}
        self._dispatch = self._build_dispatch()

    # ==================================================================
    # Single-step execution
    # ==================================================================
    def step(self, thread: JavaThread) -> StepResult:
        """Execute one instruction of ``thread``."""
        frame = thread.frames[-1]
        instr = frame.method.code.instructions[frame.pc]
        op = instr.op
        thread.instructions += 1
        if op in CF_OPS:
            thread.br_cnt += 1
        handler = self._dispatch[op]
        try:
            result = handler(thread, frame, instr)
        except IndexError:
            raise ReproError(
                f"operand stack underflow at {frame.method.qualified_name}"
                f":{frame.pc} ({op.value}) — verifier should have caught this"
            ) from None
        return StepResult.CONTINUE if result is None else result

    # ==================================================================
    # Java exception machinery
    # ==================================================================
    def throw_new(self, thread: JavaThread, class_name: str,
                  message: str = "") -> StepResult:
        """Allocate and throw a Java exception of the given class."""
        exc = self._heap.alloc_object(class_name)
        if "message" in exc.fields:
            exc.fields["message"] = message
        return self.dispatch_exception(thread, exc)

    def dispatch_exception(self, thread: JavaThread, exc: JObject) -> StepResult:
        """Unwind frames looking for a handler for ``exc``.

        Monitors held by abandoned frames are released (synchronized
        epilogue + structured-locking cleanup).  If no handler exists,
        the thread terminates with the exception uncaught.
        """
        while thread.frames:
            frame = thread.frames[-1]
            handler_pc = self._find_handler(frame, exc)
            if handler_pc is not None:
                frame.stack.clear()
                frame.stack.append(exc)
                frame.pc = handler_pc
                return StepResult.CONTINUE
            self._release_frame_monitors(thread, frame)
            thread.frames.pop()
        return self._jvm.thread_uncaught(thread, exc)

    def _find_handler(self, frame: Frame, exc: JObject) -> Optional[int]:
        pc = frame.pc
        for row in frame.method.code.exception_table:
            if not row.start_pc <= pc < row.end_pc:
                continue
            if row.class_name == "*" or self._registry.is_subtype(
                exc.class_name, row.class_name
            ):
                return row.handler_pc
        return None

    def _release_frame_monitors(self, thread: JavaThread, frame: Frame) -> None:
        for obj in reversed(frame.held_monitors):
            self._sync.exit(thread, obj)
        frame.held_monitors.clear()
        if frame.sync_object is not None:
            self._sync.exit(thread, frame.sync_object)
            frame.sync_object = None

    # ==================================================================
    # Dispatch table construction
    # ==================================================================
    def _build_dispatch(self):
        d = {
            Op.NOP: self._op_nop,
            Op.ICONST: self._op_const,
            Op.FCONST: self._op_const,
            Op.SCONST: self._op_const,
            Op.ACONST_NULL: self._op_aconst_null,
            Op.LOAD: self._op_load,
            Op.STORE: self._op_store,
            Op.IINC: self._op_iinc,
            Op.POP: self._op_pop,
            Op.DUP: self._op_dup,
            Op.DUP_X1: self._op_dup_x1,
            Op.SWAP: self._op_swap,
            Op.INEG: self._op_ineg,
            Op.FNEG: self._op_fneg,
            Op.I2F: self._op_i2f,
            Op.F2I: self._op_f2i,
            Op.SCONCAT: self._op_sconcat,
            Op.S2I: self._op_s2i,
            Op.I2S: self._op_i2s,
            Op.F2S: self._op_f2s,
            Op.GOTO: self._op_goto,
            Op.IF_ICMP: self._op_if_cmp,
            Op.IF_FCMP: self._op_if_cmp,
            Op.IF_SCMP: self._op_if_cmp,
            Op.IF: self._op_if,
            Op.IF_NULL: self._op_if_null,
            Op.IF_NONNULL: self._op_if_nonnull,
            Op.IF_ACMP_EQ: self._op_if_acmp_eq,
            Op.IF_ACMP_NE: self._op_if_acmp_ne,
            Op.NEW: self._op_new,
            Op.GETFIELD: self._op_getfield,
            Op.PUTFIELD: self._op_putfield,
            Op.GETSTATIC: self._op_getstatic,
            Op.PUTSTATIC: self._op_putstatic,
            Op.INSTANCEOF: self._op_instanceof,
            Op.CHECKCAST: self._op_checkcast,
            Op.NEWARRAY: self._op_newarray,
            Op.ARRLOAD: self._op_arrload,
            Op.ARRSTORE: self._op_arrstore,
            Op.ARRAYLENGTH: self._op_arraylength,
            Op.INVOKEVIRTUAL: self._op_invoke,
            Op.INVOKESPECIAL: self._op_invoke,
            Op.INVOKESTATIC: self._op_invoke,
            Op.RETURN: self._op_return,
            Op.VRETURN: self._op_vreturn,
            Op.MONITORENTER: self._op_monitorenter,
            Op.MONITOREXIT: self._op_monitorexit,
            Op.ATHROW: self._op_athrow,
        }
        for op, fn in _INT_BINOPS.items():
            d[op] = self._make_int_binop(fn, op)
        for op, fn in _FLOAT_BINOPS.items():
            d[op] = self._make_float_binop(fn)
        return d

    # ==================================================================
    # Simple handlers
    # ==================================================================
    def _op_nop(self, thread, frame, instr):
        frame.pc += 1

    def _op_const(self, thread, frame, instr):
        frame.stack.append(instr.operands[0])
        frame.pc += 1

    def _op_aconst_null(self, thread, frame, instr):
        frame.stack.append(None)
        frame.pc += 1

    def _op_load(self, thread, frame, instr):
        frame.stack.append(frame.locals[instr.operands[0]])
        frame.pc += 1

    def _op_store(self, thread, frame, instr):
        frame.locals[instr.operands[0]] = frame.stack.pop()
        frame.pc += 1

    def _op_iinc(self, thread, frame, instr):
        slot, delta = instr.operands
        frame.locals[slot] = wrap_int(frame.locals[slot] + delta)
        frame.pc += 1

    def _op_pop(self, thread, frame, instr):
        frame.stack.pop()
        frame.pc += 1

    def _op_dup(self, thread, frame, instr):
        frame.stack.append(frame.stack[-1])
        frame.pc += 1

    def _op_dup_x1(self, thread, frame, instr):
        stack = frame.stack
        top = stack[-1]
        stack.insert(-2, top)
        frame.pc += 1

    def _op_swap(self, thread, frame, instr):
        stack = frame.stack
        stack[-1], stack[-2] = stack[-2], stack[-1]
        frame.pc += 1

    # ==================================================================
    # Arithmetic
    # ==================================================================
    def _make_int_binop(self, fn, op):
        zero_div = op in (Op.IDIV, Op.IREM)

        def handler(thread, frame, instr):
            stack = frame.stack
            b = stack.pop()
            a = stack.pop()
            if zero_div and b == 0:
                return self.throw_new(
                    thread, "ArithmeticException", "/ by zero"
                )
            stack.append(fn(a, b))
            frame.pc += 1

        return handler

    def _make_float_binop(self, fn):
        jvm = self._jvm

        def handler(thread, frame, instr):
            stack = frame.stack
            b = stack.pop()
            a = stack.pop()
            stack.append(fn(a, b))
            jvm.heavy_ops += 1
            frame.pc += 1

        return handler

    def _op_ineg(self, thread, frame, instr):
        frame.stack[-1] = wrap_int(-frame.stack[-1])
        frame.pc += 1

    def _op_fneg(self, thread, frame, instr):
        frame.stack[-1] = -frame.stack[-1]
        frame.pc += 1

    def _op_i2f(self, thread, frame, instr):
        frame.stack[-1] = float(frame.stack[-1])
        frame.pc += 1

    def _op_f2i(self, thread, frame, instr):
        frame.stack[-1] = wrap_int(int(frame.stack[-1]))
        frame.pc += 1

    # ==================================================================
    # Strings
    # ==================================================================
    def _op_sconcat(self, thread, frame, instr):
        stack = frame.stack
        b = stack.pop()
        a = stack.pop()
        stack.append(a + b)
        frame.pc += 1

    def _op_s2i(self, thread, frame, instr):
        text = frame.stack.pop()
        try:
            frame.stack.append(wrap_int(int(text.strip(), 10)))
        except ValueError:
            return self.throw_new(
                thread, "NumberFormatException", f"for input string: {text!r}"
            )
        frame.pc += 1

    def _op_i2s(self, thread, frame, instr):
        frame.stack[-1] = str(frame.stack[-1])
        frame.pc += 1

    def _op_f2s(self, thread, frame, instr):
        value = frame.stack[-1]
        frame.stack[-1] = repr(float(value))
        frame.pc += 1

    # ==================================================================
    # Control flow
    # ==================================================================
    def _op_goto(self, thread, frame, instr):
        frame.pc = instr.operands[0]

    def _op_if_cmp(self, thread, frame, instr):
        cmp_op, target = instr.operands
        b = frame.stack.pop()
        a = frame.stack.pop()
        frame.pc = target if compare(cmp_op, a, b) else frame.pc + 1

    def _op_if(self, thread, frame, instr):
        cmp_op, target = instr.operands
        a = frame.stack.pop()
        frame.pc = target if compare(cmp_op, a, 0) else frame.pc + 1

    def _op_if_null(self, thread, frame, instr):
        frame.pc = instr.operands[0] if frame.stack.pop() is None else frame.pc + 1

    def _op_if_nonnull(self, thread, frame, instr):
        frame.pc = (
            instr.operands[0] if frame.stack.pop() is not None else frame.pc + 1
        )

    def _op_if_acmp_eq(self, thread, frame, instr):
        b = frame.stack.pop()
        a = frame.stack.pop()
        frame.pc = instr.operands[0] if a is b else frame.pc + 1

    def _op_if_acmp_ne(self, thread, frame, instr):
        b = frame.stack.pop()
        a = frame.stack.pop()
        frame.pc = instr.operands[0] if a is not b else frame.pc + 1

    # ==================================================================
    # Objects and fields
    # ==================================================================
    def _op_new(self, thread, frame, instr):
        class_name = instr.operands[0]
        self._registry.resolve(class_name)  # raises LinkageError if unknown
        frame.stack.append(self._heap.alloc_object(class_name))
        frame.pc += 1

    def _op_getfield(self, thread, frame, instr):
        obj = frame.stack.pop()
        if obj is None:
            return self._npe(thread, f"getfield {instr.operands[0]}")
        try:
            frame.stack.append(obj.fields[instr.operands[0]])
        except (KeyError, AttributeError):
            raise LinkageError(
                f"no field {instr.operands[0]!r} on {describe(obj)}"
            ) from None
        frame.pc += 1

    def _op_putfield(self, thread, frame, instr):
        value = frame.stack.pop()
        obj = frame.stack.pop()
        if obj is None:
            return self._npe(thread, f"putfield {instr.operands[0]}")
        name = instr.operands[0]
        if not isinstance(obj, JObject) or name not in obj.fields:
            raise LinkageError(f"no field {name!r} on {describe(obj)}")
        obj.fields[name] = value
        frame.pc += 1

    def _op_getstatic(self, thread, frame, instr):
        class_name, field_name = instr.operands
        frame.stack.append(self._jvm.get_static(class_name, field_name))
        frame.pc += 1

    def _op_putstatic(self, thread, frame, instr):
        class_name, field_name = instr.operands
        self._jvm.put_static(class_name, field_name, frame.stack.pop())
        frame.pc += 1

    def _op_instanceof(self, thread, frame, instr):
        value = frame.stack.pop()
        frame.stack.append(1 if self._is_instance(value, instr.operands[0]) else 0)
        frame.pc += 1

    def _op_checkcast(self, thread, frame, instr):
        value = frame.stack[-1]
        if value is not None and not self._is_instance(value, instr.operands[0]):
            frame.stack.pop()
            return self.throw_new(
                thread,
                "ClassCastException",
                f"{describe(value)} cannot be cast to {instr.operands[0]}",
            )
        frame.pc += 1

    def _is_instance(self, value, class_name: str) -> bool:
        if value is None:
            return False
        if isinstance(value, JArray):
            return class_name == "Object"
        return self._registry.is_subtype(value.class_name, class_name)

    # ==================================================================
    # Arrays
    # ==================================================================
    def _op_newarray(self, thread, frame, instr):
        length = frame.stack.pop()
        if length < 0:
            return self.throw_new(
                thread, "NegativeArraySizeException", str(length)
            )
        frame.stack.append(self._heap.alloc_array(instr.operands[0], length))
        frame.pc += 1

    def _op_arrload(self, thread, frame, instr):
        index = frame.stack.pop()
        arr = frame.stack.pop()
        if arr is None:
            return self._npe(thread, "arrload")
        if not 0 <= index < len(arr.data):
            return self._oob(thread, index, len(arr.data))
        frame.stack.append(arr.data[index])
        self._jvm.heavy_ops += 1
        frame.pc += 1

    def _op_arrstore(self, thread, frame, instr):
        value = frame.stack.pop()
        index = frame.stack.pop()
        arr = frame.stack.pop()
        if arr is None:
            return self._npe(thread, "arrstore")
        if not 0 <= index < len(arr.data):
            return self._oob(thread, index, len(arr.data))
        if not conforms(value, arr.elem_type):
            raise ReproError(
                f"array store type mismatch: {describe(value)} into "
                f"{arr.elem_type}[]"
            )
        arr.data[index] = value
        self._jvm.heavy_ops += 1
        frame.pc += 1

    def _op_arraylength(self, thread, frame, instr):
        arr = frame.stack.pop()
        if arr is None:
            return self._npe(thread, "arraylength")
        frame.stack.append(len(arr.data))
        frame.pc += 1

    def _npe(self, thread, what: str) -> StepResult:
        return self.throw_new(thread, "NullPointerException", what)

    def _oob(self, thread, index: int, length: int) -> StepResult:
        return self.throw_new(
            thread,
            "ArrayIndexOutOfBoundsException",
            f"index {index} out of bounds for length {length}",
        )

    # ==================================================================
    # Monitors
    # ==================================================================
    def _op_monitorenter(self, thread, frame, instr):
        obj = frame.stack[-1]  # popped only once acquisition completes
        if obj is None:
            frame.stack.pop()
            return self._npe(thread, "monitorenter")
        result = self._sync.enter(thread, obj)
        if result is EnterResult.ACQUIRED:
            frame.stack.pop()
            frame.held_monitors.append(obj)
            frame.pc += 1
            return None
        # A failed attempt retries later: keep the counters as if the
        # instruction never ran, so progress points don't depend on
        # whether this replica happened to contend.
        thread.instructions -= 1
        return (
            StepResult.BLOCKED
            if result is EnterResult.BLOCKED
            else StepResult.PARKED
        )

    def _op_monitorexit(self, thread, frame, instr):
        obj = frame.stack.pop()
        if obj is None:
            return self._npe(thread, "monitorexit")
        if not self._sync.exit(thread, obj):
            return self.throw_new(
                thread, "IllegalMonitorStateException", "not the owner"
            )
        if obj in frame.held_monitors:
            frame.held_monitors.remove(obj)
        frame.pc += 1

    # ==================================================================
    # Exceptions
    # ==================================================================
    def _op_athrow(self, thread, frame, instr):
        exc = frame.stack.pop()
        if exc is None:
            return self._npe(thread, "athrow")
        if not isinstance(exc, JObject) or not self._registry.is_subtype(
            exc.class_name, "Throwable"
        ):
            raise ReproError(f"athrow of non-Throwable {describe(exc)}")
        return self.dispatch_exception(thread, exc)

    # ==================================================================
    # Invocation
    # ==================================================================
    def _method_ref(self, operand: str) -> MethodRef:
        ref = self._ref_cache.get(operand)
        if ref is None:
            ref = parse_method_ref(operand)
            self._ref_cache[operand] = ref
        return ref

    def _op_invoke(self, thread, frame, instr):
        ref = self._method_ref(instr.operands[0])
        op = instr.op
        stack = frame.stack
        nargs = ref.nargs

        if op is Op.INVOKESTATIC:
            receiver = None
            method = self._jvm.resolve_static_method(ref)
        else:
            receiver = stack[-1 - nargs]
            if receiver is None:
                del stack[len(stack) - 1 - nargs:]
                thread.br_cnt -= 1  # the call never happened
                return self._npe(thread, f"invoke {ref.class_name}.{ref.method_name}")
            if op is Op.INVOKESPECIAL:
                method = self._registry.lookup_method(
                    ref.class_name, ref.method_name, nargs
                )
            else:
                dyn_class = (
                    "Object" if isinstance(receiver, JArray)
                    else receiver.class_name
                )
                method = self._registry.lookup_method(
                    dyn_class, ref.method_name, nargs
                )

        # Intrinsics (wait/notify/thread ops) manage the stack themselves
        # because several of them suspend mid-instruction.
        intrinsic = self._jvm.intrinsics.get(
            (method.declaring_class.name, method.name, nargs)
        )
        if intrinsic is not None:
            return intrinsic(thread, frame, method, receiver, nargs)

        # Hot backups pause on natives whose log record has not arrived
        # yet — checked before any state (stack, monitors) changes, so
        # the invoke retries cleanly.
        if method.is_native and self._jvm.native_policy.would_starve(
            self._jvm, method, thread
        ):
            thread.br_cnt -= 1
            thread.instructions -= 1
            return StepResult.STARVED

        # Synchronized methods acquire their monitor *before* arguments
        # are popped, so a blocked attempt can retry cleanly.
        sync_target = None
        if method.is_synchronized:
            sync_target = (
                self._jvm.class_lock_object(method.declaring_class.name)
                if method.is_static
                else receiver
            )
            result = self._sync.enter(thread, sync_target)
            if result is not EnterResult.ACQUIRED:
                thread.br_cnt -= 1  # retried later; count it once
                thread.instructions -= 1
                return (
                    StepResult.BLOCKED
                    if result is EnterResult.BLOCKED
                    else StepResult.PARKED
                )

        args = stack[len(stack) - nargs:] if nargs else []
        del stack[len(stack) - nargs:]
        if receiver is not None:
            stack.pop()
            args = [receiver] + args

        if method.is_native:
            return self._jvm.invoke_native(
                thread, frame, method, receiver, args, sync_target
            )

        callee = Frame(method, args)
        callee.sync_object = sync_target
        thread.frames.append(callee)
        return None

    # ==================================================================
    # Returns
    # ==================================================================
    def _op_return(self, thread, frame, instr):
        return self._do_return(thread, frame, None, push=False)

    def _op_vreturn(self, thread, frame, instr):
        return self._do_return(thread, frame, frame.stack.pop(), push=True)

    def _do_return(self, thread, frame, value, push: bool):
        self._release_frame_monitors(thread, frame)
        thread.frames.pop()
        if not thread.frames:
            return self._jvm.thread_finished(thread, value if push else None)
        caller = thread.frames[-1]
        if push:
            caller.stack.append(value)
        caller.pc += 1
        return None


_INT_BINOPS = {
    Op.IADD: lambda a, b: wrap_int(a + b),
    Op.ISUB: lambda a, b: wrap_int(a - b),
    Op.IMUL: lambda a, b: wrap_int(a * b),
    Op.IDIV: java_div,
    Op.IREM: java_rem,
    Op.ISHL: java_shl,
    Op.ISHR: java_shr,
    Op.IUSHR: java_ushr,
    Op.IAND: lambda a, b: wrap_int(a & b),
    Op.IOR: lambda a, b: wrap_int(a | b),
    Op.IXOR: lambda a, b: wrap_int(a ^ b),
}

_FLOAT_BINOPS = {
    Op.FADD: lambda a, b: a + b,
    Op.FSUB: lambda a, b: a - b,
    Op.FMUL: lambda a, b: a * b,
    Op.FDIV: lambda a, b: (a / b) if b != 0.0 else _f_div_zero(a),
}


def _f_div_zero(a: float) -> float:
    """Java float division by zero yields ±Inf or NaN, never a trap."""
    if a == 0.0:
        return float("nan")
    return float("inf") if a > 0 else float("-inf")

"""The JVM facade: one runnable virtual machine instance.

A :class:`JVM` owns everything mutable — heap, statics, threads,
scheduler, monitors — while sharing the immutable program (the
:class:`~repro.classfile.loader.ClassRegistry`) and the native registry
with other instances.  Constructing two JVMs over the same program
therefore gives two replicas with *identical initial states*, the first
requirement of the state-machine approach.

Replication attaches through four seams, all of which default to
non-replicated behaviour:

* ``scheduler.controller`` — scheduling policy (quantum, pick, replay);
* ``sync.admission``       — monitor-acquisition gating and observation;
* ``native_policy``        — native invocation interception;
* ``run_hooks``            — coarse run-loop events (slice ends, GC).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.bytecode.methodref import MethodRef
from repro.classfile.loader import ClassRegistry
from repro.classfile.model import CLINIT_NAME, JMethod, default_value
from repro.errors import (
    DeadlockError,
    LinkageError,
    ReproError,
    RestrictionViolation,
)
from repro.env.environment import EnvSession
from repro.runtime.frames import Frame
from repro.runtime.gc import Collector
from repro.runtime.heap import Heap
from repro.runtime.interpreter import Interpreter, StepResult
from repro.runtime.natives import (
    NativeContext,
    NativeOutcome,
    NativeRegistry,
    call_native,
)
from repro.runtime.scheduler import Scheduler, SliceEnd
from repro.runtime.sync import EnterResult, SyncManager
from repro.runtime.threads import ROOT_VID, JavaThread, ThreadState
from repro.runtime.values import JArray, JObject


@dataclass
class JVMConfig:
    """Tunables for one JVM instance."""

    #: Seed for the scheduler's quantum jitter.  Primary and backup are
    #: given *different* seeds — this is the modelled non-determinism.
    scheduler_seed: int = 0
    quantum_base: int = 60
    quantum_jitter: int = 30
    #: Heap cells that trigger a GC at the next safe point.
    heap_gc_threshold: int = 4_000_000
    #: Hard heap limit: exceeding it raises Java OutOfMemoryError.
    heap_max_cells: int = 64_000_000
    #: Treat soft references as strong (the paper's mitigation, §4.3).
    soft_refs_strong: bool = True
    #: Instruction budget for detached contexts (finalizers, <clinit>).
    finalizer_budget: int = 200_000
    #: Virtual milliseconds that pass per executed bytecode.
    ms_per_instruction: float = 0.001
    #: Upper bound on total executed instructions (None = unlimited);
    #: a guard rail for tests, not a semantic limit.
    max_instructions: Optional[int] = None
    #: Execution engine driving each time slice: ``"slice"`` batches
    #: straight-line bytecodes between safe-point events (the fast
    #: path); ``"block"`` additionally compiles hot straight-line runs
    #: into single generated-Python superinstructions (the fastest
    #: tier, see :mod:`repro.runtime.blockjit`); ``"step"`` re-enters
    #: the engine per instruction with full checks before each one (the
    #: seed's reference discipline).  All three produce bit-identical
    #: digests, logs, and counters.
    engine: str = "slice"
    #: Executions of one basic-block entry before the ``block`` engine
    #: compiles it (ignored by the other engines).
    block_hot_threshold: int = 8


@dataclass
class RunResult:
    """Outcome of a completed :meth:`JVM.run`."""

    outcome: str                       # "completed"
    instructions: int
    time_ms: float
    uncaught: List[Tuple[str, str, str]] = field(default_factory=list)
    reschedules: int = 0
    lock_acquisitions: int = 0

    @property
    def ok(self) -> bool:
        return self.outcome == "completed" and not self.uncaught


class DirectNativePolicy:
    """Default native invocation: just call the implementation."""

    def invoke(self, jvm: "JVM", spec, thread, receiver, args) -> NativeOutcome:
        ctx = NativeContext(jvm, thread, spec)
        return call_native(spec, ctx, receiver, args)

    def would_starve(self, jvm: "JVM", method, thread) -> bool:
        """Hot backups pause on natives whose record is missing; live
        execution pauses only on an empty request port (serving)."""
        from repro.env.port import ingest_starved

        return ingest_starved(jvm, method, thread)


class RunHooks:
    """Coarse run-loop observation points (no-ops by default)."""

    def on_slice_end(self, jvm: "JVM", thread: JavaThread,
                     reason: SliceEnd) -> None:
        """A time slice ended for any reason."""

    def on_gc(self, jvm: "JVM", freed_cells: int) -> None:
        """A collection completed."""

    def on_exit(self, jvm: "JVM", result: RunResult) -> None:
        """The run loop is about to return."""


class JVM:
    """One virtual machine instance."""

    def __init__(
        self,
        registry: ClassRegistry,
        natives: NativeRegistry,
        session: EnvSession,
        config: Optional[JVMConfig] = None,
        name: str = "jvm",
    ) -> None:
        self.registry = registry
        self.natives = natives
        self.session = session
        self.config = config or JVMConfig()
        self.name = name
        if self.config.engine not in ("step", "slice", "block"):
            raise ReproError(
                f"unknown execution engine {self.config.engine!r}; "
                f"expected 'step', 'slice', or 'block'"
            )

        from repro.runtime.scheduler import ScheduleController

        self.heap = Heap(registry, self.config.heap_gc_threshold)
        self.scheduler = Scheduler(
            self.now_ms,
            ScheduleController(
                seed=self.config.scheduler_seed,
                quantum_base=self.config.quantum_base,
                quantum_jitter=self.config.quantum_jitter,
            ),
        )
        self.sync = SyncManager(self.scheduler)
        self.sync.heap = self.heap
        self.collector = Collector(self)
        self.interpreter = Interpreter(self)
        self.native_policy = DirectNativePolicy()
        self.run_hooks = RunHooks()

        self.instructions = 0
        #: "Heavy" bytecodes executed (array element access, float
        #: arithmetic): these cost more host cycles per dispatch in a
        #: real interpreter, which the cost model uses to weight base
        #: execution time per workload.
        self.heavy_ops = 0
        #: Total native invocations (each costs a JNI-style transition).
        self.native_calls = 0
        self._time_skew_ms = 0.0
        self.statics: Dict[Tuple[str, str], Any] = {}
        self._static_slot_cache: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self._class_locks: Dict[str, JObject] = {}
        self.threads_by_oid: Dict[int, JavaThread] = {}
        self.threads_by_vid: Dict[Tuple[int, ...], JavaThread] = {}
        self._daemon_requests: Dict[int, bool] = {}
        self.main_thread: Optional[JavaThread] = None
        self.uncaught: List[Tuple[str, str, str]] = []
        self._bootstrapped = False

        self.intrinsics = self._build_intrinsics()
        self._init_statics()

    # ==================================================================
    # Time
    # ==================================================================
    def now_ms(self) -> float:
        """Virtual wall time inside this JVM (drives sleep/timed-wait)."""
        return self.instructions * self.config.ms_per_instruction + self._time_skew_ms

    def _advance_time_to(self, target_ms: float) -> None:
        if target_ms > self.now_ms():
            self._time_skew_ms += target_ms - self.now_ms()

    # ==================================================================
    # Statics
    # ==================================================================
    def _init_statics(self) -> None:
        for class_name in self.registry.class_names():
            cls = self.registry.resolve(class_name)
            for f in cls.fields.values():
                if f.is_static:
                    self.statics[(class_name, f.name)] = default_value(f.type)

    def _static_slot(self, class_name: str, field_name: str) -> Tuple[str, str]:
        key = (class_name, field_name)
        slot = self._static_slot_cache.get(key)
        if slot is None:
            cls = self.registry.resolve(class_name)
            while cls is not None:
                f = cls.fields.get(field_name)
                if f is not None and f.is_static:
                    slot = (cls.name, field_name)
                    break
                cls = cls.superclass
            if slot is None:
                raise LinkageError(
                    f"no static field {field_name!r} in {class_name!r} hierarchy"
                )
            self._static_slot_cache[key] = slot
        return slot

    def get_static(self, class_name: str, field_name: str) -> Any:
        return self.statics[self._static_slot(class_name, field_name)]

    def put_static(self, class_name: str, field_name: str, value: Any) -> None:
        self.statics[self._static_slot(class_name, field_name)] = value

    # ==================================================================
    # Class lock objects (static synchronized methods)
    # ==================================================================
    def class_lock_object(self, class_name: str) -> JObject:
        lock = self._class_locks.get(class_name)
        if lock is None:
            lock = self.heap.alloc_object("Object")
            self._class_locks[class_name] = lock
        return lock

    # ==================================================================
    # Method resolution helpers
    # ==================================================================
    def resolve_static_method(self, ref: MethodRef) -> JMethod:
        method = self.registry.lookup_method(
            ref.class_name, ref.method_name, ref.nargs
        )
        if not method.is_static:
            raise LinkageError(f"{ref} resolved to an instance method")
        return method

    # ==================================================================
    # Bootstrap and run
    # ==================================================================
    def bootstrap(self, main_class: str, args: Optional[List[str]] = None) -> None:
        """Create the main thread, run class initializers, frame main()."""
        if self._bootstrapped:
            raise ReproError("JVM already bootstrapped")
        self._bootstrapped = True

        # Class lock objects are allocated eagerly in deterministic
        # (sorted) order so oids never depend on execution order.
        for class_name in self.registry.class_names():
            self.class_lock_object(class_name)

        # Static initializers run detached, in sorted class order,
        # before any application thread exists.  They must be local and
        # deterministic (monitors and environment access are forbidden).
        for class_name in self.registry.class_names():
            cls = self.registry.resolve(class_name)
            clinit = cls.methods.get((CLINIT_NAME, 0))
            if clinit is not None:
                self.run_detached(
                    clinit, [], budget=self.config.finalizer_budget,
                    forbid_sync=True, what=f"<clinit> of {class_name}",
                )

        main_thread = JavaThread(ROOT_VID, None, name="main")
        thread_obj = self.heap.alloc_object("Thread")
        main_thread.thread_object = thread_obj
        self.threads_by_oid[thread_obj.oid] = main_thread
        self.threads_by_vid[main_thread.vid] = main_thread

        try:
            main_method = self.registry.lookup_method(main_class, "main", 1)
            arg_array = self.heap.alloc_array("str", len(args or []))
            arg_array.data[:] = list(args or [])
            main_args: List[Any] = [arg_array]
        except LinkageError:
            main_method = self.registry.lookup_method(main_class, "main", 0)
            main_args = []
        if not main_method.is_static:
            raise LinkageError(f"{main_class}.main must be static")
        main_thread.frames.append(Frame(main_method, main_args))
        main_thread.state = ThreadState.RUNNABLE
        self.scheduler.register(main_thread)
        self.scheduler.make_runnable(main_thread)
        self.main_thread = main_thread

    def run(self, main_class: str, args: Optional[List[str]] = None) -> RunResult:
        self.bootstrap(main_class, args)
        return self.run_to_completion()

    def run_to_completion(
        self, *, pause_on_starvation: bool = False
    ) -> Optional[RunResult]:
        """Drive the scheduler until no non-daemon thread remains.

        With ``pause_on_starvation`` (hot-backup mode), the loop returns
        ``None`` instead of raising when every live thread is waiting
        for replication input that has not been delivered yet — starved
        on a missing native record, parked by an admission controller
        that has run out of log, or held back by a drained schedule
        controller.  The caller resumes by calling again once more log
        has been fed in.
        """
        limit = self.config.max_instructions
        unproductive = 0
        while True:
            # The JVM exits when no non-daemon application thread is
            # alive, even if daemon threads could still run.
            if not self.scheduler.live_application_threads():
                break
            self.scheduler.wake_expired_timers(self.sync)
            thread = self.scheduler.pick()
            if thread is None:
                wakeup = self.scheduler.earliest_wakeup()
                if wakeup is not None:
                    self._advance_time_to(wakeup)
                    continue
                if pause_on_starvation and getattr(
                    self.scheduler.controller, "starving", False
                ):
                    self.scheduler.release_current()
                    return None
                self.sync.reevaluate_parked()
                if not self.scheduler.runnable:
                    if pause_on_starvation and self.sync.parked_threads:
                        self.scheduler.release_current()
                        return None
                    self.scheduler.assert_progress_possible()
                continue
            self._run_slice(thread)
            if self.scheduler.last_reason in (
                SliceEnd.STARVED, SliceEnd.PARKED
            ):
                # A parked/starved slice executes nothing.  If every
                # live thread keeps bouncing off the replication gate
                # with nobody making progress, either more log must
                # arrive (hot backup: pause) or the log is inconsistent
                # with the program (cold replay: liveness failure).
                unproductive += 1
                if pause_on_starvation and \
                        unproductive > len(self.scheduler.threads) + 2:
                    self.scheduler.release_current()
                    return None
                if not pause_on_starvation and \
                        unproductive > 3 * len(self.scheduler.threads) + 5:
                    raise DeadlockError(
                        "replication wait cannot make progress: every "
                        "live thread is parked by the admission "
                        "controller and no event can release them "
                        "(inconsistent or foreign log?)"
                    )
            else:
                unproductive = 0
            if limit is not None and self.instructions > limit:
                raise ReproError(
                    f"instruction limit {limit} exceeded — runaway program?"
                )
        result = RunResult(
            outcome="completed",
            instructions=self.instructions,
            time_ms=self.now_ms(),
            uncaught=list(self.uncaught),
            reschedules=self.scheduler.reschedules,
            lock_acquisitions=self.sync.total_acquisitions,
        )
        self.run_hooks.on_exit(self, result)
        return result

    def _run_slice(self, thread: JavaThread) -> None:
        controller = self.scheduler.controller
        quantum = controller.quantum(thread)
        if self.config.engine == "step":
            reason = self._run_slice_stepwise(thread, controller, quantum)
        else:
            # "slice" and "block" share the batching engine; "block"
            # additionally runs compiled superinstructions inside it.
            reason = self.interpreter.run_slice(
                thread, quantum=quantum, controller=controller
            )
        controller.on_slice_end(thread, reason)
        self.scheduler.last_reason = reason
        self.run_hooks.on_slice_end(self, thread, reason)
        if thread.state is ThreadState.RUNNABLE:
            self.scheduler.requeue_current(thread)

    def _run_slice_stepwise(self, thread: JavaThread, controller,
                            quantum: int) -> SliceEnd:
        """The seed's per-instruction reference loop (``engine="step"``):
        GC and preemption are checked before *every* instruction and the
        engine is re-entered per bytecode.  Kept verbatim as the oracle
        the fast path is differentially verified against."""
        start_br = thread.br_cnt
        step = self.interpreter.step
        while True:
            if self.heap.gc_requested:
                end = self.gc_safepoint(thread)
                if end is not None:
                    return end
            if controller.should_preempt(thread):
                return SliceEnd.CONTROLLER
            result = step(thread)
            self.instructions += 1
            if result is not StepResult.CONTINUE:
                return _SLICE_END_OF_STEP[result]
            if thread.br_cnt - start_br >= quantum:
                return SliceEnd.QUANTUM

    def gc_safepoint(self, thread: JavaThread) -> Optional[SliceEnd]:
        """Collect at a safe point; handle the out-of-memory aftermath.

        Returns the slice-ending reason when the collection killed the
        thread (uncaught OutOfMemoryError), else None.  Shared by both
        execution engines so the GC protocol cannot drift between them.
        """
        freed = self.collector.collect()
        self.run_hooks.on_gc(self, freed)
        if self.heap.used_cells >= self.config.heap_max_cells:
            self.interpreter.throw_new(thread, "OutOfMemoryError", "heap")
            if not thread.alive:
                return SliceEnd.TERMINATED
        return None

    # ==================================================================
    # Thread lifecycle callbacks (from the interpreter)
    # ==================================================================
    def thread_finished(self, thread: JavaThread, value: Any) -> StepResult:
        return self._terminate(thread)

    def thread_uncaught(self, thread: JavaThread, exc: JObject) -> StepResult:
        if not thread.is_system:
            message = exc.fields.get("message", "")
            self.uncaught.append((thread.vid_str, exc.class_name, message))
        return self._terminate(thread)

    def _terminate(self, thread: JavaThread) -> StepResult:
        thread.state = ThreadState.TERMINATED
        for joiner in thread.joiners:
            self.scheduler.make_runnable(joiner)
        thread.joiners.clear()
        return StepResult.TERMINATED

    # ==================================================================
    # Native invocation (policy seam)
    # ==================================================================
    def invoke_native(self, thread, frame, method, receiver, args, sync_target):
        spec = self.natives.lookup(method.signature)
        self.native_calls += 1
        thread.in_native = True
        try:
            outcome = self.native_policy.invoke(self, spec, thread, receiver, args)
        finally:
            thread.in_native = False
        if sync_target is not None:
            self.sync.exit(thread, sync_target)
        if outcome.exception is not None:
            return self.interpreter.throw_new(thread, *outcome.exception)
        if method.returns:
            frame.stack.append(outcome.value)
        frame.pc += 1
        return None

    # ==================================================================
    # Detached execution (finalizers, class initializers)
    # ==================================================================
    def run_detached(self, method: JMethod, args: List[Any], *, budget: int,
                     forbid_sync: bool, what: str) -> None:
        temp = JavaThread((-1,), None, name=what, is_system=True)
        temp.forbid_sync = forbid_sync
        temp.forbid_env = True
        temp.frames.append(Frame(method, args))
        temp.state = ThreadState.RUNNABLE
        steps = 0
        while temp.frames and temp.state is ThreadState.RUNNABLE:
            result = self.interpreter.step(temp)
            if result in (StepResult.BLOCKED, StepResult.WAITING,
                          StepResult.PARKED):
                raise RestrictionViolation(
                    "finalizer-determinism", f"{what} blocked"
                )
            if result is StepResult.TERMINATED:
                return
            steps += 1
            if steps > budget:
                raise RestrictionViolation(
                    "finalizer-determinism",
                    f"{what} exceeded its instruction budget ({budget})",
                )

    # ==================================================================
    # GC support
    # ==================================================================
    def gc_roots(self):
        """Every reference the collector must treat as live."""
        for value in self.statics.values():
            if isinstance(value, (JObject, JArray)):
                yield value
        for lock in self._class_locks.values():
            yield lock
        for thread in self.scheduler.threads:
            if thread.thread_object is not None:
                yield thread.thread_object
            if thread.pending_exception is not None:
                yield thread.pending_exception
            for fr in thread.frames:
                for value in fr.locals:
                    if isinstance(value, (JObject, JArray)):
                        yield value
                for value in fr.stack:
                    if isinstance(value, (JObject, JArray)):
                        yield value
                for obj in fr.held_monitors:
                    yield obj
                if fr.sync_object is not None:
                    yield fr.sync_object

    # ==================================================================
    # State digest (test oracle)
    # ==================================================================
    def state_digest(self) -> str:
        """Canonical hash of all application-visible JVM state.

        Covers statics and everything reachable from them, visited in a
        deterministic order.  Two replicas that executed equivalent
        histories produce equal digests.
        """
        h = hashlib.sha256()
        visit_ids: Dict[int, int] = {}

        def ref_token(value: Any) -> str:
            key = id(value)
            if key not in visit_ids:
                visit_ids[key] = len(visit_ids)
                pending.append(value)
            return f"@{visit_ids[key]}"

        def scalar_token(value: Any) -> str:
            if value is None:
                return "null"
            if isinstance(value, (JObject, JArray)):
                return ref_token(value)
            if isinstance(value, float):
                return f"f{value!r}"
            if isinstance(value, str):
                return f"s{value!r}"
            return f"i{value}"

        pending: List[Any] = []
        for (class_name, field_name) in sorted(self.statics):
            token = scalar_token(self.statics[(class_name, field_name)])
            h.update(f"{class_name}.{field_name}={token};".encode())
        cursor = 0
        while cursor < len(pending):
            obj = pending[cursor]
            cursor += 1
            if isinstance(obj, JArray):
                h.update(f"[{obj.elem_type}:".encode())
                for element in obj.data:
                    h.update(scalar_token(element).encode())
                    h.update(b",")
            else:
                h.update(f"{{{obj.class_name}:".encode())
                for name in sorted(obj.fields):
                    h.update(f"{name}={scalar_token(obj.fields[name])},".encode())
            h.update(b";")
        for vid_str, class_name, message in self.uncaught:
            h.update(f"uncaught:{vid_str}:{class_name}:{message};".encode())
        return h.hexdigest()

    # ==================================================================
    # Intrinsics
    # ==================================================================
    def _build_intrinsics(self):
        return {
            ("Object", "wait", 0): self._intr_wait,
            ("Object", "timedWait", 1): self._intr_wait,
            ("Object", "notify", 0): self._intr_notify_one,
            ("Object", "notifyAll", 0): self._intr_notify_all,
            ("Object", "hashCode", 0): self._intr_hash_code,
            ("Object", "equals", 1): self._intr_equals,
            ("Object", "toString", 0): self._intr_to_string,
            ("Thread", "start", 0): self._intr_start,
            ("Thread", "join", 0): self._intr_join,
            ("Thread", "isAlive", 0): self._intr_is_alive,
            ("Thread", "setDaemon", 1): self._intr_set_daemon,
            ("Thread", "stop", 0): self._intr_stop,
            ("Thread", "sleep", 1): self._intr_sleep,
            ("Thread", "yield", 0): self._intr_yield,
            ("Thread", "currentThread", 0): self._intr_current_thread,
            ("System", "gc", 0): self._intr_system_gc,
        }

    def _intr_wait(self, thread, frame, method, receiver, nargs):
        if thread.reacquiring:
            result = self.sync.reenter_after_wait(thread, receiver)
            if result is EnterResult.ACQUIRED:
                del frame.stack[len(frame.stack) - 1 - nargs:]
                frame.pc += 1
                return None
            thread.br_cnt -= 1
            thread.instructions -= 1
            return (
                StepResult.BLOCKED
                if result is EnterResult.BLOCKED
                else StepResult.PARKED
            )
        timeout = frame.stack[-1] if nargs == 1 else None
        if not self.sync.wait(thread, receiver, timeout):
            del frame.stack[len(frame.stack) - 1 - nargs:]
            return self.interpreter.throw_new(
                thread, "IllegalMonitorStateException", "wait without monitor"
            )
        return StepResult.WAITING

    def _intr_notify_one(self, thread, frame, method, receiver, nargs):
        return self._notify(thread, frame, receiver, all_waiters=False)

    def _intr_notify_all(self, thread, frame, method, receiver, nargs):
        return self._notify(thread, frame, receiver, all_waiters=True)

    def _notify(self, thread, frame, receiver, *, all_waiters):
        frame.stack.pop()
        if not self.sync.notify(thread, receiver, all_waiters=all_waiters):
            return self.interpreter.throw_new(
                thread, "IllegalMonitorStateException", "notify without monitor"
            )
        frame.pc += 1
        return None

    def _intr_hash_code(self, thread, frame, method, receiver, nargs):
        frame.stack[-1] = receiver.oid & 0x7FFFFFFF
        frame.pc += 1
        return None

    def _intr_equals(self, thread, frame, method, receiver, nargs):
        other = frame.stack.pop()
        frame.stack[-1] = 1 if frame.stack[-1] is other else 0
        frame.pc += 1
        return None

    def _intr_to_string(self, thread, frame, method, receiver, nargs):
        frame.stack[-1] = f"{receiver.class_name}@{receiver.oid}"
        frame.pc += 1
        return None

    def _intr_start(self, thread, frame, method, receiver, nargs):
        frame.stack.pop()
        if receiver.oid in self.threads_by_oid:
            return self.interpreter.throw_new(
                thread, "IllegalStateException", "thread already started"
            )
        run_method = self.registry.lookup_method(receiver.class_name, "run", 0)
        child = JavaThread(
            thread.child_vid(),
            receiver,
            is_daemon=self._daemon_requests.pop(receiver.oid, False),
        )
        child.frames.append(Frame(run_method, [receiver]))
        self.threads_by_oid[receiver.oid] = child
        self.threads_by_vid[child.vid] = child
        self.scheduler.register(child)
        self.scheduler.make_runnable(child)
        frame.pc += 1
        return None

    def _intr_join(self, thread, frame, method, receiver, nargs):
        target = self.threads_by_oid.get(receiver.oid)
        frame.stack.pop()
        frame.pc += 1
        if target is None or target.state is ThreadState.TERMINATED:
            return None
        target.joiners.append(thread)
        thread.state = ThreadState.WAITING
        thread.blocked_on = None
        return StepResult.WAITING

    def _intr_is_alive(self, thread, frame, method, receiver, nargs):
        target = self.threads_by_oid.get(receiver.oid)
        frame.stack[-1] = 1 if target is not None and target.alive else 0
        frame.pc += 1
        return None

    def _intr_set_daemon(self, thread, frame, method, receiver, nargs):
        value = frame.stack.pop()
        frame.stack.pop()
        self._daemon_requests[receiver.oid] = bool(value)
        frame.pc += 1
        return None

    def _intr_stop(self, thread, frame, method, receiver, nargs):
        raise RestrictionViolation(
            "R1", "Thread.stop is deprecated and unsupported (paper §3.1)"
        )

    def _intr_sleep(self, thread, frame, method, receiver, nargs):
        ms = frame.stack.pop()
        frame.pc += 1
        if ms <= 0:
            return None
        thread.state = ThreadState.TIMED_WAITING
        thread.wakeup_time = self.now_ms() + ms
        thread.blocked_on = None
        return StepResult.WAITING

    def _intr_yield(self, thread, frame, method, receiver, nargs):
        frame.pc += 1
        return StepResult.YIELDED

    def _intr_current_thread(self, thread, frame, method, receiver, nargs):
        frame.stack.append(thread.thread_object)
        frame.pc += 1
        return None

    def _intr_system_gc(self, thread, frame, method, receiver, nargs):
        freed = self.collector.collect()
        self.run_hooks.on_gc(self, freed)
        frame.pc += 1
        return None


_SLICE_END_OF_STEP = {
    StepResult.BLOCKED: SliceEnd.BLOCKED,
    StepResult.WAITING: SliceEnd.WAITING,
    StepResult.PARKED: SliceEnd.PARKED,
    StepResult.YIELDED: SliceEnd.YIELDED,
    StepResult.TERMINATED: SliceEnd.TERMINATED,
    StepResult.STARVED: SliceEnd.STARVED,
}

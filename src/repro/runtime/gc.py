"""Mark-sweep garbage collection with soft/weak references and finalizers.

The paper (§4.3) identifies asynchronous garbage collection as a source
of non-deterministic read sets through two channels — soft references
and finalizer methods — and adopts two mitigations we reproduce:

* **soft references are treated as strong** (never collected), so cache
  hits cannot differ between primary and backup.  Setting
  ``soft_refs_strong=False`` in the JVM config restores the dangerous
  behaviour; the test suite uses that switch to *demonstrate* the
  divergence the paper warns about.
* **finalizers must be deterministic and local**: they run in a
  detached system execution context whose counters do not perturb any
  application thread's ``br_cnt``/``mon_cnt`` (so GC timing differences
  between replicas remain invisible), and they are forbidden from
  blocking, performing I/O, or touching monitors —
  :class:`~repro.errors.RestrictionViolation` otherwise.

Collections are synchronous and stop-the-world, triggered at safe
points when allocation crosses the heap threshold or via ``System.gc``.
An optional *asynchronous* collector thread (jittered period, never
replicated — it models the paper's system threads) can be enabled in
the config; because of the two mitigations its timing is harmless.
"""

from __future__ import annotations

from typing import Any, List

from repro.errors import RestrictionViolation
from repro.runtime.values import JArray, JObject

SOFT_REF_CLASS = "SoftReference"
WEAK_REF_CLASS = "WeakReference"
_REFERENT_FIELD = "referent"


class GCStats:
    """Counters exported to metrics and tests."""

    def __init__(self) -> None:
        self.collections = 0
        self.objects_freed = 0
        self.cells_freed = 0
        self.finalizers_run = 0
        self.soft_refs_cleared = 0
        self.weak_refs_cleared = 0


class Collector:
    """Mark-sweep collector bound to one JVM."""

    def __init__(self, jvm) -> None:
        self._jvm = jvm
        self.stats = GCStats()

    # ------------------------------------------------------------------
    def collect(self) -> int:
        """Run one stop-the-world collection; returns cells freed."""
        jvm = self._jvm
        heap = jvm.heap
        strong_soft = jvm.config.soft_refs_strong

        marked: List[Any] = []
        stack = list(jvm.gc_roots())
        while stack:
            value = stack.pop()
            if not isinstance(value, (JObject, JArray)) or value.gc_mark:
                continue
            value.gc_mark = True
            marked.append(value)
            if isinstance(value, JArray):
                if value.elem_type == "ref":
                    stack.extend(v for v in value.data if v is not None)
                continue
            is_soft = value.class_name == SOFT_REF_CLASS
            is_weak = value.class_name == WEAK_REF_CLASS
            for name, field_value in value.fields.items():
                if field_value is None:
                    continue
                if name == _REFERENT_FIELD and (is_weak or (is_soft and not strong_soft)):
                    continue  # referent reachable only weakly
                if isinstance(field_value, (JObject, JArray)):
                    stack.append(field_value)

        # Clear dangling soft/weak referents before sweeping.
        for obj in marked:
            if isinstance(obj, JObject) and obj.class_name in (
                SOFT_REF_CLASS, WEAK_REF_CLASS
            ):
                referent = obj.fields.get(_REFERENT_FIELD)
                if referent is not None and not referent.gc_mark:
                    obj.fields[_REFERENT_FIELD] = None
                    obj.mut_era = heap.era
                    if obj.class_name == SOFT_REF_CLASS:
                        self.stats.soft_refs_cleared += 1
                    else:
                        self.stats.weak_refs_cleared += 1

        live: List[Any] = []
        live_cells = 0
        freed_objects = 0
        for obj in heap.objects:
            if obj.gc_mark:
                obj.gc_mark = False
                live.append(obj)
                live_cells += heap.cells_of(obj)
            else:
                freed_objects += 1
                self._run_finalizer(obj)

        freed_cells = heap.replace_live(live, live_cells)
        self.stats.collections += 1
        self.stats.objects_freed += freed_objects
        self.stats.cells_freed += freed_cells
        return freed_cells

    # ------------------------------------------------------------------
    def _run_finalizer(self, obj: Any) -> None:
        """Execute ``finalize()`` on a dead object, if declared.

        Runs in a detached system context (its own counters); bounded;
        forbidden from blocking or doing I/O.  Resurrection is not
        supported — the object is freed regardless (documented
        deviation; the paper's restriction makes resurrection useless
        anyway).
        """
        if not isinstance(obj, JObject):
            return
        registry = self._jvm.registry
        try:
            method = registry.lookup_method(obj.class_name, "finalize", 0)
        except Exception:
            return
        if method.declaring_class.name == "Object":
            return
        self.stats.finalizers_run += 1
        self._jvm.run_detached(
            method,
            [obj],
            budget=self._jvm.config.finalizer_budget,
            forbid_sync=True,
            what=f"finalizer of {obj.class_name}",
        )


def check_finalizer_restriction(what: str, action: str) -> None:
    """Raise the paper's finalizer restriction violation."""
    raise RestrictionViolation(
        "finalizer-determinism",
        f"{what} attempted to {action}; finalizers must only perform "
        f"deterministic actions on local memory (paper §4.3)",
    )

"""Green threads: the JVM's user-level thread representation.

Each :class:`JavaThread` corresponds to one *bytecode execution engine*
(BEE) in the paper's model — the unit of state-machine replication.

Virtual thread ids follow Section 4.2 of the paper exactly: a thread's
id is its parent's id extended with the relative order in which the
parent spawned it.  This makes ids identical at primary and backup
regardless of scheduling, because a parent spawns its children in the
same relative order on every replica (threads execute deterministic
programs).
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional, Tuple

from repro.runtime.frames import Frame

#: The virtual id of the initial (main) thread.
ROOT_VID: Tuple[int, ...] = (0,)


class ThreadState(enum.Enum):
    NEW = "new"
    RUNNABLE = "runnable"
    BLOCKED = "blocked"          # contending for a monitor
    WAITING = "waiting"          # in a wait set (Object.wait / join)
    TIMED_WAITING = "timed_waiting"  # sleep or timed wait
    PARKED = "parked"            # held back by the replication layer
    TERMINATED = "terminated"


class JavaThread:
    """One green thread and its replication-relevant counters."""

    def __init__(
        self,
        vid: Tuple[int, ...],
        thread_object: Any,
        *,
        name: str = "",
        is_daemon: bool = False,
        is_system: bool = False,
    ) -> None:
        #: Virtual thread id (paper's t_id): parent vid + sibling index.
        self.vid = vid
        #: The Java-level Thread object this BEE executes (None for the
        #: main thread until the stdlib wraps it, and for system threads).
        self.thread_object = thread_object
        self.name = name or self.vid_str
        self.is_daemon = is_daemon
        #: System threads (failure detector, log transfer, GC) are not
        #: BEEs: their scheduling is never replicated (paper §4.2).
        self.is_system = is_system

        self.state = ThreadState.NEW
        self.frames: List[Frame] = []

        # --- Replication counters -------------------------------------
        #: Control-flow changes executed (branches, jumps, invocations):
        #: the paper's br_cnt.
        self.br_cnt = 0
        #: Monitor acquisitions + releases performed: the paper's mon_cnt.
        self.mon_cnt = 0
        #: Locks acquired so far by this thread: the paper's t_asn
        #: (thread acquire sequence number).
        self.t_asn = 0
        #: Total bytecodes executed (cost accounting / quanta).
        self.instructions = 0

        # --- Scheduling bookkeeping ------------------------------------
        #: Number of children spawned, for assigning child vids.
        self.children_spawned = 0
        #: Virtual-time deadline while TIMED_WAITING (sleep / timed wait).
        self.wakeup_time: Optional[float] = None
        #: Monitor this thread is blocked on / waiting in.
        self.blocked_on = None
        #: True when the thread was notified (or timed out) and must
        #: re-acquire the monitor it waited on before continuing.
        self.reacquiring = False
        #: Saved recursion depth across a wait().
        self.saved_recursion = 0
        #: Java exception object to deliver when the thread resumes
        #: (unused by default; reserved for interrupt support).
        self.pending_exception = None
        #: Threads joined on this one (woken at termination).
        self.joiners: List["JavaThread"] = []
        #: Set while the thread is inside a native method invocation, so
        #: the schedule-replication layer can apply the paper's
        #: native-method progress rules.
        self.in_native: bool = False
        #: Detached contexts (finalizers, class initializers) run with
        #: these set: monitors / environment access become
        #: RestrictionViolation (paper §4.3's finalizer discipline).
        self.forbid_sync: bool = False
        self.forbid_env: bool = False

    # ------------------------------------------------------------------
    @property
    def vid_str(self) -> str:
        return "t" + ".".join(str(part) for part in self.vid)

    def child_vid(self) -> Tuple[int, ...]:
        """Allocate the vid for this thread's next spawned child."""
        vid = self.vid + (self.children_spawned,)
        self.children_spawned += 1
        return vid

    @property
    def current_frame(self) -> Frame:
        return self.frames[-1]

    @property
    def alive(self) -> bool:
        return self.state not in (ThreadState.NEW, ThreadState.TERMINATED)

    def progress_point(self) -> Tuple[int, int, int]:
        """The (br_cnt, pc_off, mon_cnt) triple identifying how far this
        thread has executed — the paper's thread-schedule record core.

        ``pc_off`` is the bytecode offset of the next instruction within
        the current method (meaningful across replicas, unlike a host
        program counter).  A terminated or not-yet-started thread
        reports pc_off -1.
        """
        pc = self.frames[-1].pc if self.frames else -1
        return (self.br_cnt, pc, self.mon_cnt)

    def __repr__(self) -> str:
        return f"<JavaThread {self.vid_str} {self.state.value} name={self.name!r}>"

"""Java monitors: mutual exclusion plus condition synchronization.

Every heap object can own one :class:`Monitor` (created lazily on first
``monitorenter``/``wait``).  Monitors are *re-entrant*: the owning
thread may acquire the same monitor recursively.

Determinism requirements (crucial for the replication layer):

* the entry queue and the wait set are strict FIFO (``deque``);
* ``notify`` wakes the longest-waiting thread;
* all bookkeeping the replication layer reads — ``l_id``, ``l_asn`` —
  lives here, exactly matching the paper's lock acquisition records.

Admission control: before a thread may *complete* an acquisition, the
monitor consults the JVM's :class:`AdmissionController`.  The default
controller admits everyone; the replicated-lock-synchronization backup
substitutes a controller that enforces the primary's logged acquisition
order (Section 4.2 of the paper).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

if TYPE_CHECKING:
    from repro.runtime.threads import JavaThread


class Monitor:
    """Monitor state for a single heap object."""

    __slots__ = ("owner", "recursion", "entry_queue", "wait_set", "l_id",
                 "l_asn", "obj")

    def __init__(self) -> None:
        #: Back-reference to the owning heap object (set by
        #: :func:`get_monitor`); lets the sync layer stamp the object's
        #: mutation era when monitor state changes.
        self.obj = None
        self.owner: Optional["JavaThread"] = None
        self.recursion = 0
        #: Threads blocked trying to enter, FIFO.
        self.entry_queue: Deque["JavaThread"] = deque()
        #: Threads that called wait() and have not been notified, FIFO.
        self.wait_set: Deque["JavaThread"] = deque()
        #: Virtual lock id assigned by the replication layer on first
        #: acquisition (None while unassigned, exactly as in the paper).
        self.l_id: Optional[int] = None
        #: Lock acquire sequence number: how many times this monitor has
        #: been (non-recursively) acquired so far.
        self.l_asn = 0

    def is_held_by(self, thread: "JavaThread") -> bool:
        return self.owner is thread

    def is_free(self) -> bool:
        return self.owner is None

    def __repr__(self) -> str:
        owner = self.owner.vid_str if self.owner else "-"
        return (
            f"<Monitor owner={owner} rec={self.recursion} "
            f"l_id={self.l_id} l_asn={self.l_asn}>"
        )


class AdmissionController:
    """Decides when a thread may complete a monitor acquisition.

    The default implementation admits any thread as soon as the monitor
    is free (or already owned by it).  Hook methods receive the monitor
    *after* l_asn has been updated for acquisitions.
    """

    def may_acquire(self, thread: "JavaThread", monitor: Monitor) -> bool:
        """May ``thread`` acquire ``monitor`` now, assuming it is free?

        Returning False parks the thread until :meth:`may_acquire`
        is re-evaluated (the scheduler re-checks after every monitor
        event).  The monitor being *held* is handled separately by the
        entry queue; this gate expresses replication-order constraints
        only.
        """
        return True

    def on_acquired(self, thread: "JavaThread", monitor: Monitor) -> None:
        """Called after a non-recursive acquisition completes."""

    def on_released(self, thread: "JavaThread", monitor: Monitor) -> None:
        """Called after a non-recursive release completes."""


def get_monitor(obj) -> Monitor:
    """Lazily create and return the monitor of a heap object."""
    monitor = obj.monitor
    if monitor is None:
        monitor = Monitor()
        monitor.obj = obj
        obj.monitor = monitor
    return monitor

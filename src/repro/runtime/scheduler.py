"""The green-threads scheduler.

Sun's JDK 1.2 "green threads" library multiplexes Java threads onto one
OS thread of a uniprocessor — restriction R4B's setting.  We reproduce
that: one thread runs at a time, preempted only at bytecode boundaries
(safe points), so a scheduled thread has exclusive access to shared
variables exactly as R4B requires.

Non-determinism model
---------------------
Real schedulers preempt on timer interrupts whose arrival varies by
cache state, IRQ load, etc.  We model that with a *seeded jitter*: the
length of each time slice (measured in control-flow changes, like the
paper's ``br_cnt``) is ``quantum_base`` plus a pseudo-random excess.
Giving primary and backup different seeds makes their interleavings
genuinely diverge — which is precisely the non-determinism the paper's
two replication techniques must eliminate.

Pluggable policy
----------------
All scheduling decisions flow through a :class:`ScheduleController`:

* the default controller implements jittered round-robin;
* the *primary* under replicated thread scheduling wraps it to log a
  thread-schedule record at every switch;
* the *backup* controller replays the primary's records, preempting
  each thread exactly at the logged ``(br_cnt, pc_off, mon_cnt)``
  progress point and scheduling the logged successor.
"""

from __future__ import annotations

import enum
import random
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.errors import DeadlockError
from repro.runtime.threads import JavaThread, ThreadState


class SliceEnd(enum.Enum):
    """Why a time slice ended."""

    QUANTUM = "quantum"          # preempted after exhausting its quantum
    CONTROLLER = "controller"    # preempted by the controller (replay)
    BLOCKED = "blocked"          # blocked entering a monitor
    WAITING = "waiting"          # entered a wait set / join / sleep
    PARKED = "parked"            # vetoed by the admission controller
    YIELDED = "yielded"          # Thread.yield
    TERMINATED = "terminated"    # thread finished
    STARVED = "starved"          # hot backup waiting for more log
    BUDGET = "budget"            # run_slice instruction budget exhausted
                                 # (internal to the execution engine;
                                 # never reported by the JVM run loop)


class ScheduleController:
    """Default policy: jittered round-robin."""

    #: Whether :meth:`should_preempt` can ever return True.  The fast
    #: path skips the call entirely at safe-point boundaries when this
    #: is False (live schedulers preempt only on quantum exhaustion);
    #: replaying backups override it to True.
    needs_preempt_checks = False

    def __init__(self, seed: int = 0, quantum_base: int = 50,
                 quantum_jitter: int = 20) -> None:
        self._rng = random.Random(seed)
        self.quantum_base = quantum_base
        self.quantum_jitter = quantum_jitter

    def quantum(self, thread: JavaThread) -> int:
        """Slice length for ``thread``, in control-flow changes."""
        if self.quantum_jitter <= 0:
            return self.quantum_base
        return self.quantum_base + self._rng.randrange(self.quantum_jitter + 1)

    def should_preempt(self, thread: JavaThread) -> bool:
        """Checked at safe-point boundaries; used by replay controllers.

        Only controllers with ``needs_preempt_checks = True`` are
        actually consulted — the stock policy preempts via the quantum
        alone, so the engine elides the call.
        """
        return False

    def pick_next(self, scheduler: "Scheduler") -> Optional[JavaThread]:
        """Choose the next thread to run (FIFO by default)."""
        queue = scheduler.runnable
        while queue:
            thread = queue.popleft()
            if thread.state is ThreadState.RUNNABLE:
                return thread
        return None

    def on_switch(self, prev: Optional[JavaThread], reason: Optional[SliceEnd],
                  next_thread: JavaThread) -> None:
        """Called when a different thread is about to run."""

    def on_slice_end(self, thread: JavaThread, reason: SliceEnd) -> None:
        """Called whenever a slice ends, before the next pick."""


class Scheduler:
    """Owns the thread set, the runnable queue, and timers."""

    def __init__(self, time_fn: Callable[[], float],
                 controller: Optional[ScheduleController] = None) -> None:
        self._time_fn = time_fn
        self.controller = controller or ScheduleController()
        self.threads: List[JavaThread] = []
        self.runnable: Deque[JavaThread] = deque()
        self.current: Optional[JavaThread] = None
        #: Context switches to a *different* thread (Table 2's
        #: "Avg. Reschedules" numerator).
        self.reschedules = 0
        #: Slices executed in total.
        self.slices = 0
        #: Why the most recent slice ended (set by the JVM run loop,
        #: consumed by ``pick`` when it reports a switch).
        self.last_reason: Optional[SliceEnd] = None

    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._time_fn()

    def register(self, thread: JavaThread) -> None:
        self.threads.append(thread)

    def make_runnable(self, thread: JavaThread) -> None:
        if thread.state is ThreadState.TERMINATED:
            return
        thread.state = ThreadState.RUNNABLE
        thread.blocked_on = None
        if thread not in self.runnable and thread is not self.current:
            self.runnable.append(thread)

    def requeue_current(self, thread: JavaThread) -> None:
        """Put a preempted-but-runnable thread at the back of the queue."""
        if thread.state is ThreadState.RUNNABLE and thread not in self.runnable:
            self.runnable.append(thread)

    def release_current(self) -> None:
        """Forget the current thread (used when a run loop pauses).

        ``make_runnable`` skips the current thread on the assumption
        that it is executing; when a hot backup's run loop pauses
        mid-stream that assumption would leak the thread, so the pause
        path must release it explicitly."""
        current = self.current
        self.current = None
        if current is not None:
            self.requeue_current(current)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def wake_expired_timers(self, sync_manager) -> None:
        now = self.now()
        for thread in self.threads:
            if (
                thread.state is ThreadState.TIMED_WAITING
                and thread.wakeup_time is not None
                and thread.wakeup_time <= now
            ):
                sync_manager.timeout_waiter(thread)

    def earliest_wakeup(self) -> Optional[float]:
        times = [
            t.wakeup_time
            for t in self.threads
            if t.state is ThreadState.TIMED_WAITING and t.wakeup_time is not None
        ]
        return min(times) if times else None

    # ------------------------------------------------------------------
    # Liveness queries
    # ------------------------------------------------------------------
    def live_application_threads(self) -> List[JavaThread]:
        return [
            t for t in self.threads
            if t.alive and not t.is_daemon and not t.is_system
        ]

    def pick(self) -> Optional[JavaThread]:
        """Pick the next thread via the controller, recording switches."""
        prev = self.current
        thread = self.controller.pick_next(self)
        if thread is None:
            self.current = None
            return None
        if prev is not thread:
            self.reschedules += 1
            self.controller.on_switch(prev, self.last_reason, thread)
        self.slices += 1
        self.current = thread
        return thread

    def assert_progress_possible(self) -> None:
        """Raise DeadlockError when no thread can ever run again."""
        for t in self.threads:
            if t.state in (ThreadState.RUNNABLE, ThreadState.TIMED_WAITING):
                return
        blocked = [t for t in self.threads if t.alive]
        if blocked:
            detail = ", ".join(
                f"{t.vid_str}:{t.state.value}" for t in blocked
            )
            raise DeadlockError(f"all live threads are blocked ({detail})")

"""The object heap: allocation, tracking, and occupancy accounting.

The heap assigns allocation-order object ids and tracks every live
object so the mark-sweep collector (:mod:`repro.runtime.gc`) can sweep.
Memory pressure is modelled by *cells*: each object costs a number of
cells proportional to its field/element count; crossing the configured
threshold triggers a synchronous collection at the next allocation
(a safe point), mirroring how Sun's JVM collects during allocation.

Dirty-object tracking for incremental checkpoints: the heap carries an
*era* counter — a shared monotone mutation clock.  Mutation sites
(field/array stores, monitor state changes, GC referent clearing) stamp
the object's ``mut_era`` with the current era.  Two consumers read the
clock against their own baselines:

- Checkpointing calls :meth:`Heap.advance_era` after each capture,
  which bumps the clock *and* records it as ``ckpt_era``; a delta
  checkpoint is exactly the objects with ``mut_era >= ckpt_era`` at
  capture time plus the oids freed since the last capture.
- The incremental state digest calls :meth:`Heap.bump_era` after each
  digest pass, which bumps the clock only — objects whose ``mut_era``
  is below the digest's own remembered baseline are provably unchanged
  since the last pass and their cached hashes can be reused.

Tracking is free until :meth:`Heap.advance_era` is first called —
unreplicated and non-checkpointing runs never pay for the freed-oid
set.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Set

from repro.classfile.loader import ClassRegistry
from repro.classfile.model import default_value
from repro.errors import ReproError
from repro.runtime.values import JArray, JObject

#: Fixed per-object overhead in cells (header analogue).
_HEADER_CELLS = 2


class Heap:
    """Allocation arena for one JVM instance."""

    def __init__(
        self,
        registry: ClassRegistry,
        gc_threshold_cells: int = 2_000_000,
    ) -> None:
        self._registry = registry
        self._next_oid = 1
        self.objects: List[Any] = []
        self.used_cells = 0
        self.gc_threshold_cells = gc_threshold_cells
        #: Set by the JVM to request a collection at the next safe point.
        self.gc_requested = False
        #: Allocation counter (survives GC; used by benchmarks/metrics).
        self.total_allocations = 0
        #: Shared monotone mutation clock (see module docstring).
        self.era = 0
        #: Checkpointing's baseline into the clock: objects whose
        #: ``mut_era`` is >= this value have been touched since the
        #: last :meth:`advance_era`.
        self.ckpt_era = 0
        #: Only maintained once checkpointing starts (see module doc).
        self.track_freed = False
        self._freed: Set[int] = set()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc_object(self, class_name: str) -> JObject:
        """Allocate an instance with default-initialized fields."""
        fields: Dict[str, Any] = {}
        for f in self._registry.instance_fields(class_name):
            fields[f.name] = default_value(f.type)
        obj = JObject(class_name, fields, self._take_oid())
        self._track(obj, _HEADER_CELLS + len(fields))
        return obj

    def alloc_array(self, elem_type: str, length: int) -> JArray:
        if length < 0:
            raise ReproError("negative array size must be raised as a Java "
                             "exception by the caller")
        data = [default_value(elem_type)] * length
        arr = JArray(elem_type, data, self._take_oid())
        self._track(arr, _HEADER_CELLS + length)
        return arr

    def _take_oid(self) -> int:
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def _track(self, obj: Any, cells: int) -> None:
        obj.mut_era = self.era
        self.objects.append(obj)
        self.used_cells += cells
        self.total_allocations += 1
        if self.used_cells >= self.gc_threshold_cells:
            self.gc_requested = True

    # ------------------------------------------------------------------
    # Dirty-object tracking (incremental checkpoints)
    # ------------------------------------------------------------------
    def advance_era(self) -> None:
        """Start a new mutation era (called after a checkpoint capture).

        Objects allocated or mutated from now on are dirty relative to
        the capture; oids freed from now on are recorded.
        """
        self.era += 1
        self.ckpt_era = self.era
        self.track_freed = True
        self._freed.clear()

    def bump_era(self) -> None:
        """Advance the mutation clock without moving the checkpoint
        baseline.  Used by consumers (e.g. the incremental digest) that
        keep their own baseline into the shared clock."""
        self.era += 1

    def dirty_objects(self) -> Iterator[Any]:
        """Live objects mutated or allocated since the last checkpoint."""
        era = self.ckpt_era
        return (obj for obj in self.objects if obj.mut_era >= era)

    def freed_oids(self) -> Set[int]:
        """Oids collected since the last :meth:`advance_era`."""
        return set(self._freed)

    # ------------------------------------------------------------------
    # Accounting used by the collector
    # ------------------------------------------------------------------
    @staticmethod
    def cells_of(obj: Any) -> int:
        if isinstance(obj, JObject):
            return _HEADER_CELLS + len(obj.fields)
        return _HEADER_CELLS + len(obj.data)

    def replace_live(self, live: List[Any], live_cells: int) -> int:
        """Install the survivor list after a sweep; returns cells freed."""
        freed = self.used_cells - live_cells
        if self.track_freed:
            survivors = {id(obj) for obj in live}
            self._freed.update(
                obj.oid for obj in self.objects if id(obj) not in survivors
            )
        self.objects = live
        self.used_cells = live_cells
        self.gc_requested = False
        return freed

    def __len__(self) -> int:
        return len(self.objects)

"""Call-stack frames for the bytecode execution engine."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.classfile.model import JMethod


class Frame:
    """One activation record.

    Attributes:
        method: the executing method.
        locals: local-variable slots (receiver in slot 0 for instance
            methods, parameters next, then body temporaries).
        stack: the operand stack.
        pc: index of the *next* instruction to execute.
        sync_object: the object whose monitor this frame holds because
            the method is ``synchronized`` (released on any exit path).
        held_monitors: objects whose monitors were entered via
            ``monitorenter`` inside this frame and not yet exited; used
            to unwind structured locking when an exception propagates.
        decoded: the executing interpreter's pre-decoded stream for
            this method's code, filled lazily on first dispatch and
            cleared when the class registry's version moves.  Purely a
            cache — never part of replicated or checkpointed state.
    """

    __slots__ = ("method", "locals", "stack", "pc", "sync_object",
                 "held_monitors", "decoded")

    def __init__(self, method: JMethod, args: List[Any]) -> None:
        code = method.code
        assert code is not None, "native methods never get frames"
        slots = [None] * code.max_locals
        slots[: len(args)] = args
        self.method = method
        self.locals = slots
        self.stack: List[Any] = []
        self.pc = 0
        self.sync_object: Optional[Any] = None
        self.held_monitors: List[Any] = []
        self.decoded: Optional[list] = None

    def push(self, value: Any) -> None:
        self.stack.append(value)

    def pop(self) -> Any:
        return self.stack.pop()

    def __repr__(self) -> str:
        return f"<Frame {self.method.qualified_name} pc={self.pc}>"

"""Bootstrap classes and the standard native library.

This is the analogue of the JRE's core classes plus its native methods.
:func:`install_stdlib` registers the classes into a program's
:class:`~repro.classfile.loader.ClassRegistry`; :func:`build_natives`
produces the annotated :class:`~repro.runtime.natives.NativeRegistry`.

Every native below carries the annotations of Section 3.4 / Table 1:
deterministic or not, output or not, idempotent/testable (R5), and the
side-effect handler that owns its volatile state (R6).  The inventory
mirrors the paper's finding that "fewer than 100 native methods are
non-deterministic": our non-deterministic set is the clock, entropy,
and file-input methods, each annotated explicitly.
"""

from __future__ import annotations

import math as _math
from typing import Any

from repro.bytecode.assembler import assemble
from repro.classfile.loader import ClassRegistry
from repro.classfile.model import CTOR_NAME, JClass, JField, JMethod
from repro.env.filesystem import JavaIOError
from repro.runtime.natives import JavaThrow, NativeRegistry, NativeSpec

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _native(name: str, nargs: int, returns: bool, *, static: bool = True) -> JMethod:
    return JMethod(name, nargs, returns, is_native=True, is_static=static)


def _bytecode(name: str, nargs: int, returns: bool, source: str, *,
              static: bool = False, min_locals: int = 0) -> JMethod:
    code = assemble(source, max_locals=min_locals or (nargs + (0 if static else 1)))
    return JMethod(name, nargs, returns, code, is_static=static)


def text_of(value: Any) -> str:
    """Render any runtime value as console text (Java's implicit
    String.valueOf in print calls)."""
    if value is None:
        return "null"
    if isinstance(value, str):
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    return f"{getattr(value, 'class_name', 'array')}@{value.oid}"


# ----------------------------------------------------------------------
# Class definitions
# ----------------------------------------------------------------------

def install_stdlib(registry: ClassRegistry) -> ClassRegistry:
    """Register the bootstrap classes into ``registry``; returns it."""
    root = registry.resolve("Object")
    for method in (
        _native("hashCode", 0, True, static=False),
        _native("equals", 1, True, static=False),
        _native("toString", 0, True, static=False),
        _native("wait", 0, False, static=False),
        _native("timedWait", 1, False, static=False),
        _native("notify", 0, False, static=False),
        _native("notifyAll", 0, False, static=False),
        _bytecode("finalize", 0, False, "return\n"),
    ):
        root.add_method(method)

    throwable = JClass("Throwable", "Object")
    throwable.add_field(JField("message", "str"))
    throwable.add_method(_bytecode(
        CTOR_NAME, 1, False,
        """
        load 0
        load 1
        putfield message
        return
        """,
    ))
    throwable.add_method(_bytecode(
        "getMessage", 0, True,
        """
        load 0
        getfield message
        vreturn
        """,
    ))
    registry.register(throwable)

    hierarchy = [
        ("Exception", "Throwable"),
        ("Error", "Throwable"),
        ("RuntimeException", "Exception"),
        ("InterruptedException", "Exception"),
        ("IOException", "Exception"),
        ("NullPointerException", "RuntimeException"),
        ("ArithmeticException", "RuntimeException"),
        ("ArrayIndexOutOfBoundsException", "RuntimeException"),
        ("StringIndexOutOfBoundsException", "RuntimeException"),
        ("NegativeArraySizeException", "RuntimeException"),
        ("ClassCastException", "RuntimeException"),
        ("IllegalMonitorStateException", "RuntimeException"),
        ("IllegalStateException", "RuntimeException"),
        ("IllegalArgumentException", "RuntimeException"),
        ("NumberFormatException", "IllegalArgumentException"),
        ("OutOfMemoryError", "Error"),
        ("StackOverflowError", "Error"),
    ]
    for name, parent in hierarchy:
        registry.register(JClass(name, parent))

    thread_cls = JClass("Thread", "Object")
    thread_cls.add_method(_bytecode("run", 0, False, "return\n"))
    for method in (
        _native("start", 0, False, static=False),
        _native("join", 0, False, static=False),
        _native("isAlive", 0, True, static=False),
        _native("setDaemon", 1, False, static=False),
        _native("stop", 0, False, static=False),
        _native("sleep", 1, False),
        _native("yield", 0, False),
        _native("currentThread", 0, True),
    ):
        thread_cls.add_method(method)
    registry.register(thread_cls)

    system_cls = JClass("System", "Object")
    for method in (
        _native("println", 1, False),
        _native("print", 1, False),
        _native("currentTimeMillis", 0, True),
        _native("arraycopy", 5, False),
        _native("gc", 0, False),
    ):
        system_cls.add_method(method)
    registry.register(system_cls)

    strings_cls = JClass("Strings", "Object")
    for name, nargs in (
        ("length", 1), ("charAt", 2), ("substring", 3), ("indexOf", 2),
        ("indexOfFrom", 3), ("compare", 2), ("fromChar", 1), ("hash", 1),
        ("trim", 1), ("startsWith", 2), ("endsWith", 2), ("toChars", 1),
        ("fromChars", 2), ("repeat", 2), ("upper", 1), ("lower", 1),
    ):
        strings_cls.add_method(_native(name, nargs, True))
    registry.register(strings_cls)

    math_cls = JClass("Math", "Object")
    for name, nargs in (
        ("sqrt", 1), ("sin", 1), ("cos", 1), ("atan", 1), ("atan2", 2),
        ("pow", 2), ("exp", 1), ("log", 1), ("floor", 1), ("ceil", 1),
        ("fabs", 1), ("fmin", 2), ("fmax", 2),
        ("imin", 2), ("imax", 2), ("iabs", 1),
    ):
        math_cls.add_method(_native(name, nargs, True))
    registry.register(math_cls)

    env_cls = JClass("Env", "Object")
    env_cls.add_method(_native("randomInt", 1, True))
    env_cls.add_method(_native("randomFloat", 0, True))
    registry.register(env_cls)

    files_cls = JClass("Files", "Object")
    for name, nargs, returns in (
        ("open", 2, True), ("close", 1, False),
        ("write", 2, False), ("writeLine", 2, False),
        ("readLine", 1, True), ("readChar", 1, True),
        ("seek", 2, False), ("tell", 1, True),
        ("size", 1, True), ("exists", 1, True), ("delete", 1, False),
    ):
        files_cls.add_method(_native(name, nargs, returns))
    registry.register(files_cls)

    server_cls = JClass("Server", "Object")
    server_cls.add_method(_native("recv", 1, True))
    server_cls.add_method(_native("reply", 2, False))
    registry.register(server_cls)

    refs_cls = JClass("Refs", "Object")
    refs_cls.add_method(_native("soft", 1, True))
    refs_cls.add_method(_native("weak", 1, True))
    registry.register(refs_cls)

    for ref_class in ("SoftReference", "WeakReference"):
        cls = JClass(ref_class, "Object")
        cls.add_field(JField("referent", "ref"))
        cls.add_method(_bytecode(
            CTOR_NAME, 1, False,
            """
            load 0
            load 1
            putfield referent
            return
            """,
        ))
        cls.add_method(_bytecode(
            "get", 0, True,
            """
            load 0
            getfield referent
            vreturn
            """,
        ))
        registry.register(cls)

    return registry


# ----------------------------------------------------------------------
# Native implementations
# ----------------------------------------------------------------------

def _println(ctx, receiver, args):
    ctx.output_target().console_write(text_of(args[0]) + "\n")
    return None


def _print(ctx, receiver, args):
    ctx.output_target().console_write(text_of(args[0]))
    return None


def _current_time_millis(ctx, receiver, args):
    return ctx.clock_ms()


def _arraycopy(ctx, receiver, args):
    src, src_pos, dst, dst_pos, length = args
    if src is None or dst is None:
        raise JavaThrow("NullPointerException", "arraycopy")
    if (
        length < 0
        or src_pos < 0 or src_pos + length > len(src.data)
        or dst_pos < 0 or dst_pos + length > len(dst.data)
    ):
        raise JavaThrow("ArrayIndexOutOfBoundsException", "arraycopy")
    dst.data[dst_pos:dst_pos + length] = src.data[src_pos:src_pos + length]
    dst.mut_era = ctx.jvm.heap.era
    return None


def _str_char_at(ctx, receiver, args):
    s, i = args
    if not 0 <= i < len(s):
        raise JavaThrow("StringIndexOutOfBoundsException", f"index {i}")
    return ord(s[i])


def _str_substring(ctx, receiver, args):
    s, begin, end = args
    if not 0 <= begin <= end <= len(s):
        raise JavaThrow(
            "StringIndexOutOfBoundsException", f"begin {begin}, end {end}"
        )
    return s[begin:end]


def _str_compare(ctx, receiver, args):
    a, b = args
    return -1 if a < b else (1 if a > b else 0)


def _str_hash(ctx, receiver, args):
    """Java's String.hashCode: s[0]*31^(n-1) + ... + s[n-1], wrapped."""
    h = 0
    for ch in args[0]:
        h = (31 * h + ord(ch)) & 0xFFFFFFFF
    return h - 0x100000000 if h & 0x80000000 else h


def _str_to_chars(ctx, receiver, args):
    s = args[0]
    arr = ctx.alloc_array("int", len(s))
    arr.data[:] = [ord(ch) for ch in s]
    return arr


def _str_from_chars(ctx, receiver, args):
    arr, length = args
    if arr is None:
        raise JavaThrow("NullPointerException", "fromChars")
    if not 0 <= length <= len(arr.data):
        raise JavaThrow("ArrayIndexOutOfBoundsException", f"length {length}")
    return "".join(chr(c) for c in arr.data[:length])


def _server_recv(ctx, receiver, args):
    return ctx.request_input().recv_request(args[0])


def _server_reply(ctx, receiver, args):
    ctx.output_target().respond(args[0], args[1])
    return None


def _refs_make(class_name: str):
    def impl(ctx, receiver, args):
        ref = ctx.alloc_object(class_name)
        ref.fields["referent"] = args[0]
        return ref
    return impl


def _io(fn):
    """Convert simulated-OS errors into Java IOException.

    Only :class:`JavaIOError` converts — enforcement errors
    (NativeError, SessionDestroyed) must propagate to the harness.
    """
    def impl(ctx, receiver, args):
        try:
            return fn(ctx, receiver, args)
        except JavaIOError as err:
            raise JavaThrow("IOException", str(err)) from None
    return impl


def build_natives() -> NativeRegistry:
    """Construct the annotated native registry (shared, immutable)."""
    registry = NativeRegistry()

    def register(signature: str, impl, **annotations) -> None:
        registry.register(NativeSpec(signature, impl, **annotations))

    # --- Console output: testable via the transcript position (R5). ---
    register("System.println/1", _println,
             is_output=True, testable=True, se_handler="console")
    register("System.print/1", _print,
             is_output=True, testable=True, se_handler="console")

    # --- Clock and entropy: the canonical non-deterministic inputs. ---
    register("System.currentTimeMillis/0", _current_time_millis,
             deterministic=False)
    register("Env.randomInt/1",
             lambda ctx, r, a: ctx.random_int(a[0]), deterministic=False)
    register("Env.randomFloat/0",
             lambda ctx, r, a: ctx.random_float(), deterministic=False)

    # --- Deterministic utility natives. ---------------------------------
    register("System.arraycopy/5", _arraycopy)
    register("Strings.length/1", lambda ctx, r, a: len(a[0]))
    register("Strings.charAt/2", _str_char_at)
    register("Strings.substring/3", _str_substring)
    register("Strings.indexOf/2", lambda ctx, r, a: a[0].find(a[1]))
    register("Strings.indexOfFrom/3", lambda ctx, r, a: a[0].find(a[1], a[2]))
    register("Strings.compare/2", _str_compare)
    register("Strings.fromChar/1", lambda ctx, r, a: chr(a[0]))
    register("Strings.hash/1", _str_hash)
    register("Strings.trim/1", lambda ctx, r, a: a[0].strip())
    register("Strings.startsWith/2",
             lambda ctx, r, a: 1 if a[0].startswith(a[1]) else 0)
    register("Strings.endsWith/2",
             lambda ctx, r, a: 1 if a[0].endswith(a[1]) else 0)
    register("Strings.toChars/1", _str_to_chars)
    register("Strings.fromChars/2", _str_from_chars)
    register("Strings.repeat/2", lambda ctx, r, a: a[0] * max(a[1], 0))
    register("Strings.upper/1", lambda ctx, r, a: a[0].upper())
    register("Strings.lower/1", lambda ctx, r, a: a[0].lower())

    register("Math.sqrt/1", lambda ctx, r, a: _math.sqrt(a[0]) if a[0] >= 0 else float("nan"))
    register("Math.sin/1", lambda ctx, r, a: _math.sin(a[0]))
    register("Math.cos/1", lambda ctx, r, a: _math.cos(a[0]))
    register("Math.atan/1", lambda ctx, r, a: _math.atan(a[0]))
    register("Math.atan2/2", lambda ctx, r, a: _math.atan2(a[0], a[1]))
    register("Math.pow/2", lambda ctx, r, a: float(a[0] ** a[1]))
    register("Math.exp/1", lambda ctx, r, a: _math.exp(a[0]))
    register("Math.log/1", lambda ctx, r, a: _math.log(a[0]) if a[0] > 0 else float("nan"))
    register("Math.floor/1", lambda ctx, r, a: _math.floor(a[0]) * 1.0)
    register("Math.ceil/1", lambda ctx, r, a: _math.ceil(a[0]) * 1.0)
    register("Math.fabs/1", lambda ctx, r, a: abs(a[0]))
    register("Math.fmin/2", lambda ctx, r, a: min(a[0], a[1]))
    register("Math.fmax/2", lambda ctx, r, a: max(a[0], a[1]))
    register("Math.imin/2", lambda ctx, r, a: min(a[0], a[1]))
    register("Math.imax/2", lambda ctx, r, a: max(a[0], a[1]))
    register("Math.iabs/1", lambda ctx, r, a: abs(a[0]))

    # --- Serving: request ingest (non-det input) and replies (R5). -----
    # Which request arrives next is arrival-order non-determinism, so
    # recv results are logged and adopted on replay; reply commits to
    # the stable response log, so it is testable by membership.
    register("Server.recv/1", _server_recv, deterministic=False)
    register("Server.reply/2", _server_reply,
             is_output=True, testable=True, se_handler="response")

    register("Refs.soft/1", _refs_make("SoftReference"))
    register("Refs.weak/1", _refs_make("WeakReference"))

    # --- File I/O: volatile fds managed by the "file" SE handler (R6). --
    register(
        "Files.open/2",
        _io(lambda ctx, r, a: ctx.output_target().open(a[0], a[1])),
        deterministic=False, is_output=True, testable=True,
        se_handler="file",
    )
    register(
        "Files.close/1",
        _io(lambda ctx, r, a: ctx.output_target().close(a[0])),
        is_output=True, idempotent=True, se_handler="file",
    )
    register(
        "Files.write/2",
        _io(lambda ctx, r, a: ctx.output_target().handle(a[0]).write(a[1])),
        is_output=True, testable=True, se_handler="file",
    )
    register(
        "Files.writeLine/2",
        _io(lambda ctx, r, a:
            ctx.output_target().handle(a[0]).write(a[1] + "\n")),
        is_output=True, testable=True, se_handler="file",
    )
    register(
        "Files.readLine/1",
        _io(lambda ctx, r, a: ctx.file_input().handle(a[0]).read_line()),
        deterministic=False, se_handler="file",
    )
    register(
        "Files.readChar/1",
        _io(lambda ctx, r, a: ctx.file_input().handle(a[0]).read_char()),
        deterministic=False, se_handler="file",
    )
    register(
        "Files.seek/2",
        _io(lambda ctx, r, a: ctx.output_target().handle(a[0]).seek(a[1])),
        is_output=True, idempotent=True, se_handler="file",
    )
    register(
        "Files.tell/1",
        _io(lambda ctx, r, a: ctx.file_input().handle(a[0]).tell()),
        deterministic=False, se_handler="file",
    )
    register(
        "Files.size/1",
        _io(lambda ctx, r, a: ctx.file_input().env.fs.size(a[0])),
        deterministic=False,
    )
    register(
        "Files.exists/1",
        _io(lambda ctx, r, a: 1 if ctx.file_input().env.fs.exists(a[0]) else 0),
        deterministic=False,
    )
    register(
        "Files.delete/1",
        _io(lambda ctx, r, a: ctx.output_target().env.fs.delete(a[0])),
        is_output=True, idempotent=True,
    )

    return registry


_DEFAULT_NATIVES: NativeRegistry = None


def default_natives() -> NativeRegistry:
    """Shared immutable native registry (built once per process)."""
    global _DEFAULT_NATIVES
    if _DEFAULT_NATIVES is None:
        _DEFAULT_NATIVES = build_natives()
    return _DEFAULT_NATIVES


def new_program_registry() -> ClassRegistry:
    """A fresh class registry with the standard library installed."""
    return install_stdlib(ClassRegistry())

"""Superinstruction block compiler for the ``block`` execution engine.

:func:`compile_block` turns one straight-line run of *plain* pre-decoded
bytecodes (the region between two safe-point-relevant events — no
control flow, no monitors) into a single generated Python function,
``compile``d once and cached on the decoded stream.  The generated
function executes the whole run with no dispatch loop and no
per-instruction kind test:

* the operand stack is simulated at *compile* time — values flow
  through Python temporaries, and ``frame.stack`` is only touched for
  values that live across the block boundary (pops below block entry,
  pushes surviving to block exit);
* constants, inline-cache cells, and slow-path helpers are bound as
  default arguments, so every name the hot path touches is a Python
  local;
* ``thread.instructions`` accounting is deferred: the function returns
  ``(n, result)`` and the caller applies ``n`` as one add (the same
  batch discipline the interpreting loop already uses);
* ``jvm.heavy_ops`` increments are folded into one compile-time
  constant per exit path.

Safe-point equivalence (DESIGN.md §6c): a block contains no control
flow, no monitor operation, no invoke — so no deschedule, no GC, no
native, and no output can occur inside it.  Every architectural effect
(heap writes with their ``mut_era`` stamps, locals, statics, allocation
order, thrown Java exceptions and their messages) is produced exactly
as the interpreting loop would produce it, and ``frame.pc`` is
synchronized before any operation that can dispatch an exception, so
the handler search and the diagnostic state match the interpreter
bit-for-bit at every point where they are observable.

Exception exits skip re-materializing the virtual stack because
:meth:`Interpreter.dispatch_exception` either clears the frame's stack
(handler in this frame) or discards the frame entirely (unwind) — the
stale real stack is never observable.

Branch fusion: when the event op terminating a run is a *simple*
branch (GOTO / IF* — touches only the operand stack and ``pc``, never
blocks, never raises, never changes the frame list), the block inlines
it and returns the :data:`BRANCH` sentinel so the caller can do the
event-exit bookkeeping (``br_cnt`` is ticked in-block, before the
branch, like the event path does).  The safe-point boundary *before*
the branch is preserved by a bail-out: if a GC was requested during
the run, or the caller needs replay-preemption checks this slice
(``bail``), the block rolls the branch operands back onto the real
stack and returns at the boundary — the interpreting event path then
runs the branch after full checks, exactly like ``engine="slice"``.
"""

from __future__ import annotations

from typing import Optional

from repro.bytecode.opcodes import OP_INFO, Op
from repro.errors import LinkageError, ReproError
from repro.runtime.values import (
    JObject,
    conforms,
    describe,
    java_div,
    java_rem,
    java_shl,
    java_shr,
    java_ushr,
    wrap_int,
)

#: Runs shorter than this gain nothing over the interpreting batch
#: loop (a fused branch makes even a one-op run worth compiling);
#: runs longer than the cap would starve under small budgets because a
#: block only runs when the whole run fits the budget.
MIN_RUN = 2
MAX_RUN = 512

#: Returned (as the result half of ``(n, result)``) by a block that
#: executed its fused terminating branch: the caller must do the
#: event-exit bookkeeping (flush deferred counts, check quantum).
BRANCH = object()


class CompiledBlock:
    """One compiled straight-line run: ``fn(thread, frame, bail)``
    executes it and returns ``(instructions_executed, result)`` where
    ``result`` is None (stopped at the terminating event), a
    :class:`StepResult` (an op dispatched a Java exception), or
    :data:`BRANCH` (the fused branch ran).  ``size`` counts the fused
    branch, so the ``rem >= size`` budget gate covers every path."""

    __slots__ = ("entry", "size", "fn")

    def __init__(self, entry: int, size: int, fn) -> None:
        self.entry = entry
        self.size = size
        self.fn = fn


def _field_miss(obj, name):
    """Slow path shared by GETFIELD/PUTFIELD (always raises)."""
    raise LinkageError(f"no field {name!r} on {describe(obj)}") from None


def _store_miss(value, arr):
    """ARRSTORE element-type mismatch (always raises)."""
    raise ReproError(
        f"array store type mismatch: {describe(value)} into "
        f"{arr.elem_type}[]"
    )


#: Int arithmetic whose raw Python result can leave 32-bit range: the
#: generated code guards with a cheap range test and only calls
#: ``wrap_int`` on actual overflow (rare on real workloads).
_INT_GUARDED = {
    Op.IADD: "{a} + {b}",
    Op.ISUB: "{a} - {b}",
    Op.IMUL: "{a} * {b}",
}

#: Bitwise ops on in-range two's-complement ints stay in range (Python
#: sign-extends negative operands), so no wrap is needed at all.
_INT_EXACT = {
    Op.IAND: "{a} & {b}",
    Op.IOR: "{a} | {b}",
    Op.IXOR: "{a} ^ {b}",
}

_INT_EXPR = {
    Op.ISHL: "java_shl({a}, {b})",
    Op.ISHR: "java_shr({a}, {b})",
    Op.IUSHR: "java_ushr({a}, {b})",
}

_DIV_FN = {Op.IDIV: "java_div", Op.IREM: "java_rem"}

_FLOAT_EXPR = {
    Op.FADD: "{a} + {b}",
    Op.FSUB: "{a} - {b}",
    Op.FMUL: "{a} * {b}",
    Op.FDIV: "(({a} / {b}) if {b} != 0.0 else f_div_zero({a}))",
}

#: Comparison symbols (see ``CMP_FNS``) inlined as Python operators.
_CMP_SRC = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
            "gt": ">", "ge": ">="}

#: Branch opcodes a block may fuse: stack/pc-only handlers that always
#: return None — no blocking, no exception, no frame change.
_FUSABLE = frozenset((
    Op.GOTO, Op.IF, Op.IF_ICMP, Op.IF_FCMP, Op.IF_SCMP,
    Op.IF_NULL, Op.IF_NONNULL, Op.IF_ACMP_EQ, Op.IF_ACMP_NE,
))

#: Helper callables referenced by generated expressions, keyed by the
#: exact name the expression uses.
_EXPR_HELPERS = {
    "wrap_int": wrap_int,
    "java_div": java_div,
    "java_rem": java_rem,
    "java_shl": java_shl,
    "java_shr": java_shr,
    "java_ushr": java_ushr,
}


class _Emitter:
    """Accumulates generated source for one block."""

    def __init__(self, interp, entry: int) -> None:
        self.interp = interp
        self.entry = entry
        self.lines: list = []
        self.vs: list = []          # virtual operand stack (atomic exprs)
        self.ntemp = 0
        self.nconst = 0
        self.binds: dict = {}       # default-arg name -> value
        self.heavy = 0              # jvm.heavy_ops completed so far
        self.uses_stack = False
        self.uses_locals = False
        self.fused = False

    # ---- source helpers ----------------------------------------------
    def emit(self, line: str, depth: int = 0) -> None:
        self.lines.append("    " * (depth + 1) + line)

    def temp(self) -> str:
        name = f"t{self.ntemp}"
        self.ntemp += 1
        return name

    def name(self, name: str, value) -> str:
        """Bind ``value`` under a fixed well-known name."""
        self.binds[name] = value
        return name

    def const(self, value) -> str:
        """An atomic expression for a constant operand: small ints are
        inlined, everything else is bound as a default argument."""
        if type(value) is int:
            return repr(value)
        for bound, v in self.binds.items():
            if v is value and bound.startswith("k"):
                return bound
        name = f"k{self.nconst}"
        self.nconst += 1
        self.binds[name] = value
        return name

    def need(self, expr: str) -> None:
        for name, fn in _EXPR_HELPERS.items():
            if name in expr:
                self.binds[name] = fn
        if "f_div_zero" in expr:
            from repro.runtime.interpreter import _f_div_zero

            self.binds["f_div_zero"] = _f_div_zero

    # ---- virtual stack -----------------------------------------------
    def pop(self) -> str:
        if self.vs:
            return self.vs.pop()
        self.uses_stack = True
        t = self.temp()
        self.emit(f"{t} = S.pop()")
        return t

    def push(self, expr: str) -> None:
        self.vs.append(expr)

    def assign(self, expr: str) -> None:
        t = self.temp()
        self.emit(f"{t} = {expr}")
        self.push(t)

    def assign_guarded(self, expr: str) -> str:
        """Assign an int result, wrapping to 32-bit only when the cheap
        range test says the raw Python value actually overflowed."""
        self.need("wrap_int")
        t = self.temp()
        self.emit(f"{t} = {expr}")
        self.emit(f"if {t} > 2147483647 or {t} < -2147483648:")
        self.emit(f"{t} = wrap_int({t})", 1)
        self.push(t)
        return t

    # ---- exits -------------------------------------------------------
    def exit(self, i: int, call: str, depth: int = 1) -> None:
        """Early exit after the ``i``-th op dispatched a Java exception
        (or terminated the thread): sync pc, flush deferred heavy-op
        accounting, return the per-op count and the handler's result."""
        self.emit(f"frame.pc = {self.entry + i}", depth)
        if self.heavy:
            self.name("jvm", self.interp._jvm)
            self.emit(f"jvm.heavy_ops += {self.heavy}", depth)
        self.emit(f"return ({i + 1}, {call})", depth)

    # ---- per-op code generation --------------------------------------
    def op(self, i: int, op, arg) -> bool:    # noqa: C901 (one big table)
        interp = self.interp
        pc = self.entry + i
        if op is Op.NOP:
            return True
        if op in (Op.ICONST, Op.FCONST, Op.SCONST):
            self.push(self.const(arg))
            return True
        if op is Op.ACONST_NULL:
            self.push("None")
            return True
        if op is Op.LOAD:
            self.uses_locals = True
            self.assign(f"LV[{arg}]")
            return True
        if op is Op.STORE:
            v = self.pop()
            self.uses_locals = True
            self.emit(f"LV[{arg}] = {v}")
            return True
        if op is Op.IINC:
            slot, delta = arg
            self.uses_locals = True
            self.need("wrap_int")
            t = self.temp()
            self.emit(f"{t} = LV[{slot}] + {delta}")
            self.emit(f"if {t} > 2147483647 or {t} < -2147483648:")
            self.emit(f"{t} = wrap_int({t})", 1)
            self.emit(f"LV[{slot}] = {t}")
            return True
        if op is Op.POP:
            if self.vs:
                self.vs.pop()
            else:
                self.uses_stack = True
                self.emit("S.pop()")
            return True
        if op is Op.DUP:
            if self.vs:
                self.vs.append(self.vs[-1])
            else:
                self.uses_stack = True
                t = self.temp()
                self.emit(f"{t} = S[-1]")
                self.push(t)
            return True
        if op is Op.DUP_X1:
            b = self.pop()
            a = self.pop()
            self.push(b)
            self.push(a)
            self.push(b)
            return True
        if op is Op.SWAP:
            b = self.pop()
            a = self.pop()
            self.push(b)
            self.push(a)
            return True
        if op is Op.INEG:
            a = self.pop()
            self.assign_guarded(f"-{a}")
            return True
        if op is Op.FNEG:
            self.assign(f"-{self.pop()}")
            return True
        if op is Op.I2F:
            self.assign(f"float({self.pop()})")
            return True
        if op is Op.F2I:
            self.need("wrap_int")
            self.assign(f"wrap_int(int({self.pop()}))")
            return True
        if op is Op.I2S:
            self.assign(f"str({self.pop()})")
            return True
        if op is Op.F2S:
            self.assign(f"repr(float({self.pop()}))")
            return True
        if op is Op.SCONCAT:
            b = self.pop()
            a = self.pop()
            self.assign(f"{a} + {b}")
            return True
        if op is Op.S2I:
            a = self.pop()
            self.need("wrap_int")
            self.name("throw_new", interp.throw_new)
            t = self.temp()
            self.emit("try:")
            self.emit(f"{t} = wrap_int(int({a}.strip(), 10))", 1)
            self.emit("except ValueError:")
            self.exit(i, "throw_new(thread, 'NumberFormatException', "
                         f"'for input string: %r' % ({a},))")
            self.push(t)
            return True
        if op in _DIV_FN:
            b = self.pop()
            a = self.pop()
            self.name("throw_new", interp.throw_new)
            self.emit(f"if {b} == 0:")
            self.exit(i, "throw_new(thread, 'ArithmeticException', "
                         "'/ by zero')")
            if op is Op.IDIV:
                # Truncate toward zero: when the signs differ, negating
                # the dividend makes Python's floor division truncate.
                # Only -2**31 // -1 leaves range; the guard wraps it.
                self.assign_guarded(
                    f"{a} // {b} if ({a} < 0) == ({b} < 0) "
                    f"else -(-{a} // {b})"
                )
            else:
                # Java remainder carries the dividend's sign; Python's
                # carries the divisor's — shift by one divisor when they
                # disagree.  |result| < |divisor|, so always in range.
                t = self.temp()
                self.emit(f"{t} = {a} % {b}")
                self.emit(f"if {t} and ({a} < 0) != ({b} < 0):")
                self.emit(f"{t} -= {b}", 1)
                self.push(t)
            return True
        if op in _INT_GUARDED:
            b = self.pop()
            a = self.pop()
            self.assign_guarded(_INT_GUARDED[op].format(a=a, b=b))
            return True
        if op in _INT_EXACT:
            b = self.pop()
            a = self.pop()
            self.assign(_INT_EXACT[op].format(a=a, b=b))
            return True
        if op in _INT_EXPR:
            b = self.pop()
            a = self.pop()
            expr = _INT_EXPR[op].format(a=a, b=b)
            self.need(expr)
            self.assign(expr)
            return True
        if op in _FLOAT_EXPR:
            b = self.pop()
            a = self.pop()
            expr = _FLOAT_EXPR[op].format(a=a, b=b)
            self.need(expr)
            self.assign(expr)
            self.heavy += 1
            self.name("jvm", interp._jvm)
            return True
        if op is Op.NEW:
            cn = self.const(arg)
            self.name("new_checked", interp._new_checked)
            self.name("resolve", interp._registry.resolve)
            self.name("alloc_object", interp._heap.alloc_object)
            self.emit(f"if {cn} not in new_checked:")
            self.emit(f"frame.pc = {pc}", 1)
            self.emit(f"resolve({cn})", 1)
            self.emit(f"new_checked.add({cn})", 1)
            self.assign(f"alloc_object({cn})")
            return True
        if op is Op.GETFIELD:
            o = self.pop()
            nk = self.const(arg)
            self.name("npe", interp._npe)
            self.name("field_miss", _field_miss)
            self.emit(f"if {o} is None:")
            self.exit(i, f"npe(thread, {self.const('getfield ' + arg)})")
            t = self.temp()
            self.emit("try:")
            self.emit(f"{t} = {o}.fields[{nk}]", 1)
            self.emit("except (KeyError, AttributeError):")
            self.emit(f"frame.pc = {pc}", 1)
            self.emit(f"field_miss({o}, {nk})", 1)
            self.push(t)
            return True
        if op is Op.PUTFIELD:
            v = self.pop()
            o = self.pop()
            nk = self.const(arg)
            self.name("npe", interp._npe)
            self.name("field_miss", _field_miss)
            self.name("JObject", JObject)
            self.name("heap", interp._heap)
            self.emit(f"if {o} is None:")
            self.exit(i, f"npe(thread, {self.const('putfield ' + arg)})")
            self.emit(f"if not isinstance({o}, JObject) "
                      f"or {nk} not in {o}.fields:")
            self.emit(f"frame.pc = {pc}", 1)
            self.emit(f"field_miss({o}, {nk})", 1)
            self.emit(f"{o}.fields[{nk}] = {v}")
            self.emit(f"{o}.mut_era = heap.era")
            return True
        if op in (Op.GETSTATIC, Op.PUTSTATIC):
            ck = self.const(arg)          # the shared inline-cache cell
            self.name("jvm", self.interp._jvm)
            self.name("static_slot", self.interp._jvm._static_slot)
            s = self.temp()
            self.emit(f"{s} = {ck}[2]")
            self.emit(f"if {s} is None:")
            self.emit(f"frame.pc = {pc}", 1)
            self.emit(f"{s} = static_slot({ck}[0], {ck}[1])", 1)
            self.emit(f"{ck}[2] = {s}", 1)
            if op is Op.GETSTATIC:
                self.assign(f"jvm.statics[{s}]")
            else:
                self.emit(f"jvm.statics[{s}] = {self.pop()}")
            return True
        if op is Op.INSTANCEOF:
            v = self.pop()
            ck = self.const(arg)
            self.name("cached_instance", self.interp._cached_instance)
            self.assign(f"1 if cached_instance({v}, {ck}) else 0")
            return True
        if op is Op.CHECKCAST:
            v = self.pop()
            ck = self.const(arg)
            cn = self.const(arg[0])
            self.name("cached_instance", self.interp._cached_instance)
            self.name("describe", describe)
            self.name("throw_new", interp.throw_new)
            self.emit(f"if {v} is not None "
                      f"and not cached_instance({v}, {ck}):")
            self.exit(i, "throw_new(thread, 'ClassCastException', "
                         f"'%s cannot be cast to %s' % (describe({v}), {cn}))")
            self.push(v)
            return True
        if op is Op.NEWARRAY:
            ln = self.pop()
            et = self.const(arg)
            self.name("throw_new", interp.throw_new)
            self.name("alloc_array", interp._heap.alloc_array)
            self.emit(f"if {ln} < 0:")
            self.exit(i, "throw_new(thread, 'NegativeArraySizeException', "
                         f"str({ln}))")
            self.assign(f"alloc_array({et}, {ln})")
            return True
        if op is Op.ARRLOAD:
            ix = self.pop()
            a = self.pop()
            self.name("npe", interp._npe)
            self.name("oob", interp._oob)
            self.name("jvm", interp._jvm)
            self.emit(f"if {a} is None:")
            self.exit(i, "npe(thread, 'arrload')")
            d = self.temp()
            self.emit(f"{d} = {a}.data")
            t = self.temp()
            self.emit(f"if 0 <= {ix} < len({d}):")
            self.emit(f"{t} = {d}[{ix}]", 1)
            self.emit("else:")
            self.exit(i, f"oob(thread, {ix}, len({d}))")
            self.push(t)
            self.heavy += 1
            return True
        if op is Op.ARRSTORE:
            v = self.pop()
            ix = self.pop()
            a = self.pop()
            self.name("npe", interp._npe)
            self.name("oob", interp._oob)
            self.name("conforms", conforms)
            self.name("store_miss", _store_miss)
            self.name("heap", interp._heap)
            self.name("jvm", interp._jvm)
            self.emit(f"if {a} is None:")
            self.exit(i, "npe(thread, 'arrstore')")
            d = self.temp()
            self.emit(f"{d} = {a}.data")
            self.emit(f"if not 0 <= {ix} < len({d}):")
            self.exit(i, f"oob(thread, {ix}, len({d}))")
            self.emit(f"if not conforms({v}, {a}.elem_type):")
            self.emit(f"frame.pc = {pc}", 1)
            self.emit(f"store_miss({v}, {a})", 1)
            self.emit(f"{d}[{ix}] = {v}")
            self.emit(f"{a}.mut_era = heap.era")
            self.heavy += 1
            return True
        if op is Op.ARRAYLENGTH:
            a = self.pop()
            self.name("npe", interp._npe)
            self.emit(f"if {a} is None:")
            self.exit(i, "npe(thread, 'arraylength')")
            self.assign(f"len({a}.data)")
            return True
        return False    # unknown plain op: leave the run interpreted

    # ---- fused terminating branch ------------------------------------
    def fuse(self, np: int, branch_pc: int, op, operands, arg) -> None:
        """Inline the simple branch at ``branch_pc`` after the ``np``
        plain ops, guarded by the boundary bail-out (module doc)."""
        interp = self.interp
        self.name("heap", interp._heap)
        self.name("BRANCH", BRANCH)
        restore: list = []
        cond = None
        if op is Op.GOTO:
            target = arg
        elif op in (Op.IF_NULL, Op.IF_NONNULL):
            a = self.pop()
            restore = [a]
            cond = (f"{a} is None" if op is Op.IF_NULL
                    else f"{a} is not None")
            target = arg
        elif op in (Op.IF_ACMP_EQ, Op.IF_ACMP_NE):
            b = self.pop()
            a = self.pop()
            restore = [a, b]
            cond = (f"{a} is {b}" if op is Op.IF_ACMP_EQ
                    else f"{a} is not {b}")
            target = arg
        elif op is Op.IF:
            a = self.pop()
            restore = [a]
            sym = _CMP_SRC.get(operands[0])
            cond = (f"{a} {sym} 0" if sym is not None
                    else f"{self.const(arg[0])}({a}, 0)")
            target = arg[1]
        else:   # IF_ICMP / IF_FCMP / IF_SCMP
            b = self.pop()
            a = self.pop()
            restore = [a, b]
            sym = _CMP_SRC.get(operands[0])
            cond = (f"{a} {sym} {b}" if sym is not None
                    else f"{self.const(arg[0])}({a}, {b})")
            target = arg[1]
        self.emit(f"frame.pc = {branch_pc}")
        if self.heavy:
            self.name("jvm", interp._jvm)
            self.emit(f"jvm.heavy_ops += {self.heavy}")
        if self.vs or restore:
            self.uses_stack = True
        for expr in self.vs:
            self.emit(f"S.append({expr})")
        self.vs = []
        self.emit("if bail or heap.gc_requested:")
        for expr in restore:
            self.emit(f"S.append({expr})", 1)
        self.emit(f"return ({np}, None)", 1)
        self.emit("thread.br_cnt += 1")
        if cond is None:
            self.emit(f"frame.pc = {target}")
        else:
            self.emit(f"frame.pc = {target} if {cond} else {branch_pc + 1}")
        self.emit(f"return ({np + 1}, BRANCH)")
        self.fused = True

    # ---- final rendering ---------------------------------------------
    def render(self, size: int) -> str:
        sig = ["thread", "frame", "bail"]
        sig.extend(f"{name}={name}" for name in self.binds)
        out = [f"def __block__({', '.join(sig)}):"]
        if self.uses_stack or self.vs:
            out.append("    S = frame.stack")
        if self.uses_locals:
            out.append("    LV = frame.locals")
        out.extend(self.lines)
        if not self.fused:
            out.append(f"    frame.pc = {self.entry + size}")
            if self.heavy:
                out.append(f"    jvm.heavy_ops += {self.heavy}")
            for expr in self.vs:
                out.append(f"    S.append({expr})")
            out.append(f"    return ({size}, None)")
        return "\n".join(out) + "\n"


def compile_block(interp, stream, entry: int) -> Optional[CompiledBlock]:
    """Compile the straight-line run starting at ``entry`` in
    ``stream`` (a :class:`~repro.runtime.interpreter._DecodedStream`).

    Returns None when the run is too short/long or contains an opcode
    the code generator does not model — the interpreting batch loop
    keeps handling those entries.
    """
    code = stream.code
    instrs = code.instructions
    end = entry
    n_instr = len(instrs)
    while end < n_instr:
        info = OP_INFO[instrs[end].op]
        if info.is_control_flow or info.is_monitor:
            break
        end += 1
    size = end - entry
    branch = instrs[end] if end < n_instr and instrs[end].op in _FUSABLE \
        else None
    if size > MAX_RUN or size < (1 if branch is not None else MIN_RUN):
        return None
    em = _Emitter(interp, entry)
    for i in range(size):
        if not em.op(i, instrs[entry + i].op, stream[entry + i][2]):
            return None
    if branch is not None:
        em.fuse(size, end, branch.op, branch.operands, stream[end][2])
    src = em.render(size)
    gbls = dict(em.binds)
    exec(compile(src, f"<block {code.uid}:{entry}>", "exec"), gbls)
    return CompiledBlock(
        entry, size + (1 if branch is not None else 0), gbls["__block__"]
    )

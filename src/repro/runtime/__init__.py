"""The mini-JVM runtime: heap, interpreter, threads, scheduler, GC."""

from repro.runtime.jvm import JVM, JVMConfig, RunResult, RunHooks, DirectNativePolicy
from repro.runtime.interpreter import Interpreter, StepResult
from repro.runtime.scheduler import Scheduler, ScheduleController, SliceEnd
from repro.runtime.sync import SyncManager, EnterResult
from repro.runtime.monitors import Monitor, AdmissionController, get_monitor
from repro.runtime.threads import JavaThread, ThreadState, ROOT_VID
from repro.runtime.values import JObject, JArray, wrap_int
from repro.runtime.heap import Heap
from repro.runtime.gc import Collector, GCStats
from repro.runtime.natives import (
    NativeRegistry, NativeSpec, NativeContext, NativeOutcome, JavaThrow,
    call_native,
)
from repro.runtime.stdlib import (
    install_stdlib, build_natives, default_natives, new_program_registry,
    text_of,
)

__all__ = [
    "JVM", "JVMConfig", "RunResult", "RunHooks", "DirectNativePolicy",
    "Interpreter", "StepResult",
    "Scheduler", "ScheduleController", "SliceEnd",
    "SyncManager", "EnterResult",
    "Monitor", "AdmissionController", "get_monitor",
    "JavaThread", "ThreadState", "ROOT_VID",
    "JObject", "JArray", "wrap_int", "Heap",
    "Collector", "GCStats",
    "NativeRegistry", "NativeSpec", "NativeContext", "NativeOutcome",
    "JavaThrow", "call_native",
    "install_stdlib", "build_natives", "default_natives",
    "new_program_registry", "text_of",
]

"""Monitor operations: enter, exit, wait, notify.

This module owns the state transitions between threads and monitors.
The interpreter calls in when executing ``monitorenter``/``monitorexit``
bytecodes, ``synchronized`` method prologues/epilogues, and the
``wait``/``notify`` intrinsics.

Replication hooks
-----------------
Every *non-recursive* acquisition consults the pluggable
:class:`~repro.runtime.monitors.AdmissionController`:

* ``may_acquire`` can veto an otherwise-possible acquisition, parking
  the thread — this is how the backup enforces the primary's lock
  acquisition order during recovery (paper §4.2);
* ``on_acquired``/``on_released`` observe completed transitions — this
  is where the primary creates lock acquisition records.

Counters updated here (and only here) feed the replication records:
``thread.t_asn`` (locks acquired by the thread), ``monitor.l_asn``
(acquisitions of the lock), and ``thread.mon_cnt`` (all monitor events,
recursive included, matching the paper's native-method progress rule).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Optional

from repro.runtime.monitors import AdmissionController, Monitor, get_monitor
from repro.runtime.threads import JavaThread, ThreadState

if TYPE_CHECKING:
    from repro.runtime.scheduler import Scheduler


class EnterResult(enum.Enum):
    ACQUIRED = "acquired"
    BLOCKED = "blocked"    # monitor held by another thread
    PARKED = "parked"      # vetoed by the admission controller


class SyncManager:
    """Coordinates threads, monitors, and the admission controller."""

    def __init__(self, scheduler: "Scheduler") -> None:
        self._scheduler = scheduler
        #: Set by the JVM after construction; monitor state lives on
        #: heap objects, so monitor transitions must stamp the object's
        #: mutation era for delta checkpoints.
        self.heap = None
        self.admission: AdmissionController = AdmissionController()
        #: Threads parked by the admission controller, re-evaluated
        #: after every monitor event (acquire/release/log progress).
        self._parked: List[JavaThread] = []
        #: When True, ``notify`` wakes every waiter (the lock-sync
        #: backup uses this; re-acquisition order is then enforced by
        #: the admission controller, and application code relies on the
        #: standard guarded-wait idiom for spurious wakeups).
        self.notify_wakes_all = False
        #: Monotonic count of completed (non-recursive) acquisitions
        #: across all monitors; exported to metrics.
        self.total_acquisitions = 0
        #: Distinct monitors ever acquired ("objects locked" in Table 2).
        self.monitors_created = 0
        #: Largest l_asn observed on any single monitor (Table 2 row).
        self.largest_l_asn = 0

    def _touch(self, monitor: Monitor) -> None:
        """Mark the monitor's heap object dirty in the current era."""
        heap = self.heap
        if heap is not None and monitor.obj is not None:
            monitor.obj.mut_era = heap.era

    # ------------------------------------------------------------------
    # monitorenter
    # ------------------------------------------------------------------
    def enter(self, thread: JavaThread, obj) -> EnterResult:
        """Attempt a monitor acquisition for ``thread`` on ``obj``.

        On BLOCKED/PARKED outcomes the caller must leave the thread's pc
        untouched so the instruction retries when the thread resumes.
        """
        if thread.forbid_sync:
            from repro.runtime.gc import check_finalizer_restriction

            check_finalizer_restriction(thread.name, "acquire a monitor")
        monitor = get_monitor(obj)
        if monitor.owner is thread:
            monitor.recursion += 1
            thread.mon_cnt += 1
            self._touch(monitor)
            return EnterResult.ACQUIRED
        if monitor.owner is not None:
            self._block(thread, monitor)
            return EnterResult.BLOCKED
        if not self.admission.may_acquire(thread, monitor):
            self._park(thread, monitor)
            return EnterResult.PARKED
        self._complete_acquisition(thread, monitor, recursion=1)
        return EnterResult.ACQUIRED

    def _complete_acquisition(
        self, thread: JavaThread, monitor: Monitor, recursion: int
    ) -> None:
        monitor.owner = thread
        monitor.recursion = recursion
        self._touch(monitor)
        if monitor.l_asn == 0:
            self.monitors_created += 1
        monitor.l_asn += 1
        self.largest_l_asn = max(self.largest_l_asn, monitor.l_asn)
        thread.t_asn += 1
        thread.mon_cnt += 1
        thread.blocked_on = None
        self.total_acquisitions += 1
        self.admission.on_acquired(thread, monitor)
        self.reevaluate_parked()

    def _block(self, thread: JavaThread, monitor: Monitor) -> None:
        if thread not in monitor.entry_queue:
            monitor.entry_queue.append(thread)
            self._touch(monitor)
        thread.state = ThreadState.BLOCKED
        thread.blocked_on = monitor

    def _park(self, thread: JavaThread, monitor: Monitor) -> None:
        if thread not in self._parked:
            self._parked.append(thread)
        thread.state = ThreadState.PARKED
        thread.blocked_on = monitor

    # ------------------------------------------------------------------
    # monitorexit
    # ------------------------------------------------------------------
    def exit(self, thread: JavaThread, obj) -> bool:
        """Release one recursion level; False if ``thread`` is not the owner."""
        monitor = obj.monitor
        if monitor is None or monitor.owner is not thread:
            return False
        thread.mon_cnt += 1
        monitor.recursion -= 1
        self._touch(monitor)
        if monitor.recursion == 0:
            monitor.owner = None
            self.admission.on_released(thread, monitor)
            self._wake_entry_queue(monitor)
            self.reevaluate_parked()
        return True

    def _wake_entry_queue(self, monitor: Monitor) -> None:
        """Make every contender runnable; they retry their acquisition
        when scheduled (FIFO runnable queue keeps this deterministic)."""
        if monitor.entry_queue:
            self._touch(monitor)
        while monitor.entry_queue:
            contender = monitor.entry_queue.popleft()
            if contender.state is ThreadState.BLOCKED:
                self._scheduler.make_runnable(contender)

    # ------------------------------------------------------------------
    # wait / notify
    # ------------------------------------------------------------------
    def wait(self, thread: JavaThread, obj, timeout_ms: Optional[int]) -> bool:
        """Begin an ``Object.wait``; False if thread doesn't own the monitor."""
        monitor = obj.monitor
        if monitor is None or monitor.owner is not thread:
            return False
        thread.saved_recursion = monitor.recursion
        thread.mon_cnt += 1  # the release event
        monitor.recursion = 0
        monitor.owner = None
        monitor.wait_set.append(thread)
        self._touch(monitor)
        thread.blocked_on = monitor
        if timeout_ms is not None and timeout_ms > 0:
            thread.state = ThreadState.TIMED_WAITING
            thread.wakeup_time = self._scheduler.now() + timeout_ms
        else:
            thread.state = ThreadState.WAITING
            thread.wakeup_time = None
        self.admission.on_released(thread, monitor)
        self._wake_entry_queue(monitor)
        self.reevaluate_parked()
        return True

    def reenter_after_wait(self, thread: JavaThread, obj) -> EnterResult:
        """Re-acquire the monitor after notify/timeout (counts as a fresh
        acquisition — the paper logs an l_asn for it)."""
        monitor = get_monitor(obj)
        if monitor.owner is not None:
            self._block(thread, monitor)
            return EnterResult.BLOCKED
        if not self.admission.may_acquire(thread, monitor):
            self._park(thread, monitor)
            return EnterResult.PARKED
        recursion = max(thread.saved_recursion, 1)
        thread.saved_recursion = 0
        thread.reacquiring = False
        self._complete_acquisition(thread, monitor, recursion=recursion)
        return EnterResult.ACQUIRED

    def notify(self, thread: JavaThread, obj, *, all_waiters: bool) -> bool:
        """Wake waiter(s); False if thread doesn't own the monitor."""
        monitor = obj.monitor
        if monitor is None or monitor.owner is not thread:
            return False
        count = len(monitor.wait_set)
        if count == 0:
            return True
        if not all_waiters and not self.notify_wakes_all:
            count = 1
        for _ in range(count):
            waiter = monitor.wait_set.popleft()
            self._resume_waiter(waiter)
        self._touch(monitor)
        return True

    def timeout_waiter(self, thread: JavaThread) -> None:
        """A TIMED_WAITING thread's deadline passed: leave the wait set
        and retry acquisition (or simply resume if it was sleeping)."""
        monitor = thread.blocked_on
        if monitor is not None and thread in monitor.wait_set:
            monitor.wait_set.remove(thread)
            self._touch(monitor)
            self._resume_waiter(thread)
        else:
            # plain Thread.sleep
            thread.wakeup_time = None
            self._scheduler.make_runnable(thread)

    def _resume_waiter(self, waiter: JavaThread) -> None:
        waiter.reacquiring = True
        waiter.wakeup_time = None
        self._scheduler.make_runnable(waiter)

    # ------------------------------------------------------------------
    # Parked-thread management
    # ------------------------------------------------------------------
    def reevaluate_parked(self) -> None:
        """Give every parked thread another chance: conditions may have
        changed (a record was consumed, a monitor released...).  Parked
        threads simply become runnable and retry their acquisition,
        re-parking if still vetoed — simple and deterministic."""
        if not self._parked:
            return
        parked, self._parked = self._parked, []
        for thread in parked:
            if thread.state is ThreadState.PARKED:
                self._scheduler.make_runnable(thread)

    @property
    def parked_threads(self) -> List[JavaThread]:
        return list(self._parked)

"""The native method interface (the paper's JNI analogue).

Native methods execute outside the state machine; they are the JVM's
only non-deterministic commands and its only path to the environment.
Following the paper:

* every native method is *annotated* (Section 3.4's mechanism): whether
  it is deterministic, whether it produces output, whether that output
  is idempotent or testable (R5), and which side-effect handler manages
  its volatile state (R6);
* the registry stores the signatures of non-deterministic methods in a
  hash table (Section 4.1) — :meth:`NativeRegistry.nondeterministic_signatures`
  is exactly that table, shipped identically to primary and backup;
* restriction R2/R3 is *enforced*, not assumed: a native registered as
  deterministic that tries to read an environment input (clock, entropy,
  file data) trips :class:`~repro.errors.NativeError` at the capability
  object, because environment access flows through :class:`NativeContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import NativeError


class JavaThrow(Exception):
    """Raised by native implementations to throw a Java exception."""

    def __init__(self, class_name: str, message: str = "") -> None:
        super().__init__(f"{class_name}: {message}")
        self.class_name = class_name
        self.message = message


@dataclass(frozen=True)
class NativeSpec:
    """One registered native method and its annotations.

    Attributes:
        signature: ``Class.method/nargs`` — the hash-table key.
        impl: ``impl(ctx, receiver, args) -> value`` (may raise JavaThrow).
        deterministic: write-set values and output are a function of the
            read set only (R2/R3 hold trivially).
        is_output: produces output to the environment.
        idempotent: output may be safely re-executed (R5 case 1).
        testable: the environment can be queried to learn whether the
            output completed (R5 case 2).
        log_arrays: arguments that are arrays are modified by the call
            (out-parameters) and must be logged with the result so the
            backup can adopt them.
        se_handler: name of the side-effect handler managing this
            method's volatile environment state (R6), if any.
    """

    signature: str
    impl: Callable[["NativeContext", Any, List[Any]], Any]
    deterministic: bool = True
    is_output: bool = False
    idempotent: bool = False
    testable: bool = False
    log_arrays: bool = False
    se_handler: Optional[str] = None

    def __post_init__(self) -> None:
        if self.is_output and not (self.idempotent or self.testable):
            raise NativeError(
                f"R5 violated: output native {self.signature} is neither "
                f"idempotent nor testable"
            )


class NativeRegistry:
    """All native methods known to one JVM program."""

    def __init__(self) -> None:
        self._specs: Dict[str, NativeSpec] = {}

    def register(self, spec: NativeSpec) -> NativeSpec:
        if spec.signature in self._specs:
            raise NativeError(f"native {spec.signature} registered twice")
        self._specs[spec.signature] = spec
        return spec

    def lookup(self, signature: str) -> NativeSpec:
        spec = self._specs.get(signature)
        if spec is None:
            raise NativeError(f"unsatisfied native link: {signature}")
        return spec

    def has(self, signature: str) -> bool:
        return signature in self._specs

    def nondeterministic_signatures(self) -> List[str]:
        """The paper's hash table of non-deterministic native methods —
        identical at primary and backup because both build it from the
        same registry."""
        return sorted(
            s for s, spec in self._specs.items() if not spec.deterministic
        )

    def output_signatures(self) -> List[str]:
        return sorted(s for s, spec in self._specs.items() if spec.is_output)

    def all_specs(self) -> List[NativeSpec]:
        return [self._specs[s] for s in sorted(self._specs)]


class NativeContext:
    """Capability object handed to native implementations.

    Mediates *all* environment access so R2/R3 are mechanically
    enforced: deterministic natives get :class:`NativeError` if they
    touch a non-deterministic input, and non-output natives get it if
    they try to mutate the environment.
    """

    def __init__(self, jvm, thread, spec: NativeSpec) -> None:
        self.jvm = jvm
        self.thread = thread
        self.spec = spec

    # -- JVM services (always allowed) ----------------------------------
    def alloc_array(self, elem_type: str, length: int):
        return self.jvm.heap.alloc_array(elem_type, length)

    def alloc_object(self, class_name: str):
        return self.jvm.heap.alloc_object(class_name)

    # -- Non-deterministic inputs (R2/R3 gate) --------------------------
    def _require_nondeterministic(self, what: str) -> None:
        self._check_detached(f"read {what}")
        if self.spec.deterministic:
            raise NativeError(
                f"R2/R3 violated: native {self.spec.signature} is annotated "
                f"deterministic but read {what}"
            )

    def _check_detached(self, action: str) -> None:
        if getattr(self.thread, "forbid_env", False):
            from repro.runtime.gc import check_finalizer_restriction

            check_finalizer_restriction(self.thread.name, action)

    def clock_ms(self) -> int:
        self._require_nondeterministic("the wall clock")
        return self.jvm.session.clock_ms()

    def random_int(self, bound: int) -> int:
        self._require_nondeterministic("environment entropy")
        return self.jvm.session.random_int(bound)

    def random_float(self) -> float:
        self._require_nondeterministic("environment entropy")
        return self.jvm.session.random_float()

    def file_input(self):
        """The session, for *reading* file data (a non-det input)."""
        self._require_nondeterministic("file data")
        return self.jvm.session

    def request_input(self):
        """The session, for consuming a request port (a non-det input:
        which request arrives next depends on arrival order)."""
        self._require_nondeterministic("the request port")
        return self.jvm.session

    # -- Output to the environment (R5 gate) ----------------------------
    def output_target(self):
        """The session, for mutating the environment."""
        self._check_detached("produce output to the environment")
        if not self.spec.is_output:
            raise NativeError(
                f"R5 violated: native {self.spec.signature} is not annotated "
                f"as an output command but mutated the environment"
            )
        return self.jvm.session


@dataclass
class NativeOutcome:
    """Result of one native invocation, as shipped to the backup."""

    value: Any = None
    exception: Optional[Tuple[str, str]] = None  # (class_name, message)
    #: Post-call contents of array out-parameters, index -> list.
    array_results: Dict[int, list] = field(default_factory=dict)


def call_native(spec: NativeSpec, ctx: NativeContext, receiver,
                args: List[Any]) -> NativeOutcome:
    """Invoke the implementation, capturing value/exception/out-params."""
    try:
        value = spec.impl(ctx, receiver, args)
        outcome = NativeOutcome(value=value)
    except JavaThrow as thrown:
        outcome = NativeOutcome(exception=(thrown.class_name, thrown.message))
    if spec.log_arrays:
        for i, arg in enumerate(args):
            if hasattr(arg, "data"):
                outcome.array_results[i] = list(arg.data)
    return outcome

"""Runtime value model.

The operand stack and local variables hold exactly these Python values:

* ``int`` — Java ``int``/``boolean`` (booleans are 0/1), kept in 32-bit
  two's-complement range by the arithmetic helpers below;
* ``float`` — Java ``double`` (we collapse float/double, as the paper's
  benchmarks never depend on the distinction);
* ``str`` — Java ``String``, modelled as an immutable *value* rather
  than a heap object (interning makes this observationally close);
* ``None`` — Java ``null``;
* :class:`JObject` / :class:`JArray` — references into the heap.

Keeping values this small makes interpreter dispatch cheap and state
digests canonical.
"""

from __future__ import annotations

from typing import Any, Dict, List

_INT_MASK = 0xFFFFFFFF
_INT_SIGN = 0x80000000


def wrap_int(value: int) -> int:
    """Wrap a Python int into Java 32-bit two's-complement range."""
    value &= _INT_MASK
    return value - (_INT_MASK + 1) if value & _INT_SIGN else value


def java_div(a: int, b: int) -> int:
    """Java integer division (truncates toward zero)."""
    q = abs(a) // abs(b)
    return wrap_int(-q if (a < 0) != (b < 0) else q)


def java_rem(a: int, b: int) -> int:
    """Java integer remainder (sign of the dividend)."""
    return wrap_int(a - java_div(a, b) * b)


def java_shr(a: int, s: int) -> int:
    """Arithmetic shift right with Java's shift-count masking."""
    return wrap_int(a >> (s & 31))


def java_ushr(a: int, s: int) -> int:
    """Logical shift right."""
    return wrap_int((a & _INT_MASK) >> (s & 31))


def java_shl(a: int, s: int) -> int:
    return wrap_int(a << (s & 31))


class JObject:
    """A heap-allocated object instance.

    Attributes:
        class_name: name of the object's dynamic class.
        fields: instance field values keyed by name.
        oid: allocation sequence number.  Internal to one JVM — it is
            never shipped between replicas — but because correct replay
            reproduces the primary's allocation order, matching oids
            across replicas is a *consequence* of correct replication,
            which the integration tests exploit via state digests.
    """

    __slots__ = ("class_name", "fields", "oid", "monitor", "gc_mark",
                 "mut_era")

    def __init__(self, class_name: str, fields: Dict[str, Any], oid: int) -> None:
        self.class_name = class_name
        self.fields = fields
        self.oid = oid
        self.monitor = None  # lazily created Monitor
        self.gc_mark = False
        #: Heap era of the last mutation (allocation counts).  Never
        #: digested or shipped — delta checkpoints compare it against
        #: Heap.era to pick dirty objects.
        self.mut_era = 0

    def __repr__(self) -> str:
        return f"<{self.class_name}#{self.oid}>"


class JArray:
    """A heap-allocated array.

    Attributes:
        elem_type: one of ``int``, ``float``, ``str``, ``ref``.
        data: the backing list.
    """

    __slots__ = ("elem_type", "data", "oid", "monitor", "gc_mark",
                 "mut_era")

    def __init__(self, elem_type: str, data: List[Any], oid: int) -> None:
        self.elem_type = elem_type
        self.data = data
        self.oid = oid
        self.monitor = None
        self.gc_mark = False
        self.mut_era = 0

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"<{self.elem_type}[{len(self.data)}]#{self.oid}>"


def is_reference(value: Any) -> bool:
    """Whether a runtime value is a (non-null) heap reference."""
    return isinstance(value, (JObject, JArray))


def type_token_of(value: Any) -> str:
    """The field-type token a runtime value conforms to."""
    if value is None or is_reference(value):
        return "ref"
    if isinstance(value, bool):
        return "int"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    raise TypeError(f"not a runtime value: {value!r}")


def conforms(value: Any, type_token: str) -> bool:
    """Dynamic type check used by field stores and array stores."""
    if type_token == "ref":
        return value is None or is_reference(value)
    if type_token == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if type_token == "float":
        return isinstance(value, float)
    if type_token == "str":
        return isinstance(value, str)
    return False


def describe(value: Any) -> str:
    """Human-readable one-line description for error messages."""
    if value is None:
        return "null"
    if isinstance(value, (JObject, JArray)):
        return repr(value)
    return f"{type_token_of(value)} {value!r}"

"""The console: an append-only, testable output device.

Appending to a terminal is not idempotent, so under restriction R5 the
console must be *testable*: the environment can be queried for how many
characters have been written so far.  The primary's side-effect handler
logs the post-write position with every write; during recovery the
backup compares the logged position with :meth:`Console.position` to
decide whether the uncertain final write actually happened — giving
exactly-once console output across failover.
"""

from __future__ import annotations

from typing import List


class Console:
    """Append-only transcript with a readable position."""

    def __init__(self) -> None:
        self._chunks: List[str] = []
        self._length = 0

    def write(self, text: str) -> int:
        """Append ``text``; returns the transcript length afterwards."""
        self._chunks.append(text)
        self._length += len(text)
        return self._length

    def position(self) -> int:
        """Total characters written so far (the 'test' query of R5)."""
        return self._length

    def transcript(self) -> str:
        return "".join(self._chunks)

    def lines(self) -> List[str]:
        return self.transcript().splitlines()

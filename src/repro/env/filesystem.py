"""A simulated file system: stable byte store + volatile handles.

File *contents* are stable state: they survive replica crashes (they
live on "disk").  File *handles* — the (path, offset, mode) triples —
are volatile: they belong to an :class:`~repro.env.environment.EnvSession`
and die with the process, which is exactly the state the paper's file
side-effect handler must rebuild during recovery.

Files hold text.  Operations are deliberately POSIX-flavoured so the
paper's examples map one-to-one: *seek to an absolute offset* is
idempotent; *relative* operations become testable because the current
offset/length can be read back.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ReproError


class JavaIOError(ReproError):
    """Raised by file primitives; surfaced to Java code as IOException."""


class FileHandle:
    """A volatile open-file handle."""

    __slots__ = ("fs", "path", "offset", "mode")

    def __init__(self, fs: "FileSystem", path: str, mode: str) -> None:
        self.fs = fs
        self.path = path
        self.offset = 0
        self.mode = mode

    # -- output (stable mutation) --------------------------------------
    def write(self, text: str) -> None:
        if self.mode not in ("w", "a", "r+"):
            raise JavaIOError(f"fd for {self.path!r} not writable")
        content = self.fs._files[self.path]
        if self.offset > len(content):
            content = content + "\0" * (self.offset - len(content))
        new = content[: self.offset] + text + content[self.offset + len(text):]
        self.fs._files[self.path] = new
        self.offset += len(text)

    # -- input (non-deterministic from the JVM's point of view) ---------
    def read_char(self) -> int:
        """Next character code, or -1 at end of file."""
        content = self.fs._files[self.path]
        if self.offset >= len(content):
            return -1
        ch = content[self.offset]
        self.offset += 1
        return ord(ch)

    def read_line(self) -> str:
        """Read up to and excluding the next newline; '' at EOF."""
        content = self.fs._files[self.path]
        if self.offset >= len(content):
            return ""
        end = content.find("\n", self.offset)
        if end == -1:
            line = content[self.offset:]
            self.offset = len(content)
        else:
            line = content[self.offset:end]
            self.offset = end + 1
        return line

    # -- positioning -----------------------------------------------------
    def seek(self, offset: int) -> None:
        if offset < 0:
            raise JavaIOError("negative seek offset")
        self.offset = offset

    def tell(self) -> int:
        return self.offset


class FileSystem:
    """The stable byte store ("the disk")."""

    def __init__(self) -> None:
        self._files: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def open(self, path: str, mode: str) -> FileHandle:
        if mode == "r":
            if path not in self._files:
                raise JavaIOError(f"no such file: {path!r}")
            return FileHandle(self, path, "r")
        if mode == "w":
            self._files[path] = ""
            return FileHandle(self, path, "w")
        if mode == "a":
            self._files.setdefault(path, "")
            handle = FileHandle(self, path, "a")
            handle.offset = len(self._files[path])
            return handle
        if mode == "r+":
            self._files.setdefault(path, "")
            return FileHandle(self, path, "r+")
        raise JavaIOError(f"bad open mode {mode!r}")

    def exists(self, path: str) -> bool:
        return path in self._files

    def size(self, path: str) -> int:
        if path not in self._files:
            raise JavaIOError(f"no such file: {path!r}")
        return len(self._files[path])

    def contents(self, path: str) -> str:
        if path not in self._files:
            raise JavaIOError(f"no such file: {path!r}")
        return self._files[path]

    def put(self, path: str, contents: str) -> None:
        """Pre-populate a file (harness/tests: benchmark input data)."""
        self._files[path] = contents

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise JavaIOError(f"no such file: {path!r}")
        del self._files[path]

    def paths(self) -> List[str]:
        return sorted(self._files)

"""Request ports and the response log — the serving environment.

A fleet turns the environment into a *service*: clients deposit
requests into named :class:`RequestPort`\\ s (one per keyspace shard)
and read responses from a single stable :class:`ResponseLog`.  The
serving JVM consumes its port through the ``Server.recv`` native and
answers through ``Server.reply``.

Determinism and exactly-once rest on how the two halves are annotated:

* ``Server.recv`` is a **non-deterministic input** (which request
  arrives next depends on wall-clock arrival order, not on replica
  state).  The primary's live call pops the port and the popped value
  is logged as a :class:`~repro.replication.records.NativeResultRecord`;
  a recovering backup *adopts* the logged value without touching the
  port, so replay is deterministic and nothing is consumed twice.
  Blocking is the :meth:`ingest_starved` gate below: when the port is
  empty the interpreter parks the thread at a safe point (a STARVED
  slice) instead of invoking the native, and
  ``run_to_completion(pause_on_starvation=True)`` hands control back
  to the router — the serving pump.

* ``Server.reply`` is a **testable output** (R5).  The response log is
  stable state — like the console transcript, a committed response
  survives the crash of the replica that wrote it — so the backup's
  uncertain-output test is a membership query: the reply completed iff
  its request id is in the log.  :attr:`ResponseLog.duplicates` counts
  double-commits and is the exactly-once oracle for tests.

* Requests a dead primary consumed whose recv record never reached the
  backup are *lost in flight*.  :attr:`RequestPort.consumed` keeps the
  full consumption order so failover reconciliation (the supervisor)
  can slice it against the surviving log and :meth:`RequestPort.requeue`
  exactly the lost suffix, preserving order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

#: The request-ingest native gated by :func:`ingest_starved`.
INGEST_SIGNATURE = "Server.recv/1"
REPLY_SIGNATURE = "Server.reply/2"


def request_id(request: str) -> str:
    """The id of a request string — its first whitespace token."""
    parts = request.split(None, 1)
    return parts[0] if parts else ""


class RequestPort:
    """One shard's named request queue (environment state)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.pending: Deque[str] = deque()
        #: Requests handed to the serving JVM, in consumption order.
        #: Never truncated: failover reconciliation slices it against
        #: the surviving log to find requests lost with the primary.
        self.consumed: List[str] = []

    def push(self, request: str) -> None:
        """Router side: enqueue one request."""
        self.pending.append(request)

    def has_pending(self) -> bool:
        return bool(self.pending)

    def take(self) -> str:
        """Serving side (the live ``Server.recv``): pop the next
        request and remember it as consumed."""
        if not self.pending:
            return ""
        request = self.pending.popleft()
        self.consumed.append(request)
        return request

    def requeue(self, requests: List[str]) -> None:
        """Put lost in-flight requests back at the *front* of the
        queue, preserving their original order (failover
        reconciliation)."""
        for request in reversed(requests):
            self.pending.appendleft(request)

    def __len__(self) -> int:
        return len(self.pending)


class ResponseLog:
    """Stable, exactly-once response store shared by the whole fleet."""

    def __init__(self) -> None:
        self._responses: Dict[str, str] = {}
        self._order: List[str] = []
        #: Commits for an id already answered.  Must stay 0 — the
        #: exactly-once oracle asserted by the crash-under-load tests.
        self.duplicates = 0

    def commit(self, req_id: str, text: str) -> int:
        """Commit one response; returns the log position *after* the
        commit.  A second commit for the same id is counted, not
        stored — the first answer stands."""
        if req_id in self._responses:
            self.duplicates += 1
            return len(self._order)
        self._responses[req_id] = text
        self._order.append(req_id)
        return len(self._order)

    def has(self, req_id: str) -> bool:
        return req_id in self._responses

    def get(self, req_id: str) -> Optional[str]:
        return self._responses.get(req_id)

    def count(self) -> int:
        return len(self._order)

    def items(self) -> List[Tuple[str, str]]:
        """Committed ``(request_id, response)`` pairs in commit order."""
        return [(rid, self._responses[rid]) for rid in self._order]


def ingest_starved(jvm, method, thread) -> bool:
    """True when ``thread`` is about to invoke ``Server.recv`` and its
    port has nothing pending.

    Called from the native policies' ``would_starve`` hook, which the
    interpreter consults *before* invoking a native: the thread parks
    at a safe point (a STARVED slice) with the port-name argument
    still on the operand stack, so the slice re-executes cleanly once
    the router delivers the next request.
    """
    if method.signature != INGEST_SIGNATURE:
        return False
    frame = thread.frames[-1]
    if not frame.stack:
        return False
    port_name = frame.stack[-1]
    if not isinstance(port_name, str):
        return False
    return not jvm.session.env.port(port_name).has_pending()

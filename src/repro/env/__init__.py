"""Simulated environment: file system, console, wall clock, network."""

from repro.env.environment import Environment, EnvSession, SessionDestroyed
from repro.env.filesystem import FileSystem, FileHandle, JavaIOError
from repro.env.console import Console
from repro.env.channel import Channel

__all__ = [
    "Environment", "EnvSession", "SessionDestroyed",
    "FileSystem", "FileHandle", "JavaIOError",
    "Console", "Channel",
]

"""The environment: everything outside the replicated state machine.

The paper's correctness story hinges on a precise split between

* **stable state** — survives the failure of a replica's host (file
  contents on disk, the console transcript an operator already saw);
* **volatile state** — dies with the host (open file descriptors,
  current offsets, OS socket state).

:class:`Environment` models the world itself (shared by all replicas —
it is not replicated).  Each process that talks to the world opens an
:class:`EnvSession`; the session owns the volatile state and a
process-local wall clock and entropy source (the paper's
non-deterministic native inputs).  Crashing the primary destroys its
session; the backup attaches a fresh session and must rebuild volatile
state through side-effect handlers.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.env.filesystem import FileSystem, FileHandle
from repro.env.console import Console
from repro.env.port import RequestPort, ResponseLog, request_id


class SessionDestroyed(ReproError):
    """An operation was attempted on a crashed process's session."""


class Environment:
    """The shared outside world."""

    def __init__(self, seed: int = 0) -> None:
        self.fs = FileSystem()
        self.console = Console()
        #: Named request queues (serving: one per keyspace shard).
        self.ports: Dict[str, RequestPort] = {}
        #: Stable exactly-once response store (serving).
        self.responses = ResponseLog()
        self._seed = seed
        self._sessions: List["EnvSession"] = []

    def port(self, name: str) -> RequestPort:
        """The named request port, created on first use."""
        port = self.ports.get(name)
        if port is None:
            port = self.ports[name] = RequestPort(name)
        return port

    def attach(self, process_name: str, *, clock_offset_ms: int = 0,
               entropy_seed: Optional[int] = None) -> "EnvSession":
        """Open a volatile session for one process (replica)."""
        session = EnvSession(
            self,
            process_name,
            clock_offset_ms=clock_offset_ms,
            entropy_seed=(
                entropy_seed
                if entropy_seed is not None
                else self._seed ^ hash(process_name) & 0xFFFF
            ),
        )
        self._sessions.append(session)
        return session

    def stable_digest(self) -> str:
        """Canonical hash of all stable state — the oracle for the
        paper's 'indistinguishable from a single correct machine'
        requirement in exactly-once tests."""
        h = hashlib.sha256()
        for path in sorted(self.fs.paths()):
            h.update(path.encode())
            h.update(b"\0")
            h.update(self.fs.contents(path).encode())
            h.update(b"\0")
        h.update(self.console.transcript().encode())
        # The response log is stable state; folded in only when serving
        # so non-serving digests match historical values byte-for-byte.
        if self.responses.count():
            for rid, text in self.responses.items():
                h.update(b"resp\0")
                h.update(rid.encode())
                h.update(b"\0")
                h.update(text.encode())
                h.update(b"\0")
        return h.hexdigest()

    def snapshot_stable(self) -> Dict[str, str]:
        """Copy of stable state for diffing in tests."""
        state = {f"file:{p}": self.fs.contents(p) for p in self.fs.paths()}
        state["console"] = self.console.transcript()
        for rid, text in self.responses.items():
            state[f"response:{rid}"] = text
        return state


class EnvSession:
    """Per-process volatile state plus non-deterministic inputs."""

    def __init__(self, env: Environment, process_name: str, *,
                 clock_offset_ms: int, entropy_seed: int) -> None:
        self.env = env
        self.process_name = process_name
        self.destroyed = False
        self._handles: Dict[int, FileHandle] = {}
        self._next_fd = 3  # 0-2 reserved, as on POSIX
        # Wall clock: a process-local base plus jittered monotone steps
        # per read.  Reads at different replicas return different values
        # — the canonical non-deterministic native input.
        self._clock_ms = 1_000_000_000 + clock_offset_ms
        self._clock_rng = random.Random(entropy_seed ^ 0xC10C)
        self._entropy = random.Random(entropy_seed)

    # ------------------------------------------------------------------
    def _check_alive(self) -> None:
        if self.destroyed:
            raise SessionDestroyed(
                f"process {self.process_name!r} has crashed; its volatile "
                f"environment state is gone"
            )

    def destroy(self) -> None:
        """Fail-stop: all volatile state vanishes."""
        self.destroyed = True
        self._handles.clear()

    # ------------------------------------------------------------------
    # Non-deterministic inputs (paper §3.2)
    # ------------------------------------------------------------------
    def clock_ms(self) -> int:
        """Read the wall clock (non-deterministic across replicas)."""
        self._check_alive()
        self._clock_ms += self._clock_rng.randrange(1, 5)
        return self._clock_ms

    def random_int(self, bound: int) -> int:
        """Environment entropy (e.g. /dev/urandom behind a native)."""
        self._check_alive()
        if bound <= 0:
            raise ReproError("random_int bound must be positive")
        return self._entropy.randrange(bound)

    def random_float(self) -> float:
        self._check_alive()
        return self._entropy.random()

    # ------------------------------------------------------------------
    # File descriptors (volatile) over the shared file system (stable)
    # ------------------------------------------------------------------
    def open(self, path: str, mode: str) -> int:
        self._check_alive()
        handle = self.env.fs.open(path, mode)
        fd = self._next_fd
        self._next_fd += 1
        self._handles[fd] = handle
        return fd

    def handle(self, fd: int) -> FileHandle:
        self._check_alive()
        h = self._handles.get(fd)
        if h is None:
            from repro.env.filesystem import JavaIOError

            raise JavaIOError(f"bad file descriptor {fd}")
        return h

    def close(self, fd: int) -> None:
        self._check_alive()
        self._handles.pop(fd, None)

    def open_fds(self) -> Dict[int, FileHandle]:
        """Volatile fd table (read by the file side-effect handler)."""
        self._check_alive()
        return dict(self._handles)

    def restore_fd(self, fd: int, path: str, offset: int, mode: str) -> None:
        """Reinstall a descriptor during recovery (side-effect handler
        ``restore``): reopen without truncation and seek."""
        self._check_alive()
        handle = self.env.fs.open(path, "r+" if mode in ("w", "a", "r+") else "r")
        handle.offset = offset
        handle.mode = mode
        self._handles[fd] = handle
        self._next_fd = max(self._next_fd, fd + 1)

    # ------------------------------------------------------------------
    # Serving: request ingest (non-det input) and responses (output)
    # ------------------------------------------------------------------
    def recv_request(self, port_name: str) -> str:
        """Consume the next pending request from a port — the live
        ``Server.recv``.  The popped value is what gets logged, so a
        recovering backup adopts it instead of re-consuming."""
        self._check_alive()
        return self.env.port(port_name).take()

    def respond(self, request: str, text: str) -> int:
        """Commit one response to the stable response log — the
        ``Server.reply`` output; returns the log position after."""
        self._check_alive()
        return self.env.responses.commit(request_id(request), text)

    # ------------------------------------------------------------------
    # Console (stable transcript, volatile nothing)
    # ------------------------------------------------------------------
    def console_write(self, text: str) -> int:
        """Write to the console; returns the transcript position *after*
        the write (the testable-output handle)."""
        self._check_alive()
        return self.env.console.write(text)

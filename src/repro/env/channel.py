"""The logging channel between primary and backup.

Models the paper's setup: the primary buffers small log records and
sends them to the backup either periodically (when the buffer fills) or
on an output commit, in which case it waits for an acknowledgment
(pessimistic logging).  The backup keeps its log in volatile memory.

The channel owns *batching policy and wire counters*; how messages
actually move is delegated to a pluggable
:class:`~repro.replication.transport.Transport`.  With the default
:class:`~repro.replication.transport.InMemoryTransport` the failure
semantics match a reliable link under fail-stop: records still sitting
in the primary's buffer when it crashes are *lost*; records that were
flushed are delivered.  Faulty and socket transports refine this (see
the transport module's docstring); in every case the output-commit
protocol stays safe because output happens only after the covering
flush is *acknowledged by the transport*.

The channel also keeps the wire-level counters (messages, records,
bytes) that Table 2 and the communication-overhead components of
Figures 3 and 4 are computed from.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class Channel:
    """One primary→backup link: batching in front of a transport."""

    def __init__(self, batch_records: int = 64, transport=None) -> None:
        if transport is None:
            from repro.replication.transport import InMemoryTransport
            transport = InMemoryTransport()
        #: The message-moving layer (in-memory, fault-injected, socket).
        self.transport = transport
        #: Records buffered at the primary, not yet flushed.  With no
        #: ``encoder`` these are wire-ready ``bytes``; with one, they
        #: are unencoded record objects serialized in one batch pass at
        #: flush time (the replication hot path buffers objects so the
        #: per-record log call does no wire work).
        self._buffer: List = []
        #: Optional batch serializer, ``records -> list[bytes]``,
        #: applied to the whole buffer at every flush.  Crash semantics
        #: are unchanged: an unflushed buffer dies with the primary
        #: whether it holds bytes or objects.
        self.encoder: Optional[Callable[[List], List[bytes]]] = None
        #: Flush automatically once this many records are buffered
        #: (the paper's "sends them periodically or on an output commit").
        self.batch_records = batch_records
        self.closed = False
        #: When > 0, auto-flush is deferred: records buffered inside an
        #: atomic section are delivered together or lost together (a
        #: native's completion marker and its side-effect record must
        #: never be split by a flush boundary — a crash between them
        #: would tell the backup the output happened while losing the
        #: state needed to take over after it).
        self._atomic_depth = 0

        # Wire counters (messages *accepted by the transport*).
        self.messages_sent = 0
        self.records_sent = 0
        self.bytes_sent = 0
        self.acks_received = 0

        #: Optional observer invoked with (n_records, n_bytes) at every
        #: flush — the metrics layer charges communication cost here.
        self.on_flush: Optional[Callable[[int, int], None]] = None
        #: Optional hook invoked at the *start* of every flush, before
        #: the buffer is read — lets record coalescers (the interval
        #: strategy) close and append any open run first.
        self.before_flush: Optional[Callable[[], None]] = None
        #: Optional observer invoked at every synchronous ack wait.
        self.on_ack_wait: Optional[Callable[[], None]] = None

    @property
    def delivered(self) -> List[bytes]:
        """Records the backup's log receiver has appended, in order."""
        return self.transport.delivered

    # ------------------------------------------------------------------
    def send_record(self, payload) -> None:
        """Buffer one log record (bytes, or an unencoded record object
        when an ``encoder`` is installed); auto-flush when the batch
        fills."""
        if self.closed:
            return
        self._buffer.append(payload)
        if len(self._buffer) >= self.batch_records \
                and self._atomic_depth == 0:
            self.flush()

    def begin_atomic(self) -> None:
        """Defer auto-flush until the matching :meth:`end_atomic`."""
        self._atomic_depth += 1

    def end_atomic(self, flush: bool = True) -> None:
        """Close an atomic section.  With ``flush=False`` (the crash
        unwind path) the deferred records stay buffered — and are thus
        lost with the primary — instead of being pushed out mid-death."""
        self._atomic_depth = max(0, self._atomic_depth - 1)
        if flush and self._atomic_depth == 0 \
                and len(self._buffer) >= self.batch_records:
            self.flush()

    def flush(self) -> None:
        """Transmit the buffer as one message."""
        if self.closed:
            return
        if self.before_flush is not None:
            self.before_flush()
        if not self._buffer:
            return
        batch = (self._buffer if self.encoder is None
                 else self.encoder(self._buffer))
        n_bytes = sum(len(r) for r in batch)
        self.messages_sent += 1
        self.records_sent += len(batch)
        self.bytes_sent += n_bytes
        if self.on_flush is not None:
            self.on_flush(len(batch), n_bytes)
        self.transport.send(batch)
        self._buffer.clear()

    def flush_and_wait_ack(self) -> float:
        """Output commit: flush everything and wait for the backup's
        acknowledgment (the pessimistic wait of Figures 3/4).  Returns
        the measured round-trip wait (0.0 on the in-memory transport).
        """
        if self.closed:
            return 0.0
        self.flush()
        rtt = self.transport.wait_ack()
        self.acks_received += 1
        if self.on_ack_wait is not None:
            self.on_ack_wait()
        return rtt

    def heartbeat(self) -> None:
        """Ship one transport-level I-am-alive message (never logged,
        never counted in the wire counters — the failure detector keys
        off these at the backup side)."""
        if self.closed:
            return
        self.transport.send_heartbeat()

    # ------------------------------------------------------------------
    def settle(self) -> None:
        """Graceful completion: flush and let the transport push until
        everything sent has been delivered (retransmitting if needed).
        Does not count as an output-commit ack wait."""
        self.flush()
        self.transport.settle()

    def crash_primary(self) -> None:
        """Fail-stop the sender: unflushed records are lost forever;
        whatever the transport already has in flight may still arrive."""
        self._buffer.clear()
        self.closed = True
        self.transport.crash_sender()

    def truncate_delivered(self, n_records: int) -> None:
        """Drop the first ``n_records`` delivered records — the log-
        truncation rule: once a checkpoint covering them is safely at
        the backup, replay starts from the snapshot and the prefix is
        dead weight on both sides."""
        self.transport.truncate(n_records)

    @property
    def pending_records(self) -> int:
        return len(self._buffer)

    def backup_log(self) -> List[bytes]:
        """The log as the backup sees it after the primary's failure."""
        self.transport.drain()
        return list(self.delivered)

"""Exception hierarchy for the repro package.

Two distinct families exist and must not be confused:

* :class:`ReproError` and subclasses — errors in *our* machinery (bad
  bytecode, compiler bugs, protocol violations).  These are Python
  exceptions that propagate to the embedding application.

* Java-level exceptions — exceptions *inside* the simulated JVM
  (``NullPointerException`` and friends).  Those are modelled as heap
  objects and threaded through the interpreter's exception tables; they
  only surface to Python as :class:`UncaughtJavaException` when no
  handler exists on the Java stack.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package itself."""


class BytecodeError(ReproError):
    """Malformed bytecode: bad operands, unknown opcode, broken jump target."""


class VerifyError(BytecodeError):
    """Bytecode failed static verification (stack underflow, bad merge...)."""


class ClassFormatError(ReproError):
    """A class definition is structurally invalid."""


class LinkageError(ReproError):
    """Resolution failure: unknown class, method, or field."""


class CompileError(ReproError):
    """MiniJava source failed to compile.

    Attributes:
        line: 1-based source line of the offending construct (0 if unknown).
        col: 1-based source column (0 if unknown).
    """

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        location = f" at {line}:{col}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.col = col


class NativeError(ReproError):
    """A native method was invoked incorrectly or violated its annotation."""


class RestrictionViolation(ReproError):
    """An application violated one of the paper's restrictions R0-R6."""

    def __init__(self, restriction: str, message: str) -> None:
        super().__init__(f"{restriction} violated: {message}")
        self.restriction = restriction


class UncaughtJavaException(ReproError):
    """A Java-level exception propagated off the top of a thread's stack.

    Attributes:
        class_name: the Java class name of the exception object.
        detail: the exception's message string (may be empty).
    """

    def __init__(self, class_name: str, detail: str = "") -> None:
        super().__init__(f"{class_name}: {detail}" if detail else class_name)
        self.class_name = class_name
        self.detail = detail


class DeadlockError(ReproError):
    """The scheduler found every live thread blocked."""


class ReplicationError(ReproError):
    """The replication protocol was violated or could not make progress."""


class RecoveryError(ReplicationError):
    """Backup replay diverged from the primary's logged execution."""


class DivergenceError(RecoveryError):
    """The backup's recomputed state digest does not match the
    primary's :class:`~repro.replication.digest.DigestRecord`.

    Raised at the *first* divergent digest epoch instead of letting the
    replay silently finish with wrong output.

    Attributes:
        epoch: the digest epoch (count of replicated scheduling events,
            or 0 for the final end-of-run digest) at which primary and
            backup first disagree.
        components: names of the mismatched digest components
            (``heap``, ``frames``, ``monitors``, ``sched``, ``env``).
    """

    def __init__(self, epoch: int, components, detail: str = "") -> None:
        names = ", ".join(components)
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"replica state diverged at digest epoch {epoch}: "
            f"mismatched component(s): {names}{suffix}"
        )
        self.epoch = epoch
        self.components = tuple(components)


class TransportError(ReplicationError):
    """The log transport failed: ack timeout, dead link, bad framing."""


class AlreadyRanError(ReplicationError):
    """:meth:`ReplicatedJVM.run` was called a second time.

    A ReplicatedJVM is single-shot — its channel, crash injector, and
    metrics all hold state from the first run.  Use
    :meth:`ReplicatedJVM.clone` to build a fresh machine with the same
    configuration.
    """


class QuorumLostError(ReplicationError):
    """A voting group could not assemble ``f+1`` matching votes.

    Under the ``n = 2f+1`` sizing this means more than ``f`` members are
    convicted or disagree — beyond the fault budget the group was
    configured to tolerate, so no output can be safely released.
    """


class VariantDivergenceError(ReplicationError):
    """The multi-variant (step/slice engine) lockstep guard tripped and
    the group was configured ``variant_fail_stop=True``.

    Attributes:
        divergence: the structured
            :class:`~repro.replication.voting.VariantDivergence` event.
    """

    def __init__(self, divergence) -> None:
        super().__init__(f"multi-variant execution diverged: {divergence}")
        self.divergence = divergence


class PrimaryCrashed(ReproError):
    """Internal control-flow signal: the fail-stop point was reached.

    Raised by the crash injector to unwind the primary's execution loop.
    Never visible to user code; the harness catches it at the top level.
    """


class PrimaryOutvoted(ReproError):
    """Internal control-flow signal: the proposing member of a voting
    group was outvoted by a quorum of its peers.

    Raised from the quorum gate (before any output is released) to
    unwind the proposer's execution loop; the
    :class:`~repro.replication.voting.VotingGroup` catches it, deposes
    the liar, and promotes a member of the certified majority.  Never
    visible to user code.

    Attributes:
        verdict: the tally verdict that convicted the proposer.
    """

    def __init__(self, verdict=None) -> None:
        super().__init__(f"proposer outvoted by quorum: {verdict}")
        self.verdict = verdict

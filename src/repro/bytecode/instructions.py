"""Instruction representation and structural validation."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Tuple

from repro.errors import BytecodeError
from repro.bytecode.opcodes import (
    ARRAY_TYPES,
    CMP_OPS,
    OP_INFO,
    Op,
    OperandKind,
)


@dataclass(frozen=True)
class Instruction:
    """A single bytecode instruction.

    Operands are fully decoded Python values; jump targets are integer
    program counters (indexes into the method's code list) once the
    method has been assembled.

    Attributes:
        op: the opcode.
        operands: decoded operand tuple matching ``OP_INFO[op].operand_kinds``.
        line: source line for diagnostics (0 when unknown).
    """

    op: Op
    operands: Tuple[Any, ...] = ()
    line: int = 0

    def __repr__(self) -> str:  # compact, useful in test failures
        ops = " ".join(repr(o) for o in self.operands)
        return f"<{self.op.value}{' ' + ops if ops else ''}>"


def ins(op: Op, *operands: Any, line: int = 0) -> Instruction:
    """Build and structurally validate one instruction.

    Raises:
        BytecodeError: when the operand count or an operand's type does
            not match the opcode's declared shape.
    """
    info = OP_INFO[op]
    if len(operands) != len(info.operand_kinds):
        raise BytecodeError(
            f"{op.value} expects {len(info.operand_kinds)} operand(s), "
            f"got {len(operands)}"
        )
    for value, kind in zip(operands, info.operand_kinds):
        _check_operand(op, value, kind)
    return Instruction(op, tuple(operands), line)


def _check_operand(op: Op, value: Any, kind: OperandKind) -> None:
    if kind is OperandKind.INT:
        if not isinstance(value, int) or isinstance(value, bool):
            raise BytecodeError(f"{op.value}: expected int operand, got {value!r}")
    elif kind is OperandKind.FLOAT:
        if not isinstance(value, float):
            raise BytecodeError(f"{op.value}: expected float operand, got {value!r}")
    elif kind is OperandKind.STRING:
        if not isinstance(value, str):
            raise BytecodeError(f"{op.value}: expected string operand, got {value!r}")
    elif kind is OperandKind.LOCAL:
        if not isinstance(value, int) or value < 0:
            raise BytecodeError(f"{op.value}: bad local slot {value!r}")
    elif kind is OperandKind.LABEL:
        # Before assembly a label may be a symbolic string; afterwards an int pc.
        if not isinstance(value, (int, str)):
            raise BytecodeError(f"{op.value}: bad jump target {value!r}")
    elif kind in (OperandKind.CLASS, OperandKind.FIELD, OperandKind.METHOD):
        if not isinstance(value, str) or not value:
            raise BytecodeError(f"{op.value}: bad name operand {value!r}")
    elif kind is OperandKind.CMP:
        if value not in CMP_OPS:
            raise BytecodeError(f"{op.value}: bad comparison {value!r}")
    elif kind is OperandKind.TYPE:
        if value not in ARRAY_TYPES:
            raise BytecodeError(f"{op.value}: bad array type {value!r}")


@dataclass(frozen=True)
class ExceptionEntry:
    """One row of a method's exception table.

    A thrown Java exception whose pc lies in ``[start_pc, end_pc)`` and
    whose class is a subtype of ``class_name`` transfers control to
    ``handler_pc`` with the exception object as the sole stack item.
    ``class_name`` of ``"*"`` matches any exception (used by the
    ``synchronized`` method epilogue and by ``finally`` lowering).
    """

    start_pc: int
    end_pc: int
    handler_pc: int
    class_name: str = "*"


_code_uids = itertools.count()


@dataclass
class Code:
    """An assembled method body.

    Attributes:
        instructions: the instruction list; pcs are list indexes.
        max_locals: number of local-variable slots (params included).
        exception_table: ordered handler rows (first match wins).
        uid: process-unique identity for decoded-stream caching.  An
            interpreter keys its pre-decoded instruction streams by
            ``uid`` rather than ``id(code)`` so a cache entry can never
            be resurrected by address reuse after the code object dies.
    """

    instructions: list
    max_locals: int
    exception_table: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.uid = next(_code_uids)

    def __len__(self) -> int:
        return len(self.instructions)

"""Bytecode instruction set, builder, assembler, and verifier."""

from repro.bytecode.opcodes import Op, OP_INFO, CMP_OPS, ARRAY_TYPES, compare
from repro.bytecode.instructions import Instruction, ExceptionEntry, Code, ins
from repro.bytecode.builder import CodeBuilder
from repro.bytecode.assembler import assemble, disassemble
from repro.bytecode.methodref import MethodRef, method_ref, parse_method_ref
from repro.bytecode.verifier import verify, stack_effect

__all__ = [
    "Op", "OP_INFO", "CMP_OPS", "ARRAY_TYPES", "compare",
    "Instruction", "ExceptionEntry", "Code", "ins",
    "CodeBuilder", "assemble", "disassemble",
    "MethodRef", "method_ref", "parse_method_ref",
    "verify", "stack_effect",
]

"""A tiny textual assembler and disassembler for method bodies.

The text format exists for tests, debugging, and golden files.  One
instruction per line; ``label:`` lines define jump targets; ``;``
starts a comment.  String literals use Python-style double quotes.

Example::

    load 0
    iconst 10
    if_icmp ge done
    load 0
    iconst 1
    iadd
    store 0
    goto top
  done:
    return
"""

from __future__ import annotations

import re
from typing import List

from repro.errors import BytecodeError
from repro.bytecode.builder import CodeBuilder
from repro.bytecode.instructions import Code
from repro.bytecode.opcodes import (
    MNEMONIC_TO_OP,
    OP_INFO,
    OperandKind,
)

_TOKEN_RE = re.compile(r'"(?:[^"\\]|\\.)*"|\S+')
_ESCAPES = {"n": "\n", "t": "\t", '"': '"', "\\": "\\", "r": "\r", "0": "\0"}


def _unescape(literal: str) -> str:
    body = literal[1:-1]
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise BytecodeError("dangling escape in string literal")
            esc = body[i]
            if esc not in _ESCAPES:
                raise BytecodeError(f"unknown escape \\{esc}")
            out.append(_ESCAPES[esc])
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def _escape(value: str) -> str:
    out = value.replace("\\", "\\\\").replace('"', '\\"')
    out = out.replace("\n", "\\n").replace("\t", "\\t").replace("\r", "\\r")
    return f'"{out}"'


def _strip_comment(line: str) -> str:
    """Remove a trailing ``;`` comment, honouring string literals."""
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if in_string:
            if ch == "\\":
                i += 1
            elif ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
        elif ch == ";":
            return line[:i]
        i += 1
    return line


def assemble(source: str, max_locals: int = 0) -> Code:
    """Assemble a textual method body into :class:`Code`.

    Args:
        source: the assembly text.
        max_locals: minimum local-slot count (see CodeBuilder.assemble).

    Raises:
        BytecodeError: on any syntactic or structural problem; the
            message includes the 1-based line number.
    """
    builder = CodeBuilder()
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.endswith(":") and " " not in line:
            builder.label(line[:-1])
            continue
        tokens = _TOKEN_RE.findall(line)
        mnemonic, args = tokens[0], tokens[1:]
        op = MNEMONIC_TO_OP.get(mnemonic)
        if op is None:
            raise BytecodeError(f"line {lineno}: unknown opcode {mnemonic!r}")
        kinds = OP_INFO[op].operand_kinds
        if len(args) != len(kinds):
            raise BytecodeError(
                f"line {lineno}: {mnemonic} expects {len(kinds)} operand(s), "
                f"got {len(args)}"
            )
        operands = []
        for token, kind in zip(args, kinds):
            operands.append(_parse_operand(token, kind, lineno))
        try:
            builder.emit(op, *operands, line=lineno)
        except BytecodeError as err:
            raise BytecodeError(f"line {lineno}: {err}") from None
    return builder.assemble(min_locals=max_locals)


def _parse_operand(token: str, kind: OperandKind, lineno: int):
    try:
        if kind is OperandKind.INT:
            return int(token, 0)
        if kind is OperandKind.FLOAT:
            return float(token)
        if kind is OperandKind.STRING:
            if not (token.startswith('"') and token.endswith('"')):
                raise BytecodeError("string operand must be quoted")
            return _unescape(token)
        if kind is OperandKind.LOCAL:
            return int(token, 0)
        if kind is OperandKind.LABEL:
            return int(token) if token.lstrip("-").isdigit() else token
        # CLASS / FIELD / METHOD / CMP / TYPE are bare tokens
        return token
    except (ValueError, BytecodeError) as err:
        raise BytecodeError(f"line {lineno}: bad operand {token!r}: {err}") from None


def disassemble(code: Code) -> str:
    """Render a :class:`Code` back to assembly text (labels synthesized).

    ``assemble(disassemble(code))`` produces an equivalent method body;
    the round trip is exercised by property-based tests.
    """
    targets = set()
    for instr in code.instructions:
        kinds = OP_INFO[instr.op].operand_kinds
        for operand, kind in zip(instr.operands, kinds):
            if kind is OperandKind.LABEL:
                targets.add(operand)
    for row in code.exception_table:
        targets.update((row.start_pc, row.end_pc, row.handler_pc))

    label_names = {pc: f"L{pc}" for pc in sorted(targets)}
    lines: List[str] = []
    for row in code.exception_table:
        lines.append(
            f"; .catch {row.class_name} [{label_names[row.start_pc]}, "
            f"{label_names[row.end_pc]}) -> {label_names[row.handler_pc]}"
        )
    for pc, instr in enumerate(code.instructions):
        if pc in label_names:
            lines.append(f"{label_names[pc]}:")
        rendered = []
        kinds = OP_INFO[instr.op].operand_kinds
        for operand, kind in zip(instr.operands, kinds):
            if kind is OperandKind.LABEL:
                rendered.append(label_names[operand])
            elif kind is OperandKind.STRING:
                rendered.append(_escape(operand))
            else:
                rendered.append(str(operand))
        lines.append("  " + " ".join([instr.op.value] + rendered))
    end_pc = len(code.instructions)
    if end_pc in label_names:
        lines.append(f"{label_names[end_pc]}:")
        lines.append("  nop")
    return "\n".join(lines) + "\n"

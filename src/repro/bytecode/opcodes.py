"""The bytecode instruction set of the mini-JVM.

The ISA is a compact, stack-based subset modeled on the Java Virtual
Machine Specification (the paper's state-machine commands are JVM
bytecodes).  Opcodes carry metadata used throughout the system:

* ``pops``/``pushes`` — static stack effect, used by the verifier and
  the method builder's max-stack computation (-1 means variable).
* ``is_control_flow`` — whether executing the instruction counts as a
  *control flow change* for the replicated thread scheduler's ``br_cnt``
  (the paper counts branches, jumps, and method invocations).
* ``operand_kinds`` — the shape of the instruction's operands, used by
  the assembler/disassembler and by structural validation.
"""

from __future__ import annotations

import enum
import operator
from dataclasses import dataclass
from typing import Tuple


class OperandKind(enum.Enum):
    """What an instruction operand denotes."""

    NONE = "none"
    INT = "int"            # immediate integer
    FLOAT = "float"        # immediate float
    STRING = "string"      # immediate string literal
    LOCAL = "local"        # local-variable slot index
    LABEL = "label"        # jump target (pc after assembly)
    CLASS = "class"        # class name
    FIELD = "field"        # field name
    METHOD = "method"      # method reference "Class.name/nargs"
    CMP = "cmp"            # comparison operator token
    TYPE = "type"          # array element type token


class Op(enum.Enum):
    """Opcode mnemonics.

    The enum *value* is the mnemonic string used by the assembler and
    disassembler; identity comparisons in the interpreter use the enum
    member itself.
    """

    NOP = "nop"

    # Constants
    ICONST = "iconst"
    FCONST = "fconst"
    SCONST = "sconst"
    ACONST_NULL = "aconst_null"

    # Locals
    LOAD = "load"
    STORE = "store"
    IINC = "iinc"

    # Operand stack
    POP = "pop"
    DUP = "dup"
    DUP_X1 = "dup_x1"
    SWAP = "swap"

    # Integer arithmetic (operands are 32-bit two's complement)
    IADD = "iadd"
    ISUB = "isub"
    IMUL = "imul"
    IDIV = "idiv"
    IREM = "irem"
    INEG = "ineg"
    ISHL = "ishl"
    ISHR = "ishr"
    IUSHR = "iushr"
    IAND = "iand"
    IOR = "ior"
    IXOR = "ixor"

    # Float arithmetic
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"

    # Conversions
    I2F = "i2f"
    F2I = "f2i"

    # String operations (strings are immutable values on the stack)
    SCONCAT = "sconcat"
    S2I = "s2i"
    I2S = "i2s"
    F2S = "f2s"

    # Control flow
    GOTO = "goto"
    IF_ICMP = "if_icmp"      # pops two ints, compares with CMP operand
    IF_FCMP = "if_fcmp"      # pops two floats
    IF = "if"                # pops one int, compares against zero
    IF_NULL = "if_null"
    IF_NONNULL = "if_nonnull"
    IF_ACMP_EQ = "if_acmp_eq"
    IF_ACMP_NE = "if_acmp_ne"
    IF_SCMP = "if_scmp"      # pops two strings, compares with CMP operand

    # Objects
    NEW = "new"
    GETFIELD = "getfield"
    PUTFIELD = "putfield"
    GETSTATIC = "getstatic"
    PUTSTATIC = "putstatic"
    INSTANCEOF = "instanceof"
    CHECKCAST = "checkcast"

    # Arrays
    NEWARRAY = "newarray"
    ARRLOAD = "arrload"
    ARRSTORE = "arrstore"
    ARRAYLENGTH = "arraylength"

    # Invocation and return
    INVOKEVIRTUAL = "invokevirtual"
    INVOKESPECIAL = "invokespecial"
    INVOKESTATIC = "invokestatic"
    RETURN = "return"        # void return
    VRETURN = "vreturn"      # return TOS value

    # Monitors
    MONITORENTER = "monitorenter"
    MONITOREXIT = "monitorexit"

    # Exceptions
    ATHROW = "athrow"


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for an opcode."""

    pops: int
    pushes: int
    operand_kinds: Tuple[OperandKind, ...]
    is_control_flow: bool = False
    is_branch: bool = False        # conditional or unconditional jump
    ends_block: bool = False       # control never falls through
    is_monitor: bool = False       # monitorenter/monitorexit (ticks mon_cnt)


_K = OperandKind

OP_INFO = {
    Op.NOP: OpInfo(0, 0, ()),
    Op.ICONST: OpInfo(0, 1, (_K.INT,)),
    Op.FCONST: OpInfo(0, 1, (_K.FLOAT,)),
    Op.SCONST: OpInfo(0, 1, (_K.STRING,)),
    Op.ACONST_NULL: OpInfo(0, 1, ()),
    Op.LOAD: OpInfo(0, 1, (_K.LOCAL,)),
    Op.STORE: OpInfo(1, 0, (_K.LOCAL,)),
    Op.IINC: OpInfo(0, 0, (_K.LOCAL, _K.INT)),
    Op.POP: OpInfo(1, 0, ()),
    Op.DUP: OpInfo(1, 2, ()),
    Op.DUP_X1: OpInfo(2, 3, ()),
    Op.SWAP: OpInfo(2, 2, ()),
    Op.IADD: OpInfo(2, 1, ()),
    Op.ISUB: OpInfo(2, 1, ()),
    Op.IMUL: OpInfo(2, 1, ()),
    Op.IDIV: OpInfo(2, 1, ()),
    Op.IREM: OpInfo(2, 1, ()),
    Op.INEG: OpInfo(1, 1, ()),
    Op.ISHL: OpInfo(2, 1, ()),
    Op.ISHR: OpInfo(2, 1, ()),
    Op.IUSHR: OpInfo(2, 1, ()),
    Op.IAND: OpInfo(2, 1, ()),
    Op.IOR: OpInfo(2, 1, ()),
    Op.IXOR: OpInfo(2, 1, ()),
    Op.FADD: OpInfo(2, 1, ()),
    Op.FSUB: OpInfo(2, 1, ()),
    Op.FMUL: OpInfo(2, 1, ()),
    Op.FDIV: OpInfo(2, 1, ()),
    Op.FNEG: OpInfo(1, 1, ()),
    Op.I2F: OpInfo(1, 1, ()),
    Op.F2I: OpInfo(1, 1, ()),
    Op.SCONCAT: OpInfo(2, 1, ()),
    Op.S2I: OpInfo(1, 1, ()),
    Op.I2S: OpInfo(1, 1, ()),
    Op.F2S: OpInfo(1, 1, ()),
    Op.GOTO: OpInfo(0, 0, (_K.LABEL,), is_control_flow=True, is_branch=True,
                    ends_block=True),
    Op.IF_ICMP: OpInfo(2, 0, (_K.CMP, _K.LABEL), is_control_flow=True,
                       is_branch=True),
    Op.IF_FCMP: OpInfo(2, 0, (_K.CMP, _K.LABEL), is_control_flow=True,
                       is_branch=True),
    Op.IF: OpInfo(1, 0, (_K.CMP, _K.LABEL), is_control_flow=True,
                  is_branch=True),
    Op.IF_NULL: OpInfo(1, 0, (_K.LABEL,), is_control_flow=True,
                       is_branch=True),
    Op.IF_NONNULL: OpInfo(1, 0, (_K.LABEL,), is_control_flow=True,
                          is_branch=True),
    Op.IF_ACMP_EQ: OpInfo(2, 0, (_K.LABEL,), is_control_flow=True,
                          is_branch=True),
    Op.IF_ACMP_NE: OpInfo(2, 0, (_K.LABEL,), is_control_flow=True,
                          is_branch=True),
    Op.IF_SCMP: OpInfo(2, 0, (_K.CMP, _K.LABEL), is_control_flow=True,
                       is_branch=True),
    Op.NEW: OpInfo(0, 1, (_K.CLASS,)),
    Op.GETFIELD: OpInfo(1, 1, (_K.FIELD,)),
    Op.PUTFIELD: OpInfo(2, 0, (_K.FIELD,)),
    Op.GETSTATIC: OpInfo(0, 1, (_K.CLASS, _K.FIELD)),
    Op.PUTSTATIC: OpInfo(1, 0, (_K.CLASS, _K.FIELD)),
    Op.INSTANCEOF: OpInfo(1, 1, (_K.CLASS,)),
    Op.CHECKCAST: OpInfo(1, 1, (_K.CLASS,)),
    Op.NEWARRAY: OpInfo(1, 1, (_K.TYPE,)),
    Op.ARRLOAD: OpInfo(2, 1, ()),
    Op.ARRSTORE: OpInfo(3, 0, ()),
    Op.ARRAYLENGTH: OpInfo(1, 1, ()),
    Op.INVOKEVIRTUAL: OpInfo(-1, -1, (_K.METHOD,), is_control_flow=True),
    Op.INVOKESPECIAL: OpInfo(-1, -1, (_K.METHOD,), is_control_flow=True),
    Op.INVOKESTATIC: OpInfo(-1, -1, (_K.METHOD,), is_control_flow=True),
    Op.RETURN: OpInfo(0, 0, (), is_control_flow=True, ends_block=True),
    Op.VRETURN: OpInfo(1, 0, (), is_control_flow=True, ends_block=True),
    Op.MONITORENTER: OpInfo(1, 0, (), is_monitor=True),
    Op.MONITOREXIT: OpInfo(1, 0, (), is_monitor=True),
    Op.ATHROW: OpInfo(1, 0, (), is_control_flow=True, ends_block=True),
}

#: Comparison operator tokens accepted by IF/IF_ICMP/IF_FCMP/IF_SCMP.
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")

#: Token -> predicate table; the instruction decoder resolves the token
#: once per code array so the hot loop never string-compares.
CMP_FNS = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}

#: Array element type tokens accepted by NEWARRAY.
ARRAY_TYPES = ("int", "float", "str", "ref")

MNEMONIC_TO_OP = {op.value: op for op in Op}


#: Opcodes at which the execution engine must return to the
#: scheduler/replication layer: every ``br_cnt``-ticking control-flow
#: change plus the monitor ops.  These — together with natives, output,
#: and budget exhaustion, which only occur *inside* them — are exactly
#: the events at which a replica's progress point can be observed or
#: acted on, so they are the only legal yield points of the fast path.
SAFEPOINT_EVENT_OPS = frozenset(
    op for op, info in OP_INFO.items()
    if info.is_control_flow or info.is_monitor
)


def compare(op: str, a, b) -> bool:
    """Evaluate a comparison token against two comparable values."""
    fn = CMP_FNS.get(op)
    if fn is None:
        raise ValueError(f"unknown comparison operator {op!r}")
    return fn(a, b)

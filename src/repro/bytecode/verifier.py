"""Static bytecode verification.

A lightweight analogue of the JVM's class-file verifier: an abstract
interpretation over *stack depths* proves that every execution path
reaches each pc with a consistent operand-stack depth, that no
instruction underflows the stack, and that control cannot fall off the
end of the method.  It also returns the method's maximum stack depth,
which the interpreter uses to size frames.

Full type inference is deliberately out of scope — the interpreter
checks value kinds dynamically, raising Java-level errors the same way
a JVM raises ``NullPointerException`` at run time.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import VerifyError
from repro.bytecode.instructions import Code
from repro.bytecode.methodref import parse_method_ref
from repro.bytecode.opcodes import OP_INFO, Op, OperandKind


def stack_effect(instr) -> Tuple[int, int]:
    """(pops, pushes) for one instruction, resolving invoke arity."""
    info = OP_INFO[instr.op]
    if info.pops >= 0:
        return info.pops, info.pushes
    ref = parse_method_ref(instr.operands[0])
    pops = ref.nargs + (0 if instr.op is Op.INVOKESTATIC else 1)
    return pops, (1 if ref.returns else 0)


def verify(code: Code, is_static: bool = True, nargs: int = 0) -> int:
    """Verify a method body; returns the maximum operand-stack depth.

    Args:
        code: the assembled method body.
        is_static: whether the method has a receiver in slot 0.
        nargs: declared parameter count (receiver excluded).

    Raises:
        VerifyError: on stack underflow, inconsistent merge depths,
            out-of-range jump targets or local slots, or fall-through
            off the end of the code.
    """
    n = len(code.instructions)
    if n == 0:
        raise VerifyError("empty method body")

    param_slots = nargs + (0 if is_static else 1)
    if code.max_locals < param_slots:
        raise VerifyError(
            f"max_locals={code.max_locals} < parameter slots {param_slots}"
        )

    depth_at: Dict[int, int] = {0: 0}
    worklist: List[int] = [0]
    # Exception handlers are entered with exactly the thrown object on
    # the stack, from any pc inside their protected region.
    for row in code.exception_table:
        if not (0 <= row.start_pc <= row.end_pc <= n):
            raise VerifyError(f"exception region {row} out of range")
        if not 0 <= row.handler_pc < n:
            raise VerifyError(f"handler pc {row.handler_pc} out of range")
        _merge(depth_at, worklist, row.handler_pc, 1)

    max_depth = 1 if code.exception_table else 0
    while worklist:
        pc = worklist.pop()
        depth = depth_at[pc]
        if pc >= n:
            raise VerifyError(f"control reaches pc {pc} past end of code")
        instr = code.instructions[pc]
        info = OP_INFO[instr.op]

        _check_locals(instr, code.max_locals, pc)

        pops, pushes = stack_effect(instr)
        if depth < pops:
            raise VerifyError(
                f"pc {pc}: {instr.op.value} pops {pops} but stack depth is {depth}"
            )
        after = depth - pops + pushes
        max_depth = max(max_depth, after, depth)

        for kind, operand in zip(info.operand_kinds, instr.operands):
            if kind is OperandKind.LABEL:
                if not 0 <= operand < n:
                    raise VerifyError(f"pc {pc}: jump target {operand} out of range")
                _merge(depth_at, worklist, operand, after)
        if not info.ends_block:
            if pc + 1 >= n:
                raise VerifyError(
                    f"pc {pc}: control falls off the end of the method"
                )
            _merge(depth_at, worklist, pc + 1, after)

    return max_depth


def _merge(depth_at: Dict[int, int], worklist: List[int], pc: int, depth: int) -> None:
    known = depth_at.get(pc)
    if known is None:
        depth_at[pc] = depth
        worklist.append(pc)
    elif known != depth:
        raise VerifyError(
            f"pc {pc}: inconsistent stack depth on merge ({known} vs {depth})"
        )


def _check_locals(instr, max_locals: int, pc: int) -> None:
    info = OP_INFO[instr.op]
    for kind, operand in zip(info.operand_kinds, instr.operands):
        if kind is OperandKind.LOCAL and operand >= max_locals:
            raise VerifyError(
                f"pc {pc}: local slot {operand} >= max_locals {max_locals}"
            )

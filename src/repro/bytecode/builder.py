"""Programmatic construction of method bodies with symbolic labels.

The MiniJava code generator and hand-written tests use
:class:`CodeBuilder` to emit instructions with string labels, then call
:meth:`CodeBuilder.assemble` to resolve labels to integer pcs and
produce a validated :class:`~repro.bytecode.instructions.Code`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import BytecodeError
from repro.bytecode.instructions import Code, ExceptionEntry, Instruction, ins
from repro.bytecode.opcodes import OP_INFO, Op, OperandKind


class CodeBuilder:
    """Accumulates instructions, labels, and exception-table regions."""

    def __init__(self) -> None:
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._regions: List[Tuple[str, str, str, str]] = []
        self._local_names: Dict[str, int] = {}
        self._next_local = 0

    # ------------------------------------------------------------------
    # Locals management
    # ------------------------------------------------------------------
    def reserve_local(self, name: Optional[str] = None) -> int:
        """Allocate a fresh local slot, optionally bound to a name."""
        slot = self._next_local
        self._next_local += 1
        if name is not None:
            if name in self._local_names:
                raise BytecodeError(f"local {name!r} already reserved")
            self._local_names[name] = slot
        return slot

    def local(self, name: str) -> int:
        """Slot index of a named local."""
        try:
            return self._local_names[name]
        except KeyError:
            raise BytecodeError(f"unknown local {name!r}") from None

    @property
    def max_locals(self) -> int:
        return self._next_local

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    @property
    def pc(self) -> int:
        """The pc the next emitted instruction will occupy."""
        return len(self._instructions)

    def emit(self, op: Op, *operands: Any, line: int = 0) -> "CodeBuilder":
        self._instructions.append(ins(op, *operands, line=line))
        return self

    def label(self, name: str) -> "CodeBuilder":
        """Define ``name`` at the current pc."""
        if name in self._labels:
            raise BytecodeError(f"label {name!r} defined twice")
        self._labels[name] = self.pc
        return self

    def fresh_label(self, hint: str = "L") -> str:
        """Generate a unique label name (not yet placed)."""
        n = 0
        while f"{hint}{n}" in self._labels or f"{hint}{n}" in self._pending_names():
            n += 1
        name = f"{hint}{n}"
        # Reserve it so a second fresh_label call cannot return the same name
        # before the caller places it.
        self._reserved = getattr(self, "_reserved", set())
        self._reserved.add(name)
        return name

    def _pending_names(self) -> set:
        return getattr(self, "_reserved", set())

    def exception_region(
        self, start: str, end: str, handler: str, class_name: str = "*"
    ) -> "CodeBuilder":
        """Register an exception-table row using symbolic labels."""
        self._regions.append((start, end, handler, class_name))
        return self

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------
    def assemble(self, min_locals: int = 0) -> Code:
        """Resolve labels and produce a :class:`Code`.

        Args:
            min_locals: lower bound on ``max_locals`` (method parameter
                count — parameters occupy the first slots even when the
                body never reserved them explicitly).

        Raises:
            BytecodeError: on undefined labels or out-of-range targets.
        """
        resolved: List[Instruction] = []
        for instr in self._instructions:
            info = OP_INFO[instr.op]
            if OperandKind.LABEL not in info.operand_kinds:
                resolved.append(instr)
                continue
            operands = list(instr.operands)
            for i, kind in enumerate(info.operand_kinds):
                if kind is not OperandKind.LABEL:
                    continue
                target = operands[i]
                if isinstance(target, str):
                    if target not in self._labels:
                        raise BytecodeError(f"undefined label {target!r}")
                    operands[i] = self._labels[target]
                if not 0 <= operands[i] <= len(self._instructions):
                    raise BytecodeError(
                        f"jump target {operands[i]} out of range "
                        f"(method has {len(self._instructions)} instructions)"
                    )
            resolved.append(Instruction(instr.op, tuple(operands), instr.line))

        table = []
        for start, end, handler, class_name in self._regions:
            try:
                row = ExceptionEntry(
                    self._labels[start],
                    self._labels[end],
                    self._labels[handler],
                    class_name,
                )
            except KeyError as missing:
                raise BytecodeError(
                    f"exception region references undefined label {missing}"
                ) from None
            if row.start_pc > row.end_pc:
                raise BytecodeError(
                    f"exception region [{row.start_pc}, {row.end_pc}) is inverted"
                )
            table.append(row)

        return Code(
            instructions=resolved,
            max_locals=max(self._next_local, min_locals),
            exception_table=table,
        )

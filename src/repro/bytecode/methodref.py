"""Method-reference operand encoding.

Invocation instructions carry a single string operand naming the callee:

    ``Class.method/nargs/rets``

``nargs`` counts declared parameters (excluding the receiver) and
``rets`` is 1 when the callee returns a value, 0 for void.  Keeping
arity and return arity in the reference lets the verifier compute stack
effects without resolving classes, mirroring how JVM descriptors make
``invoke*`` stack effects statically known.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BytecodeError


@dataclass(frozen=True)
class MethodRef:
    """Decoded method reference."""

    class_name: str
    method_name: str
    nargs: int
    returns: bool

    def __str__(self) -> str:
        return (
            f"{self.class_name}.{self.method_name}"
            f"/{self.nargs}/{1 if self.returns else 0}"
        )


def method_ref(class_name: str, method_name: str, nargs: int, returns: bool) -> str:
    """Encode a method reference operand string."""
    return str(MethodRef(class_name, method_name, nargs, returns))


def parse_method_ref(ref: str) -> MethodRef:
    """Decode a method reference operand string.

    Raises:
        BytecodeError: if the reference is malformed.
    """
    try:
        qualified, nargs_s, rets_s = ref.rsplit("/", 2)
        class_name, method_name = qualified.split(".", 1)
        nargs = int(nargs_s)
        rets = int(rets_s)
    except ValueError:
        raise BytecodeError(f"malformed method reference {ref!r}") from None
    if not class_name or not method_name or nargs < 0 or rets not in (0, 1):
        raise BytecodeError(f"malformed method reference {ref!r}")
    return MethodRef(class_name, method_name, nargs, bool(rets))

"""Class model and registry (the method area / bootstrap loader)."""

from repro.classfile.model import (
    FIELD_TYPES, OBJECT_CLASS, CTOR_NAME, CLINIT_NAME,
    JField, JMethod, JClass, default_value,
)
from repro.classfile.loader import ClassRegistry

__all__ = [
    "FIELD_TYPES", "OBJECT_CLASS", "CTOR_NAME", "CLINIT_NAME",
    "JField", "JMethod", "JClass", "default_value", "ClassRegistry",
]

"""Class registry: loading, linking, and resolution.

A :class:`ClassRegistry` is the analogue of the JVM's bootstrap class
loader plus method area.  It owns the immutable class templates; it is
shared read-only by every JVM instance that runs the same program
(baseline, primary, backup), which guarantees identical initial states
across replicas.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import ClassFormatError, LinkageError
from repro.classfile.model import (
    CTOR_NAME,
    OBJECT_CLASS,
    JClass,
    JField,
    JMethod,
)


class ClassRegistry:
    """Holds linked classes and answers resolution queries."""

    def __init__(self) -> None:
        self._classes: Dict[str, JClass] = {}
        self._linked = False
        self._method_cache: Dict[tuple, JMethod] = {}
        #: Bumped on every (re)definition; interpreters compare it
        #: against the version their inline caches were filled under
        #: and drop them when it moves.
        self.version = 0
        # The root class always exists with a default constructor.
        root = JClass(OBJECT_CLASS, None)
        root.add_method(
            JMethod(CTOR_NAME, 0, False, _empty_ctor_code())
        )
        self.register(root)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def register(self, cls: JClass) -> JClass:
        """Register a class template; linking is deferred to first query."""
        if cls.name in self._classes:
            raise ClassFormatError(f"class {cls.name!r} registered twice")
        self._classes[cls.name] = cls
        self._linked = False
        self._method_cache.clear()
        self.version += 1
        return cls

    def register_all(self, classes: Iterable[JClass]) -> None:
        for cls in classes:
            self.register(cls)

    def _link(self) -> None:
        """Resolve superclass references and detect hierarchy errors."""
        if self._linked:
            return
        for cls in self._classes.values():
            if cls.super_name is None:
                cls.superclass = None
                continue
            parent = self._classes.get(cls.super_name)
            if parent is None:
                raise LinkageError(
                    f"class {cls.name!r} extends unknown class {cls.super_name!r}"
                )
            cls.superclass = parent
        # Cycle detection: walk to the root from every class.
        for cls in self._classes.values():
            seen = set()
            node: Optional[JClass] = cls
            while node is not None:
                if node.name in seen:
                    raise LinkageError(f"inheritance cycle through {node.name!r}")
                seen.add(node.name)
                node = node.superclass
        self._linked = True

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve(self, name: str) -> JClass:
        self._link()
        cls = self._classes.get(name)
        if cls is None:
            raise LinkageError(f"unknown class {name!r}")
        return cls

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def class_names(self) -> List[str]:
        return sorted(self._classes)

    def lookup_method(self, class_name: str, method_name: str,
                      nargs: int) -> JMethod:
        """Virtual-dispatch lookup: walk the superclass chain.

        Results are memoized — the table is safe to share because the
        class hierarchy is immutable after linking.
        """
        key = (class_name, method_name, nargs)
        cached = self._method_cache.get(key)
        if cached is not None:
            return cached
        cls: Optional[JClass] = self.resolve(class_name)
        while cls is not None:
            method = cls.methods.get((method_name, nargs))
            if method is not None:
                self._method_cache[key] = method
                return method
            cls = cls.superclass
        raise LinkageError(
            f"no method {method_name!r}/{nargs} in {class_name!r} hierarchy"
        )

    def lookup_field(self, class_name: str, field_name: str) -> JField:
        """Field resolution walking the superclass chain."""
        cls: Optional[JClass] = self.resolve(class_name)
        while cls is not None:
            f = cls.fields.get(field_name)
            if f is not None:
                return f
            cls = cls.superclass
        raise LinkageError(f"no field {field_name!r} in {class_name!r} hierarchy")

    def instance_fields(self, class_name: str) -> List[JField]:
        """All instance fields, root-first (object layout order)."""
        chain: List[JClass] = []
        cls: Optional[JClass] = self.resolve(class_name)
        while cls is not None:
            chain.append(cls)
            cls = cls.superclass
        fields: List[JField] = []
        for cls in reversed(chain):
            fields.extend(f for f in cls.fields.values() if not f.is_static)
        return fields

    def is_subtype(self, sub: str, sup: str) -> bool:
        """Whether class ``sub`` is ``sup`` or a descendant of it."""
        self._link()
        cls: Optional[JClass] = self._classes.get(sub)
        if cls is None:
            raise LinkageError(f"unknown class {sub!r}")
        while cls is not None:
            if cls.name == sup:
                return True
            cls = cls.superclass
        return False


def _empty_ctor_code():
    """Body of ``Object.<init>``: just return."""
    from repro.bytecode.builder import CodeBuilder
    from repro.bytecode.opcodes import Op

    builder = CodeBuilder()
    builder.reserve_local("this")
    builder.emit(Op.RETURN)
    return builder.assemble(min_locals=1)

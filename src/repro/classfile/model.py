"""Class, method, and field model.

Instances of these classes are immutable *templates*, analogous to
loaded classfiles.  All mutable runtime state — static field values,
monitors, initialization flags — lives in the JVM instance
(:mod:`repro.runtime`), so the same program can be loaded once and run
by several JVMs (the unreplicated baseline, the primary, and the
backup) without sharing state.  That separation is what makes the
"identical initial state" requirement of the state-machine approach
trivially auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ClassFormatError, VerifyError
from repro.bytecode.instructions import Code
from repro.bytecode.verifier import verify

#: Field/variable type tokens.  ``bool`` values are ints 0/1 at run time.
FIELD_TYPES = ("int", "float", "str", "ref")

#: Name of the implicit root class.
OBJECT_CLASS = "Object"

#: Name of the constructor method (mirrors the JVM's <init>).
CTOR_NAME = "<init>"

#: Name of the class initializer (mirrors the JVM's <clinit>).
CLINIT_NAME = "<clinit>"


def default_value(type_token: str):
    """The JVM default value for a field of the given type."""
    if type_token == "int":
        return 0
    if type_token == "float":
        return 0.0
    if type_token == "str":
        return ""
    if type_token == "ref":
        return None
    raise ClassFormatError(f"unknown field type {type_token!r}")


@dataclass(frozen=True)
class JField:
    """A declared field."""

    name: str
    type: str
    is_static: bool = False

    def __post_init__(self) -> None:
        if self.type not in FIELD_TYPES:
            raise ClassFormatError(
                f"field {self.name!r} has unknown type {self.type!r}"
            )


class JMethod:
    """A declared method (bytecode body or native stub).

    Attributes:
        name: simple method name.
        nargs: declared parameter count, excluding the receiver.
        returns: whether the method pushes a value on return.
        is_static / is_native / is_synchronized: flags per the JVM spec.
        code: the verified body; ``None`` exactly when ``is_native``.
        max_stack: operand-stack bound computed by the verifier.
        declaring_class: back-reference filled in by :class:`JClass`.
    """

    def __init__(
        self,
        name: str,
        nargs: int,
        returns: bool,
        code: Optional[Code] = None,
        *,
        is_static: bool = False,
        is_native: bool = False,
        is_synchronized: bool = False,
    ) -> None:
        if nargs < 0:
            raise ClassFormatError(f"method {name!r} has negative arity")
        if is_native and code is not None:
            raise ClassFormatError(f"native method {name!r} must not carry code")
        if not is_native and code is None:
            raise ClassFormatError(f"method {name!r} has no body")
        self.name = name
        self.nargs = nargs
        self.returns = returns
        self.code = code
        self.is_static = is_static
        self.is_native = is_native
        self.is_synchronized = is_synchronized
        self.declaring_class: Optional["JClass"] = None
        if code is not None:
            try:
                self.max_stack = verify(code, is_static=is_static, nargs=nargs)
            except VerifyError as err:
                raise VerifyError(f"method {name!r}: {err}") from None
        else:
            self.max_stack = 0

    @property
    def qualified_name(self) -> str:
        owner = self.declaring_class.name if self.declaring_class else "?"
        return f"{owner}.{self.name}"

    @property
    def signature(self) -> str:
        """Signature key used by the native registry and the paper's
        hash table of non-deterministic methods (class + name + arity)."""
        return f"{self.qualified_name}/{self.nargs}"

    def __repr__(self) -> str:
        return f"<JMethod {self.qualified_name}/{self.nargs}>"


class JClass:
    """A loaded class template."""

    def __init__(
        self,
        name: str,
        super_name: Optional[str] = OBJECT_CLASS,
        fields: Optional[Dict[str, JField]] = None,
        methods: Optional[Dict[str, JMethod]] = None,
    ) -> None:
        if not name:
            raise ClassFormatError("class must have a name")
        if name == OBJECT_CLASS:
            super_name = None
        elif not super_name:
            super_name = OBJECT_CLASS
        self.name = name
        self.super_name = super_name
        self.fields: Dict[str, JField] = dict(fields or {})
        #: Methods keyed by (name, nargs): overloading by arity only,
        #: which keeps method references resolvable without full
        #: descriptor matching.
        self.methods: Dict[tuple, JMethod] = {}
        #: Filled in by the registry once the hierarchy is linked.
        self.superclass: Optional["JClass"] = None
        for method in (methods or {}).values():
            self.add_method(method)

    def add_field(self, f: JField) -> None:
        if f.name in self.fields:
            raise ClassFormatError(f"duplicate field {self.name}.{f.name}")
        self.fields[f.name] = f

    def add_method(self, m: JMethod) -> None:
        key = (m.name, m.nargs)
        if key in self.methods:
            raise ClassFormatError(
                f"duplicate method {self.name}.{m.name}/{m.nargs}"
            )
        m.declaring_class = self
        self.methods[key] = m

    def method_names(self):
        return sorted({name for name, _ in self.methods})

    def __repr__(self) -> str:
        return f"<JClass {self.name}>"

"""Chained-failover conformance: crash every generation, everywhere.

The single-failover sweep (:mod:`repro.conform.sweep`) proves the
backup can take over from *one* crash at any event index.  This module
proves the **re-integration loop**: a :class:`ReplicaGroup` that
checkpoints its state to a fresh backup each generation must survive a
crash at *every event index of every generation* — including indices
that land inside the checkpoint transfer itself — and still produce

* byte-identical stable outputs (console transcript, file contents) to
  an unreplicated run — the exactly-once obligation compounded across
  failovers;
* a final state digest equal to the unreplicated run's;
* the same uncaught-exception log.

The sweep is layered.  Layer *g* pins the crash points of generations
``0..g-1`` (so every run reproduces the same prefix of history), runs
one crash-free *pilot* to count generation *g*'s injector events, then
re-runs the chain once per index.  Indices at or below the checkpoint
transfer (``chunks + 1`` events: one per chunk plus the commit) kill
the primary mid-transfer, exercising the torn-transfer path: the old
basis must stand, and the deposed primary's delivered chunks must be
*fenced* — the report accumulates the fence counters as proof.

Each layer's pin is chosen just past the transfer, so deeper layers
chain "normal" mid-execution failovers.  A layer with no events (the
pinned prefix already finishes during recovery replay) ends the chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.conform.workloads import get_workload
from repro.env.environment import Environment
from repro.errors import ReproError
from repro.replication.digest import StateDigest, compute_state_digest
from repro.replication.config import ReplicationConfig
from repro.replication.machine import run_unreplicated
from repro.replication.supervisor import GroupResult, ReplicaGroup
from repro.replication.transport import FAULT_PROFILES, FaultyTransport

#: Small chunks + per-record flushing make the transfer span several
#: injector events, so mid-transfer crash indices actually exist.
DEFAULT_CHUNK_BYTES = 512
DEFAULT_BATCH_RECORDS = 1
#: Extra records the bounded-replay check tolerates beyond the crashed
#: primary's retained high-water mark: the gauge samples once per
#: slice, so records logged inside the crashing slice trail it.
_REPLAY_SLACK = 32


# ======================================================================
# Cell specs and group construction
# ======================================================================
def make_chained_spec(workload: str, strategy: str, transport: str,
                      *, depth: int = 2, seed: int = 20030622,
                      chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                      batch_records: int = DEFAULT_BATCH_RECORDS,
                      engine: str = "slice",
                      checkpoint_interval: Optional[int] = None
                      ) -> Dict[str, Any]:
    """One chained-matrix cell as a plain dict.  ``transport`` uses the
    same syntax as the single-failover sweep (``"memory"`` or
    ``"faulty:<profile>"``); each generation gets its own seeded
    instance so fault schedules stay reproducible per epoch."""
    if transport != "memory":
        kind, _, profile = transport.partition(":")
        profile = profile or "flaky"
        if kind != "faulty" or profile not in FAULT_PROFILES:
            raise ReproError(
                f"unknown conform transport {transport!r}; expected "
                f"'memory' or 'faulty:<profile>' with a profile from "
                f"{sorted(FAULT_PROFILES)}"
            )
    return {
        "workload": workload,
        "strategy": strategy,
        "transport": transport,
        "depth": depth,
        "seed": seed,
        "chunk_bytes": chunk_bytes,
        "batch_records": batch_records,
        "engine": engine,
        "checkpoint_interval": checkpoint_interval,
    }


def _transport_factory(spec: Dict[str, Any]):
    transport = spec["transport"]
    if transport == "memory":
        return None
    _, _, profile = transport.partition(":")
    profile = profile or "flaky"
    seed = spec["seed"]
    return lambda generation: FaultyTransport(
        FAULT_PROFILES[profile], seed=seed + 97 * generation
    )


def build_group(spec: Dict[str, Any],
                crash_schedule: List[int]) -> Tuple[ReplicaGroup, Environment]:
    """A fresh replica group for one cell and one chain of crashes."""
    workload = get_workload(spec["workload"])
    env = Environment()
    group = ReplicaGroup(
        workload.registry(),
        env=env,
        config=ReplicationConfig(
            strategy=spec["strategy"],
            crash_schedule=list(crash_schedule),
            max_failures=len(crash_schedule) + 2,
            transport=_transport_factory(spec),
            jvm_config=workload.jvm_config(spec.get("engine", "slice")),
            batch_records=spec["batch_records"],
            chunk_bytes=spec["chunk_bytes"],
            checkpoint_interval=spec.get("checkpoint_interval"),
        ),
    )
    return group, env


# ======================================================================
# Reference run
# ======================================================================
@dataclass
class ChainReference:
    """The unreplicated oracle every chain is compared against."""

    final_digest: Tuple[Tuple[str, int], ...]
    stable: Dict[str, str]
    uncaught: List[Tuple[str, str, str]]


def chained_reference(spec: Dict[str, Any]) -> ChainReference:
    """Unreplicated oracle, always on the single-step engine so every
    chained cell doubles as a cross-engine equivalence check."""
    workload = get_workload(spec["workload"])
    env = Environment()
    result, jvm = run_unreplicated(
        workload.registry(), workload.main_class,
        env=env, jvm_config=workload.jvm_config("step"),
    )
    digest = compute_state_digest(jvm, env)
    return ChainReference(
        final_digest=digest.components,
        stable=env.snapshot_stable(),
        uncaught=list(result.uncaught),
    )


# ======================================================================
# One chain of crashes
# ======================================================================
def _fenced_total(result: GroupResult) -> int:
    return result.records_fenced


def check_chain(spec: Dict[str, Any], crash_schedule: List[int],
                reference: ChainReference) -> Optional[Dict[str, Any]]:
    """Run the chain; ``None`` means every invariant held, otherwise a
    failure dict for the report."""
    workload = get_workload(spec["workload"])
    crash_at = crash_schedule[-1] if crash_schedule else None

    def failure(kind: str, detail: str, **extra) -> Dict[str, Any]:
        entry = {
            "crash_schedule": list(crash_schedule),
            "crash_at": crash_at,
            "kind": kind,
            "detail": detail,
        }
        entry.update(extra)
        return entry

    group, env = build_group(spec, crash_schedule)
    try:
        result = group.run(workload.main_class)
    except ReproError as err:
        return failure("error", f"{type(err).__name__}: {err}")

    if result.failures_survived != len(crash_schedule):
        return failure(
            "no_failover",
            f"scheduled {len(crash_schedule)} crash(es) but "
            f"{result.failures_survived} failover(s) happened",
        )

    # --- exactly-once outputs, compounded across failovers ------------
    if list(result.result.uncaught) != reference.uncaught:
        return failure(
            "output_mismatch",
            f"uncaught exceptions differ: {result.result.uncaught} "
            f"!= {reference.uncaught}",
        )
    stable = env.snapshot_stable()
    if stable != reference.stable:
        changed = sorted(
            key for key in set(stable) | set(reference.stable)
            if stable.get(key) != reference.stable.get(key)
        )
        return failure(
            "output_mismatch",
            f"stable environment differs from the unreplicated "
            f"reference in {changed}",
        )

    # --- final state digest -------------------------------------------
    final = compute_state_digest(group.final_jvm, env)
    mismatched = StateDigest(reference.final_digest).diff(final)
    if mismatched:
        return failure(
            "divergence",
            f"final state digest differs from the unreplicated "
            f"reference in component(s) {', '.join(mismatched)}",
            components=mismatched,
        )

    # --- bounded recovery replay (steady checkpointing only) ----------
    if spec.get("checkpoint_interval") is not None:
        reports = result.generations
        for prev, cur in zip(reports, reports[1:]):
            if (prev.primary_metrics is None
                    or cur.recovery_metrics is None
                    or prev.steady_checkpoints == 0):
                continue
            if prev.primary_metrics.records_truncated == 0:
                return failure(
                    "unbounded_replay",
                    f"generation {prev.generation} adopted "
                    f"{prev.steady_checkpoints} steady checkpoint(s) but "
                    f"never truncated its log",
                )
            budget = (prev.primary_metrics.retained_records_max
                      + _REPLAY_SLACK)
            tail = cur.recovery_metrics.recovery_tail_records
            if tail > budget:
                return failure(
                    "unbounded_replay",
                    f"generation {cur.generation} replayed {tail} tail "
                    f"record(s), beyond the crashed primary's retained "
                    f"high-water mark "
                    f"{prev.primary_metrics.retained_records_max} "
                    f"(+{_REPLAY_SLACK} slack)",
                )
    return None


# ======================================================================
# Layered sweep
# ======================================================================
@dataclass
class ChainLayer:
    """One generation's full crash-index sweep under a pinned prefix."""

    generation: int
    pinned: List[int]
    total_events: int
    #: Events that land inside the checkpoint transfer (chunks + the
    #: transfer commit); crash indices <= this are mid-transfer kills.
    transfer_events: int
    crash_points: int
    failures: List[Dict[str, Any]]
    #: Fence-counter sum over every run of this layer — proof that the
    #: deposed primaries' records were discarded, not adopted.
    records_fenced: int
    #: Steady checkpoints the pilot's generation adopted (0 with
    #: checkpointing off) — proof the swept crash indices include
    #: mid-delta-transfer kills when the interval is set.
    steady_checkpoints: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, Any]:
        return {
            "generation": self.generation,
            "pinned": list(self.pinned),
            "total_events": self.total_events,
            "transfer_events": self.transfer_events,
            "crash_points": self.crash_points,
            "records_fenced": self.records_fenced,
            "steady_checkpoints": self.steady_checkpoints,
            "failures": self.failures,
            "ok": self.ok,
        }


@dataclass
class ChainCellResult:
    """Outcome of one chained matrix cell."""

    workload: str
    strategy: str
    transport: str
    depth: int
    layers: List[ChainLayer]
    errors: List[Dict[str, Any]] = field(default_factory=list)
    engine: str = "slice"
    checkpoint_interval: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.errors and all(layer.ok for layer in self.layers)

    @property
    def crash_points(self) -> int:
        return sum(layer.crash_points for layer in self.layers)

    @property
    def failures(self) -> List[Dict[str, Any]]:
        collected = list(self.errors)
        for layer in self.layers:
            collected.extend(layer.failures)
        return collected

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "transport": self.transport,
            "engine": self.engine,
            "checkpoint_interval": self.checkpoint_interval,
            "depth": self.depth,
            "crash_points": self.crash_points,
            "layers": [layer.as_dict() for layer in self.layers],
            "errors": self.errors,
            "ok": self.ok,
        }


def _pilot(spec: Dict[str, Any],
           pinned: List[int]) -> Optional[GroupResult]:
    """Run the pinned prefix with no further crash, to measure the next
    generation's event count (and that the chain still completes)."""
    workload = get_workload(spec["workload"])
    group, _ = build_group(spec, pinned)
    return group.run(workload.main_class)


def sweep_chained_cell(spec: Dict[str, Any], *, stride: int = 1,
                       progress=None) -> ChainCellResult:
    """Sweep every crash index of every generation up to ``depth``."""
    reference = chained_reference(spec)
    depth = spec["depth"]
    result = ChainCellResult(
        workload=spec["workload"],
        strategy=spec["strategy"],
        transport=spec["transport"],
        depth=depth,
        layers=[],
        engine=spec.get("engine", "slice"),
        checkpoint_interval=spec.get("checkpoint_interval"),
    )
    pinned: List[int] = []

    for generation in range(depth):
        try:
            pilot = _pilot(spec, pinned)
        except ReproError as err:
            result.errors.append({
                "crash_schedule": list(pinned),
                "kind": "error",
                "detail": f"pilot failed: {type(err).__name__}: {err}",
            })
            break
        report = pilot.generations[generation]
        if report.outcome == "completed_in_recovery" or report.events == 0:
            # The pinned prefix already finishes during recovery
            # replay: generation `generation` never runs a primary, so
            # there is nothing left to crash.
            break
        total_events = report.events
        transfer_events = report.checkpoint_chunks + 1
        failures: List[Dict[str, Any]] = []
        fenced = 0
        points = list(range(1, total_events + 1, max(1, stride)))
        for crash_at in points:
            schedule = pinned + [crash_at]
            entry = check_chain(spec, schedule, reference)
            if entry is not None:
                failures.append(entry)
            if progress is not None:
                progress(generation, crash_at, entry)
        # One representative mid-transfer run per layer, kept for its
        # fence counters (every index <= transfer_events tears the
        # transfer; the counters prove the leavings were discarded).
        if transfer_events >= 1 and not failures:
            group, _ = build_group(spec, pinned + [transfer_events])
            workload = get_workload(spec["workload"])
            fenced = _fenced_total(group.run(workload.main_class))
        result.layers.append(ChainLayer(
            generation=generation,
            pinned=list(pinned),
            total_events=total_events,
            transfer_events=transfer_events,
            crash_points=len(points),
            failures=failures,
            records_fenced=fenced,
            steady_checkpoints=report.steady_checkpoints,
        ))
        if failures:
            break
        # Chain the next layer just past the transfer: a "normal"
        # post-re-integration crash with a few execution events behind
        # it when the generation is long enough.
        pinned.append(min(transfer_events + 2, total_events))

    return result


@dataclass
class ChainedConfig:
    """What to sweep and how deep."""

    workloads: List[str]
    strategies: List[str] = field(
        default_factory=lambda: ["lock_sync", "thread_sched"]
    )
    transports: List[str] = field(
        default_factory=lambda: ["memory", "faulty:flaky"]
    )
    depth: int = 2
    seed: int = 20030622
    stride: int = 1
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    batch_records: int = DEFAULT_BATCH_RECORDS
    engines: List[str] = field(default_factory=lambda: ["slice"])
    #: Steady-state checkpoint intervals to sweep (``None`` = off): the
    #: bounded-log dimension of the matrix.  With an interval set, the
    #: crash indices swept per generation include kills inside delta
    #: emissions, and every recovery's replayed tail is checked against
    #: the crashed primary's retained-log high-water mark.
    checkpoint_intervals: List[Optional[int]] = field(
        default_factory=lambda: [None]
    )


def run_chained_sweep(config: ChainedConfig, *,
                      progress=None) -> List[ChainCellResult]:
    """Sweep the full chained matrix; one cell result per combination."""
    results = []
    for workload in config.workloads:
        for strategy in config.strategies:
            for transport in config.transports:
                for engine in config.engines:
                    for interval in config.checkpoint_intervals:
                        spec = make_chained_spec(
                            workload, strategy, transport,
                            depth=config.depth,
                            seed=config.seed,
                            chunk_bytes=config.chunk_bytes,
                            batch_records=config.batch_records,
                            engine=engine,
                            checkpoint_interval=interval,
                        )
                        cell = sweep_chained_cell(spec,
                                                  stride=config.stride)
                        if progress is not None:
                            progress(cell)
                        results.append(cell)
    return results

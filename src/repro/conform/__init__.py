"""Exhaustive crash-point conformance harness.

``python -m repro conform`` sweeps *every* crash event index for a
workload × strategy × transport matrix, asserting at each point that
the failover preserved the paper's guarantees:

* **digest equality** — the backup's final recomputed state digest
  matches a failure-free reference run (and every periodic
  :class:`~repro.replication.digest.DigestRecord` verified during
  replay);
* **log prefix property** — the delivered log at the crash is a
  contiguous prefix of the reference run's delivered log;
* **output-commit safety** — console and file outputs are exactly the
  reference outputs: nothing lost, nothing duplicated.

See :mod:`repro.conform.sweep` for the engine and
:mod:`repro.conform.report` for the JSON report schema.
"""

from repro.conform.byzantine import (
    ByzantineCellResult,
    ByzantineConfig,
    ByzantineReference,
    byzantine_reference,
    check_corruption,
    make_byzantine_spec,
    run_byzantine_sweep,
    sweep_byzantine_cell,
)
from repro.conform.chained import (
    ChainCellResult,
    ChainedConfig,
    ChainLayer,
    chained_reference,
    check_chain,
    make_chained_spec,
    run_chained_sweep,
    sweep_chained_cell,
)
from repro.conform.report import (
    REPORT_VERSION,
    build_byzantine_report,
    build_chained_report,
    build_report,
    render_byzantine_report,
    render_chained_report,
    render_report,
    write_report,
)
from repro.conform.sweep import (
    CellResult,
    Reference,
    SweepConfig,
    check_crash_point,
    make_cell_spec,
    reference_run,
    run_sweep,
    shrink_failure,
    sweep_cell,
)
from repro.conform.workloads import (
    ConformWorkload,
    get_workload,
    workload_names,
)

__all__ = [
    "ConformWorkload", "get_workload", "workload_names",
    "SweepConfig", "Reference", "CellResult", "make_cell_spec",
    "reference_run", "check_crash_point", "shrink_failure",
    "sweep_cell", "run_sweep",
    "REPORT_VERSION", "build_report", "render_report", "write_report",
    "ChainedConfig", "ChainCellResult", "ChainLayer",
    "make_chained_spec", "chained_reference", "check_chain",
    "sweep_chained_cell", "run_chained_sweep",
    "build_chained_report", "render_chained_report",
    "ByzantineConfig", "ByzantineCellResult", "ByzantineReference",
    "make_byzantine_spec", "byzantine_reference", "check_corruption",
    "sweep_byzantine_cell", "run_byzantine_sweep",
    "build_byzantine_report", "render_byzantine_report",
]

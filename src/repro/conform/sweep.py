"""The crash-point sweep engine.

For each (workload, strategy, transport) cell the engine:

1. runs a failure-free **reference** execution and captures the total
   crash-event count, the delivered log, the final state digest, and
   the stable environment snapshot;
2. re-runs the workload once per crash event index (``crash_at`` from 1
   to the total), asserting after every failover that the backup's
   final state digest equals the reference digest, that the delivered
   log was a contiguous prefix of the reference log, and that stable
   outputs (console, files) match the reference exactly — the paper's
   exactly-once obligation;
3. on failure, a **shrinker** re-tests untried crash points below the
   failing one (relevant when sweeping with ``stride > 1``) so the
   report names the *minimal* failing crash point.

Cells are described by plain picklable dicts, so crash points can be
checked in parallel worker processes (``workers=0`` runs inline, which
tests use for determinism and coverage).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.conform.workloads import get_workload
from repro.env.environment import Environment
from repro.errors import DivergenceError, ReproError
from repro.replication.digest import StateDigest, compute_state_digest
from repro.replication.config import ReplicationConfig
from repro.replication.machine import ReplicatedJVM
from repro.replication.transport import FAULT_PROFILES, FaultyTransport

#: Digest checkpoint frequency used by the sweep (schedule records per
#: periodic digest under a lockstep strategy).
DEFAULT_DIGEST_INTERVAL = 2


# ======================================================================
# Cell specs (picklable) and machine construction
# ======================================================================
def make_cell_spec(workload: str, strategy: str, transport: str,
                   *, seed: int = 20030622,
                   digest_interval: int = DEFAULT_DIGEST_INTERVAL,
                   engine: str = "slice") -> Dict[str, Any]:
    """One matrix cell as a plain dict (crosses process boundaries).

    ``transport`` is ``"memory"`` or ``"faulty:<profile>"`` with a
    profile name from :data:`repro.replication.transport.FAULT_PROFILES`
    (the sweep seeds it so fault schedules are reproducible).
    ``engine`` selects the execution engine for the crash runs; the
    reference run always uses the single-step engine, so every swept
    cell doubles as a cross-engine equivalence check.
    """
    if transport != "memory":
        kind, _, profile = transport.partition(":")
        profile = profile or "flaky"
        if kind != "faulty" or profile not in FAULT_PROFILES:
            raise ReproError(
                f"unknown conform transport {transport!r}; expected "
                f"'memory' or 'faulty:<profile>' with a profile from "
                f"{sorted(FAULT_PROFILES)}"
            )
    return {
        "workload": workload,
        "strategy": strategy,
        "transport": transport,
        "seed": seed,
        "digest_interval": digest_interval,
        "engine": engine,
    }


def _transport_factory(spec: Dict[str, Any]):
    transport = spec["transport"]
    if transport == "memory":
        return None                      # in-memory default
    _, _, profile = transport.partition(":")
    profile = profile or "flaky"
    seed = spec["seed"]
    return lambda: FaultyTransport(FAULT_PROFILES[profile], seed=seed)


def build_machine(spec: Dict[str, Any],
                  crash_at: Optional[int] = None) -> ReplicatedJVM:
    """A fresh machine for one cell (and optionally one crash point)."""
    workload = get_workload(spec["workload"])
    return ReplicatedJVM(
        workload.registry(),
        env=Environment(),
        config=ReplicationConfig(
            strategy=spec["strategy"],
            crash_at=crash_at,
            jvm_config=workload.jvm_config(spec.get("engine", "slice")),
            transport=_transport_factory(spec),
            digest_interval=spec["digest_interval"],
        ),
    )


# ======================================================================
# Reference run
# ======================================================================
@dataclass
class Reference:
    """Everything a crash-point check compares against (picklable)."""

    total_events: int
    final_digest: Tuple[Tuple[str, int], ...]
    delivered: List[bytes]
    stable: Dict[str, str]
    uncaught: List[Tuple[str, str, str]]


def reference_run(spec: Dict[str, Any]) -> Reference:
    """Run the cell once without a crash and capture the oracle.

    The reference always executes on the single-step engine regardless
    of the cell's ``engine``: the crash runs must reproduce its digest,
    log, and outputs bit-for-bit, so a fast-path cell is simultaneously
    a crash-consistency check and a cross-engine equivalence check.
    """
    workload = get_workload(spec["workload"])
    machine = build_machine({**spec, "engine": "step"})
    result = machine.run(workload.main_class)
    if result.failed_over:
        raise ReproError("reference run unexpectedly failed over")
    digest = compute_state_digest(machine.primary_jvm)
    return Reference(
        total_events=machine.shipper.injector.events,
        final_digest=digest.components,
        delivered=list(machine.transport.delivered),
        stable=machine.env.snapshot_stable(),
        uncaught=list(result.final_result.uncaught),
    )


# ======================================================================
# One crash point
# ======================================================================
def check_crash_point(spec: Dict[str, Any], crash_at: int,
                      reference: Reference) -> Optional[Dict[str, Any]]:
    """Run the cell with a fail-stop at ``crash_at``; ``None`` means
    every invariant held, otherwise a failure dict for the report."""
    workload = get_workload(spec["workload"])
    machine = build_machine(spec, crash_at=crash_at)

    def failure(kind: str, detail: str, **extra) -> Dict[str, Any]:
        entry = {"crash_at": crash_at, "kind": kind, "detail": detail}
        entry.update(extra)
        return entry

    try:
        result = machine.run(workload.main_class)
    except DivergenceError as err:
        return failure(
            "divergence",
            str(err),
            epoch=err.epoch,
            components=list(err.components),
        )
    except ReproError as err:
        return failure("error", f"{type(err).__name__}: {err}")

    if not result.failed_over:
        return failure(
            "no_failover",
            f"crash_at={crash_at} <= total_events="
            f"{reference.total_events} but the primary completed",
        )

    # --- log prefix property ------------------------------------------
    delivered = list(machine.transport.delivered)
    if delivered != reference.delivered[:len(delivered)]:
        return failure(
            "log_prefix",
            f"delivered log ({len(delivered)} records) is not a prefix "
            f"of the reference log ({len(reference.delivered)} records)",
        )

    # --- exactly-once outputs -----------------------------------------
    if list(result.final_result.uncaught) != reference.uncaught:
        return failure(
            "output_mismatch",
            f"uncaught exceptions differ: {result.final_result.uncaught} "
            f"!= {reference.uncaught}",
        )
    stable = machine.env.snapshot_stable()
    if stable != reference.stable:
        changed = sorted(
            key for key in set(stable) | set(reference.stable)
            if stable.get(key) != reference.stable.get(key)
        )
        return failure(
            "output_mismatch",
            f"stable environment differs from reference in {changed}",
        )

    # --- final state digest -------------------------------------------
    final = compute_state_digest(machine.backup_jvm)
    mismatched = StateDigest(reference.final_digest).diff(final)
    if mismatched:
        return failure(
            "divergence",
            f"backup's final state digest differs from the reference "
            f"run in component(s) {', '.join(mismatched)}",
            components=mismatched,
        )
    return None


def _check_point_job(job: Tuple[Dict[str, Any], int, Reference]
                     ) -> Tuple[int, Optional[Dict[str, Any]]]:
    """Worker-process entry point: check one crash point."""
    spec, crash_at, reference = job
    return crash_at, check_crash_point(spec, crash_at, reference)


# ======================================================================
# Shrinking
# ======================================================================
def shrink_failure(spec: Dict[str, Any], reference: Reference,
                   failing: Dict[str, Any],
                   tried: List[int]) -> Dict[str, Any]:
    """Reduce a failure to its minimal crash point.

    Re-tests every crash point below the failing one that the sweep
    skipped (``stride > 1``), in ascending order, and returns the first
    failure found — the minimal reproduction.  With a full sweep there
    is nothing to shrink and the failure returns unchanged.
    """
    tried_set = set(tried)
    for crash_at in range(1, failing["crash_at"]):
        if crash_at in tried_set:
            continue
        earlier = check_crash_point(spec, crash_at, reference)
        if earlier is not None:
            earlier["shrunk_from"] = failing["crash_at"]
            return earlier
    return failing


# ======================================================================
# The sweep
# ======================================================================
@dataclass
class SweepConfig:
    """What to sweep and how hard."""

    workloads: List[str]
    strategies: List[str] = field(
        default_factory=lambda: ["lock_sync", "thread_sched"]
    )
    transports: List[str] = field(
        default_factory=lambda: ["memory", "faulty:flaky"]
    )
    seed: int = 20030622
    digest_interval: int = DEFAULT_DIGEST_INTERVAL
    stride: int = 1
    workers: int = 0
    shrink: bool = True
    engines: List[str] = field(default_factory=lambda: ["slice"])


@dataclass
class CellResult:
    """Outcome of one matrix cell."""

    workload: str
    strategy: str
    transport: str
    total_events: int
    crash_points: int
    failures: List[Dict[str, Any]]
    engine: str = "slice"

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "strategy": self.strategy,
            "transport": self.transport,
            "engine": self.engine,
            "total_events": self.total_events,
            "crash_points": self.crash_points,
            "failures": self.failures,
            "ok": self.ok,
        }


def sweep_cell(spec: Dict[str, Any], *, stride: int = 1, workers: int = 0,
               shrink: bool = True,
               progress=None) -> CellResult:
    """Sweep every crash event index of one cell."""
    reference = reference_run(spec)
    points = list(range(1, reference.total_events + 1, max(1, stride)))
    failures: List[Dict[str, Any]] = []

    if workers and len(points) > 1:
        jobs = [(spec, crash_at, reference) for crash_at in points]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_check_point_job, jobs, chunksize=4))
        for crash_at, entry in outcomes:
            if entry is not None:
                failures.append(entry)
            if progress is not None:
                progress(crash_at, entry)
    else:
        for crash_at in points:
            entry = check_crash_point(spec, crash_at, reference)
            if entry is not None:
                failures.append(entry)
            if progress is not None:
                progress(crash_at, entry)

    failures.sort(key=lambda f: f["crash_at"])
    if failures and shrink:
        failures[0] = shrink_failure(spec, reference, failures[0], points)
    return CellResult(
        workload=spec["workload"],
        strategy=spec["strategy"],
        transport=spec["transport"],
        total_events=reference.total_events,
        crash_points=len(points),
        failures=failures,
        engine=spec.get("engine", "slice"),
    )


def run_sweep(config: SweepConfig, *, progress=None) -> List[CellResult]:
    """Sweep the full matrix; one :class:`CellResult` per cell."""
    results = []
    for workload in config.workloads:
        for strategy in config.strategies:
            for transport in config.transports:
                for engine in config.engines:
                    spec = make_cell_spec(
                        workload, strategy, transport,
                        seed=config.seed,
                        digest_interval=config.digest_interval,
                        engine=engine,
                    )
                    cell = sweep_cell(
                        spec,
                        stride=config.stride,
                        workers=config.workers,
                        shrink=config.shrink,
                    )
                    if progress is not None:
                        progress(cell)
                    results.append(cell)
    return results

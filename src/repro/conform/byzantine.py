"""The Byzantine corruption sweep (``repro conform --byzantine``).

Where the crash-point sweep injects a fail-stop at every event index,
this sweep injects a *lie* at every comparable artifact: for each
workload an honest probe run discovers every digest epoch the group
certified and every output it gated, then one cell per (artifact,
lying member role) re-runs the workload with the seeded
:class:`~repro.replication.voting.CorruptionInjector` flipping that
artifact — on the proposer (a lying primary whose corrupted payload
would reach the environment if released) and on a follower (a
bit-flipped replica whose ballot disagrees).

Every cell asserts the group's obligations:

* the run completes (``completed`` or, after a deposition,
  ``completed_in_recovery``);
* stable outputs (console, files) are byte-identical to an
  **unreplicated serial reference** — exactly-once, nothing corrupted;
* the final recomputed state digest matches the reference;
* exactly one quarantine incident, naming exactly the seeded liar;
* a deposed proposer's run reaches a later era (the group re-armed
  around the liar) unless the lie landed on the final artifact;
* the corruption actually fired (cells are generated from observed
  artifacts, so a non-firing lie is a harness bug, not a pass).

With ``variants="step+slice"`` every cell additionally runs under the
multi-variant engine guard, asserting it stays silent for honest runs
and for lies that are not engine-correlated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.conform.workloads import get_workload
from repro.env.environment import Environment
from repro.errors import ReproError
from repro.replication.config import ReplicationConfig
from repro.replication.digest import StateDigest, compute_state_digest
from repro.replication.machine import run_unreplicated
from repro.replication.supervisor import default_generation_settings
from repro.replication.voting import VotingGroup, VotingResult

#: Digest checkpoint frequency used by the sweep (matches the
#: crash-point sweep so the two exercise the same epochs).
DEFAULT_DIGEST_INTERVAL = 2


# ======================================================================
# Cell construction
# ======================================================================
def make_byzantine_spec(workload: str, *, n_members: int = 3,
                        seed: int = 20030622,
                        digest_interval: int = DEFAULT_DIGEST_INTERVAL,
                        engine: str = "slice",
                        variants: Optional[str] = None) -> Dict[str, Any]:
    """One sweepable workload configuration as a plain dict."""
    if variants not in (None, "step+slice"):
        raise ReproError(
            f"unknown variants mode {variants!r}; expected None or "
            f"'step+slice'"
        )
    return {
        "workload": workload,
        "n_members": n_members,
        "seed": seed,
        "digest_interval": digest_interval,
        "engine": engine,
        "variants": variants,
    }


def build_group(spec: Dict[str, Any],
                env: Environment,
                lie_at: Optional[Tuple] = None,
                lie_member: int = 0,
                lie_specs: Tuple = ()) -> VotingGroup:
    workload = get_workload(spec["workload"])
    return VotingGroup(
        workload.registry(),
        env=env,
        config=ReplicationConfig(
            voting=True,
            strategy="thread_sched",
            n_members=spec["n_members"],
            jvm_config=workload.jvm_config(spec.get("engine", "slice")),
            digest_interval=spec["digest_interval"],
            variants=spec.get("variants"),
            lie_at=lie_at,
            lie_member=lie_member,
            lie_specs=tuple(lie_specs),
        ),
    )


# ======================================================================
# Reference + honest probe
# ======================================================================
@dataclass
class ByzantineReference:
    """The honest-serial oracle plus the artifact map the probe found."""

    final_digest: Tuple[Tuple[str, int], ...]
    stable: Dict[str, str]
    uncaught: List[Tuple[str, str, str]]
    #: Periodic digest epochs the honest group certified.
    digest_epochs: List[int]
    #: The final digest record's epoch (lie target for the end-of-run
    #: ballot; 0 for single-threaded workloads).
    final_epoch: int
    #: Output ordinals (0-based) the honest group gated.
    output_ordinals: List[int]


def byzantine_reference(spec: Dict[str, Any]) -> ByzantineReference:
    """The serial oracle plus an honest voting probe.

    The serial reference runs unreplicated with the era-0 proposer's
    exact settings and JVM config, so "byte-identical to an honest
    serial execution" is a meaningful comparison.  The probe run then
    (a) proves the honest group reproduces it and (b) enumerates the
    artifacts — digest epochs and output ordinals — that the corruption
    cells will target.
    """
    workload = get_workload(spec["workload"])
    env = Environment()
    result, jvm = run_unreplicated(
        workload.registry(), workload.main_class, env=env,
        settings=default_generation_settings(0),
        jvm_config=workload.jvm_config(spec.get("engine", "slice")),
    )
    digest = compute_state_digest(jvm, env)
    reference = ByzantineReference(
        final_digest=digest.components,
        stable=env.snapshot_stable(),
        uncaught=list(result.uncaught),
        digest_epochs=[],
        final_epoch=0,
        output_ordinals=[],
    )

    probe_env = Environment()
    group = build_group(spec, probe_env)
    probe = group.run(workload.main_class)
    failures = _check_result(spec, probe, probe_env, reference,
                             expected_liar=None)
    if failures:
        raise ReproError(
            f"honest probe for workload {spec['workload']!r} violated "
            f"the reference: {failures[0]['detail']}"
        )
    certs = group.tally.certified(0)
    reference.digest_epochs = sorted(
        cert.index[0] for cert in certs if cert.subject == "digest"
    )
    metrics = probe.reports[0].proposer_metrics
    reference.final_epoch = metrics.schedule_records
    reference.output_ordinals = list(range(metrics.output_commits))
    return reference


# ======================================================================
# One corruption cell
# ======================================================================
def _check_result(spec: Dict[str, Any], result: VotingResult,
                  env: Environment, reference: ByzantineReference,
                  expected_liar) -> List[Dict[str, Any]]:
    """Assert one run's obligations; returns failure dicts (empty=ok).

    ``expected_liar`` is ``None`` (honest run), one member index, or a
    list of indices for simultaneous liars (``f >= 2`` cells)."""
    failures: List[Dict[str, Any]] = []
    if expected_liar is None:
        expected_liars: List[int] = []
    elif isinstance(expected_liar, int):
        expected_liars = [expected_liar]
    else:
        expected_liars = sorted(expected_liar)

    def failure(kind: str, detail: str) -> None:
        failures.append({"kind": kind, "detail": detail})

    if not result.result.ok:
        failure("error",
                f"program did not complete: {result.result.uncaught}")
        return failures
    if list(result.result.uncaught) != reference.uncaught:
        failure("output_mismatch",
                f"uncaught exceptions differ: {result.result.uncaught} "
                f"!= {reference.uncaught}")
    stable = env.snapshot_stable()
    if stable != reference.stable:
        changed = sorted(
            key for key in set(stable) | set(reference.stable)
            if stable.get(key) != reference.stable.get(key)
        )
        failure("output_mismatch",
                f"stable environment differs from the serial reference "
                f"in {changed}")
    final = compute_state_digest(result.final_jvm, env)
    mismatched = StateDigest(reference.final_digest).diff(final)
    if mismatched:
        failure("divergence",
                f"final state digest differs from the serial reference "
                f"in component(s) {', '.join(mismatched)}")

    liars = [incident.member for incident in result.incidents]
    if not expected_liars:
        if liars:
            failure("false_positive",
                    f"honest run quarantined member(s) {liars}")
        if result.divergences:
            failure("false_alarm",
                    f"honest run raised {len(result.divergences)} "
                    f"variant divergence(s)")
    else:
        if sorted(liars) != expected_liars:
            failure("wrong_conviction",
                    f"expected exactly member(s) {expected_liars} "
                    f"quarantined, got {sorted(liars)}")
        innocents = [d.member for d in result.divergences
                     if d.member not in expected_liars]
        if innocents:
            failure("false_alarm",
                    f"variant guard blamed innocent member(s) "
                    f"{innocents}")
    return failures


def check_corruption(spec: Dict[str, Any], reference: ByzantineReference,
                     lie_at: Tuple, lie_member: int,
                     extra_lies: Tuple = ()
                     ) -> Optional[Dict[str, Any]]:
    """Run one seeded-lie cell; ``None`` means every invariant held.

    ``extra_lies`` are additional simultaneous ``(lie_at, lie_member)``
    pairs — with ``n_members = 5`` (f = 2) the group must convict every
    liar at once without losing exactly-once outputs."""
    workload = get_workload(spec["workload"])
    env = Environment()
    group = build_group(spec, env, lie_at=lie_at, lie_member=lie_member,
                        lie_specs=extra_lies)
    liars = sorted({lie_member} | {m for _, m in extra_lies})
    role = "proposer" if 0 in liars else "follower"
    if len(liars) > 1:
        role += "s" if role == "follower" else "+follower"

    def failure(kind: str, detail: str) -> Dict[str, Any]:
        return {"lie": list(lie_at), "lie_member": lie_member,
                "extra_lies": [[list(a), m] for a, m in extra_lies],
                "role": role, "kind": kind, "detail": detail}

    try:
        result = group.run(workload.main_class)
    except ReproError as err:
        return failure("error", f"{type(err).__name__}: {err}")

    n_lies = 1 + len(extra_lies)
    if len(group.injector.fired) != n_lies:
        return failure("lie_not_injected",
                       f"{n_lies} corruption(s) armed on member(s) "
                       f"{liars} but only {group.injector.fired} fired")
    checks = _check_result(spec, result, env, reference,
                           expected_liar=liars)
    if checks:
        first = checks[0]
        return failure(first["kind"], first["detail"])
    if 0 in liars and result.final_era < 1 \
            and result.outcome != "completed_in_recovery":
        return failure("no_deposition",
                       "a lying proposer completed era 0 unchallenged")
    return None


# ======================================================================
# The sweep
# ======================================================================
@dataclass
class ByzantineConfig:
    """What to corrupt and how hard."""

    workloads: List[str]
    n_members: int = 3
    seed: int = 20030622
    digest_interval: int = DEFAULT_DIGEST_INTERVAL
    stride: int = 1
    engine: str = "slice"
    variants: Optional[str] = None
    #: Follower member index used for the bit-flipped-replica cells.
    follower_member: int = 1


@dataclass
class ByzantineCellResult:
    """Outcome of one workload's corruption sweep."""

    workload: str
    engine: str
    variants: Optional[str]
    digest_epochs: int
    output_ordinals: int
    cells: int
    failures: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "engine": self.engine,
            "variants": self.variants,
            "digest_epochs": self.digest_epochs,
            "output_ordinals": self.output_ordinals,
            "cells": self.cells,
            "failures": self.failures,
            "ok": self.ok,
        }


def sweep_byzantine_cell(spec: Dict[str, Any], *, stride: int = 1,
                         follower_member: int = 1,
                         progress=None) -> ByzantineCellResult:
    """Sweep every observed artifact of one workload, lying once as
    the proposer and once as a follower per artifact.  With
    ``n_members >= 5`` (f = 2) each artifact also gets two
    *simultaneous*-liar cells: proposer + follower lying at once, and
    two followers lying at once — every liar must be convicted in one
    era."""
    reference = byzantine_reference(spec)
    stride = max(1, stride)
    epochs = reference.digest_epochs[::stride]
    if reference.final_epoch not in epochs:
        epochs = epochs + [reference.final_epoch]
    ordinals = reference.output_ordinals[::stride]

    dual = spec["n_members"] >= 5
    second = follower_member + 1
    lies: List[Tuple[Tuple, int, Tuple]] = []
    for epoch in epochs:
        target = ("digest", epoch)
        lies.append((target, 0, ()))
        lies.append((target, follower_member, ()))
        if dual:
            lies.append((target, 0, ((target, follower_member),)))
            lies.append((target, follower_member, ((target, second),)))
    for ordinal in ordinals:
        target = ("output", ordinal)
        lies.append((target, 0, ()))
        lies.append((target, follower_member, ()))
        if dual:
            lies.append((target, 0, ((target, follower_member),)))
            lies.append((target, follower_member, ((target, second),)))

    failures: List[Dict[str, Any]] = []
    for lie_at, lie_member, extra in lies:
        entry = check_corruption(spec, reference, lie_at, lie_member,
                                 extra)
        if entry is not None:
            failures.append(entry)
        if progress is not None:
            progress(lie_at, lie_member, entry)
    return ByzantineCellResult(
        workload=spec["workload"],
        engine=spec.get("engine", "slice"),
        variants=spec.get("variants"),
        digest_epochs=len(epochs),
        output_ordinals=len(ordinals),
        cells=len(lies),
        failures=failures,
    )


def run_byzantine_sweep(config: ByzantineConfig,
                        *, progress=None) -> List[ByzantineCellResult]:
    """Sweep the full corruption matrix, one cell per workload."""
    results = []
    for workload in config.workloads:
        spec = make_byzantine_spec(
            workload,
            n_members=config.n_members,
            seed=config.seed,
            digest_interval=config.digest_interval,
            engine=config.engine,
            variants=config.variants,
        )
        cell = sweep_byzantine_cell(
            spec, stride=config.stride,
            follower_member=config.follower_member,
        )
        if progress is not None:
            progress(cell)
        results.append(cell)
    return results

"""Micro workloads for the conformance sweep.

These are deliberately tiny — the sweep runs one full replicated
execution *per crash event index per matrix cell*, so a workload with a
few hundred events already means hundreds of runs.  Each workload still
exercises a distinct slice of the protocol:

* ``hello``   — single-threaded console output (output commit only);
* ``counter`` — two worker threads contending on one synchronized
  object (lock records / schedule records, join, notify);
* ``fileio``  — file open/write/close plus console output (side-effect
  handlers, uncertain-output testing, volatile fd state).

Workloads shrink the scheduling quantum so multi-threaded runs produce
a meaningful number of scheduling decisions (and therefore digest
epochs) within a small instruction budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.classfile.loader import ClassRegistry
from repro.minijava import compile_program
from repro.runtime.jvm import JVMConfig


@dataclass(frozen=True)
class ConformWorkload:
    """One sweepable program plus the JVM tuning it runs under."""

    name: str
    description: str
    source: str
    main_class: str = "Main"
    quantum_base: int = 20
    quantum_jitter: int = 8

    def jvm_config(self, engine: str = "slice") -> JVMConfig:
        return JVMConfig(
            quantum_base=self.quantum_base,
            quantum_jitter=self.quantum_jitter,
            max_instructions=2_000_000,
            engine=engine,
        )

    def registry(self) -> ClassRegistry:
        """Compile the workload (cached per process — the sweep builds
        many machines from the same program)."""
        cached = _REGISTRY_CACHE.get(self.name)
        if cached is None:
            cached = _REGISTRY_CACHE[self.name] = compile_program(self.source)
        return cached


_REGISTRY_CACHE: Dict[str, ClassRegistry] = {}


_HELLO = ConformWorkload(
    name="hello",
    description="single-threaded console output",
    source="""
class Main {
    static void main() {
        int total = 0;
        int i = 0;
        while (i < 5) { total = total + i * i; i = i + 1; }
        System.println("squares=" + total);
        System.println("done");
    }
}
""",
)


_COUNTER = ConformWorkload(
    name="counter",
    description="two threads contending on a synchronized counter",
    source="""
class Counter {
    int value;
    synchronized void inc() { this.value = this.value + 1; }
    synchronized int get() { return this.value; }
}
class Worker extends Thread {
    Counter counter;
    int reps;
    Worker(Counter c, int reps) { this.counter = c; this.reps = reps; }
    void run() {
        int i = 0;
        while (i < this.reps) { this.counter.inc(); i = i + 1; }
    }
}
class Main {
    static void main() {
        Counter c = new Counter();
        Worker a = new Worker(c, 6);
        Worker b = new Worker(c, 6);
        a.start();
        b.start();
        a.join();
        b.join();
        System.println("total=" + c.get());
    }
}
""",
)


_FILEIO = ConformWorkload(
    name="fileio",
    description="file writes with output commit and fd restoration",
    source="""
class Main {
    static void main() {
        int fd = Files.open("out.txt", "w");
        int i = 0;
        while (i < 4) {
            Files.writeLine(fd, "line " + i);
            i = i + 1;
        }
        Files.close(fd);
        System.println("wrote 4 lines");
    }
}
""",
)


_WORKLOADS: Dict[str, ConformWorkload] = {
    w.name: w for w in (_HELLO, _COUNTER, _FILEIO)
}


def workload_names() -> Tuple[str, ...]:
    return tuple(sorted(_WORKLOADS))


def get_workload(name: str) -> ConformWorkload:
    workload = _WORKLOADS.get(name)
    if workload is None:
        raise KeyError(
            f"unknown conform workload {name!r}; expected one of "
            f"{', '.join(workload_names())}"
        )
    return workload

"""Machine-readable conformance report.

Schema (version 1)::

    {
      "version": 1,
      "tool": "repro conform",
      "config": {
        "workloads": [...], "strategies": [...], "transports": [...],
        "seed": int, "digest_interval": int, "stride": int
      },
      "cells": [
        {
          "workload": str, "strategy": str, "transport": str,
          "total_events": int,      # crash indices in the reference run
          "crash_points": int,      # indices actually swept
          "failures": [
            {
              "crash_at": int,
              "kind": "divergence" | "output_mismatch" | "log_prefix"
                      | "no_failover" | "error",
              "detail": str,
              "components": [str, ...],   # divergence only
              "epoch": int,               # divergence only
              "shrunk_from": int          # when the shrinker reduced it
            }, ...
          ],
          "ok": bool
        }, ...
      ],
      "totals": {"cells": int, "crash_points": int, "failures": int},
      "ok": bool
    }

The tier-2 pytest wrapper (``tests/conform``) and CI's ``--quick``
smoke job both consume this structure.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.conform.sweep import CellResult, SweepConfig

REPORT_VERSION = 1


def build_report(config: SweepConfig,
                 cells: List[CellResult]) -> Dict[str, Any]:
    return {
        "version": REPORT_VERSION,
        "tool": "repro conform",
        "config": {
            "workloads": list(config.workloads),
            "strategies": list(config.strategies),
            "transports": list(config.transports),
            "seed": config.seed,
            "digest_interval": config.digest_interval,
            "stride": config.stride,
        },
        "cells": [cell.as_dict() for cell in cells],
        "totals": {
            "cells": len(cells),
            "crash_points": sum(c.crash_points for c in cells),
            "failures": sum(len(c.failures) for c in cells),
        },
        "ok": all(cell.ok for cell in cells),
    }


def write_report(path: str, report: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a report dict."""
    lines = []
    for cell in report["cells"]:
        status = "ok" if cell["ok"] else f"{len(cell['failures'])} FAILURES"
        lines.append(
            f"{cell['workload']:8s} {cell['strategy']:12s} "
            f"{cell['transport']:14s} "
            f"{cell['crash_points']:4d}/{cell['total_events']:<4d} "
            f"crash points  {status}"
        )
        for entry in cell["failures"]:
            lines.append(
                f"    crash_at={entry['crash_at']} {entry['kind']}: "
                f"{entry['detail']}"
            )
    totals = report["totals"]
    verdict = "PASS" if report["ok"] else "FAIL"
    lines.append(
        f"{verdict}: {totals['crash_points']} crash points across "
        f"{totals['cells']} cells, {totals['failures']} failure(s)"
    )
    return "\n".join(lines)

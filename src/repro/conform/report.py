"""Machine-readable conformance report.

Schema (version 1)::

    {
      "version": 1,
      "tool": "repro conform",
      "config": {
        "workloads": [...], "strategies": [...], "transports": [...],
        "engines": [...],
        "seed": int, "digest_interval": int, "stride": int
      },
      "cells": [
        {
          "workload": str, "strategy": str, "transport": str,
          "engine": str,            # execution engine of the crash runs
          "total_events": int,      # crash indices in the reference run
          "crash_points": int,      # indices actually swept
          "failures": [
            {
              "crash_at": int,
              "kind": "divergence" | "output_mismatch" | "log_prefix"
                      | "no_failover" | "error",
              "detail": str,
              "components": [str, ...],   # divergence only
              "epoch": int,               # divergence only
              "shrunk_from": int          # when the shrinker reduced it
            }, ...
          ],
          "ok": bool
        }, ...
      ],
      "totals": {"cells": int, "crash_points": int, "failures": int},
      "ok": bool
    }

The tier-2 pytest wrapper (``tests/conform``) and CI's ``--quick``
smoke job both consume this structure.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.conform.byzantine import ByzantineCellResult, ByzantineConfig
from repro.conform.chained import ChainCellResult, ChainedConfig
from repro.conform.sweep import CellResult, SweepConfig

REPORT_VERSION = 1


def build_report(config: SweepConfig,
                 cells: List[CellResult]) -> Dict[str, Any]:
    return {
        "version": REPORT_VERSION,
        "tool": "repro conform",
        "config": {
            "workloads": list(config.workloads),
            "strategies": list(config.strategies),
            "transports": list(config.transports),
            "engines": list(config.engines),
            "seed": config.seed,
            "digest_interval": config.digest_interval,
            "stride": config.stride,
        },
        "cells": [cell.as_dict() for cell in cells],
        "totals": {
            "cells": len(cells),
            "crash_points": sum(c.crash_points for c in cells),
            "failures": sum(len(c.failures) for c in cells),
        },
        "ok": all(cell.ok for cell in cells),
    }


def build_chained_report(config: ChainedConfig,
                         cells: List[ChainCellResult]) -> Dict[str, Any]:
    """Chained-failover variant of the report: one cell per matrix
    combination, one layer per swept generation."""
    return {
        "version": REPORT_VERSION,
        "tool": "repro conform --chained",
        "config": {
            "workloads": list(config.workloads),
            "strategies": list(config.strategies),
            "transports": list(config.transports),
            "engines": list(config.engines),
            "depth": config.depth,
            "seed": config.seed,
            "stride": config.stride,
            "chunk_bytes": config.chunk_bytes,
            "batch_records": config.batch_records,
            "checkpoint_intervals": list(config.checkpoint_intervals),
        },
        "cells": [cell.as_dict() for cell in cells],
        "totals": {
            "cells": len(cells),
            "crash_points": sum(c.crash_points for c in cells),
            "failures": sum(len(c.failures) for c in cells),
            "records_fenced": sum(
                layer.records_fenced for c in cells for layer in c.layers
            ),
            "steady_checkpoints": sum(
                layer.steady_checkpoints
                for c in cells for layer in c.layers
            ),
        },
        "ok": all(cell.ok for cell in cells),
    }


def render_chained_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a chained report dict."""
    lines = []
    for cell in report["cells"]:
        status = "ok" if cell["ok"] else f"{len(cell['errors']) + sum(len(l['failures']) for l in cell['layers'])} FAILURES"
        interval = cell.get("checkpoint_interval")
        lines.append(
            f"{cell['workload']:8s} {cell['strategy']:12s} "
            f"{cell['transport']:14s} {cell.get('engine', 'step'):5s} "
            f"ckpt={'off' if interval is None else interval:<4} "
            f"depth={cell['depth']} "
            f"{cell['crash_points']:4d} crash points  {status}"
        )
        for layer in cell["layers"]:
            lines.append(
                f"    gen {layer['generation']}: "
                f"{layer['crash_points']}/{layer['total_events']} indices "
                f"(transfer={layer['transfer_events']}, "
                f"pinned={layer['pinned']}, "
                f"fenced={layer['records_fenced']}, "
                f"steady={layer.get('steady_checkpoints', 0)})"
            )
            for entry in layer["failures"]:
                lines.append(
                    f"        chain={entry['crash_schedule']} "
                    f"{entry['kind']}: {entry['detail']}"
                )
        for entry in cell["errors"]:
            lines.append(f"    {entry['kind']}: {entry['detail']}")
    totals = report["totals"]
    verdict = "PASS" if report["ok"] else "FAIL"
    lines.append(
        f"{verdict}: {totals['crash_points']} chained crash points across "
        f"{totals['cells']} cells, {totals['failures']} failure(s), "
        f"{totals['records_fenced']} stale record(s) fenced"
    )
    return "\n".join(lines)


def build_byzantine_report(config: ByzantineConfig,
                           cells: List[ByzantineCellResult]
                           ) -> Dict[str, Any]:
    """Byzantine-corruption variant of the report: one cell per
    workload, one seeded lie per (artifact, lying-member role)."""
    return {
        "version": REPORT_VERSION,
        "tool": "repro conform --byzantine",
        "config": {
            "workloads": list(config.workloads),
            "n_members": config.n_members,
            "seed": config.seed,
            "digest_interval": config.digest_interval,
            "stride": config.stride,
            "engine": config.engine,
            "variants": config.variants,
            "follower_member": config.follower_member,
        },
        "cells": [cell.as_dict() for cell in cells],
        "totals": {
            "cells": len(cells),
            "corruption_points": sum(c.cells for c in cells),
            "failures": sum(len(c.failures) for c in cells),
        },
        "ok": all(cell.ok for cell in cells),
    }


def render_byzantine_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a byzantine report dict."""
    lines = []
    for cell in report["cells"]:
        status = "ok" if cell["ok"] else f"{len(cell['failures'])} FAILURES"
        variants = cell.get("variants") or "off"
        lines.append(
            f"{cell['workload']:8s} n={report['config']['n_members']} "
            f"{cell['engine']:5s} variants={variants:10s} "
            f"{cell['cells']:3d} lies "
            f"({cell['digest_epochs']} digest epochs, "
            f"{cell['output_ordinals']} outputs)  {status}"
        )
        for entry in cell["failures"]:
            lines.append(
                f"    lie={tuple(entry['lie'])} member={entry['lie_member']} "
                f"({entry['role']}) {entry['kind']}: {entry['detail']}"
            )
    totals = report["totals"]
    verdict = "PASS" if report["ok"] else "FAIL"
    lines.append(
        f"{verdict}: {totals['corruption_points']} seeded lies across "
        f"{totals['cells']} cells, {totals['failures']} failure(s)"
    )
    return "\n".join(lines)


def write_report(path: str, report: Dict[str, Any]) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a report dict."""
    lines = []
    for cell in report["cells"]:
        status = "ok" if cell["ok"] else f"{len(cell['failures'])} FAILURES"
        lines.append(
            f"{cell['workload']:8s} {cell['strategy']:12s} "
            f"{cell['transport']:14s} {cell.get('engine', 'step'):5s} "
            f"{cell['crash_points']:4d}/{cell['total_events']:<4d} "
            f"crash points  {status}"
        )
        for entry in cell["failures"]:
            lines.append(
                f"    crash_at={entry['crash_at']} {entry['kind']}: "
                f"{entry['detail']}"
            )
    totals = report["totals"]
    verdict = "PASS" if report["ok"] else "FAIL"
    lines.append(
        f"{verdict}: {totals['crash_points']} crash points across "
        f"{totals['cells']} cells, {totals['failures']} failure(s)"
    )
    return "\n".join(lines)

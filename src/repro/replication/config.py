"""One configuration surface for the replication layer.

:class:`ReplicatedJVM` and :class:`ReplicaGroup` grew overlapping
constructor keyword lists (strategy, transport, batching, detector,
crash injection, ...) that were spelled slightly differently at every
call site.  :class:`ReplicationConfig` is the single object that now
carries all of it: construct machines as
``ReplicatedJVM(registry, env=env, config=ReplicationConfig(...))``.

The old keyword arguments still work through a deprecation shim (they
are merged into the config and a :class:`DeprecationWarning` is
emitted); see DESIGN.md for the migration note.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.runtime.jvm import JVMConfig


@dataclass(frozen=True)
class ReplicaSettings:
    """Per-replica sources of non-determinism (deliberately different
    between primary and backup — restriction R0's assumption that
    replica environments are 'sufficiently different')."""

    scheduler_seed: int
    clock_offset_ms: int
    entropy_seed: int


DEFAULT_PRIMARY = ReplicaSettings(
    scheduler_seed=101, clock_offset_ms=0, entropy_seed=7001
)
DEFAULT_BACKUP = ReplicaSettings(
    scheduler_seed=202, clock_offset_ms=137, entropy_seed=9002
)


@dataclass(frozen=True)
class ReplicationConfig:
    """Everything configurable about a replicated machine.

    Shared knobs apply to both :class:`ReplicatedJVM` (one pair, one
    run) and :class:`ReplicaGroup` (generations + re-integration); the
    pair-only and group-only sections are ignored by the other class.
    """

    # -- shared ---------------------------------------------------------
    #: Coordination strategy: a name from the strategy registry or a
    #: CoordinationStrategy instance.
    strategy: Any = "lock_sync"
    #: Transport spec: None (in-memory), a profile name, "socket", a
    #: Transport instance, or a factory (see ``make_transport``; groups
    #: also accept a ``factory(generation)``).
    transport: Any = None
    #: Log records buffered per channel flush.
    batch_records: int = 64
    #: Missed heartbeat intervals before the failure detector fires.
    detector_timeout: int = 3
    #: Base JVM tunables (per-replica scheduler seeds are layered on).
    jvm_config: Optional[JVMConfig] = None
    #: Extra side-effect handlers beyond the stdlib's file/console/response.
    se_handlers: Sequence[Any] = ()
    #: Emit a DigestRecord every N replicated events (None = off).
    digest_interval: Optional[int] = None
    #: Steady-state incremental checkpointing: capture a delta
    #: checkpoint every N execution slices (None = off).  The backup
    #: side adopts each checkpoint and truncates its retained log to
    #: the tail, bounding both log memory and recovery replay.
    checkpoint_interval: Optional[int] = None
    #: Verify every adopted checkpoint by restoring it into a scratch
    #: JVM and comparing digests (catches composition bugs; costs one
    #: restore per adoption — disable for throughput benchmarks).
    verify_checkpoints: bool = True

    # -- pair only (ReplicatedJVM) --------------------------------------
    #: Injector event at which the primary fail-stops (None = never).
    crash_at: Optional[int] = None
    #: Run the backup JVM during normal operation (replay-as-you-go).
    hot_backup: bool = False
    primary: ReplicaSettings = DEFAULT_PRIMARY
    backup: ReplicaSettings = DEFAULT_BACKUP

    # -- group only (ReplicaGroup) --------------------------------------
    #: generation -> crash event (dict or sequence; None = no crashes).
    crash_schedule: Any = None
    #: Failover budget before the group gives up.
    max_failures: int = 8
    #: ``settings_for(generation)`` -> ReplicaSettings (None = default).
    settings_for: Optional[Callable[[int], ReplicaSettings]] = None
    #: Checkpoint transfer chunk size (None = DEFAULT_CHUNK_BYTES).
    chunk_bytes: Optional[int] = None
    #: Number of recovery bases maintained from the checkpoint stream.
    #: Every adopted checkpoint re-arms all k bases, so after a crash
    #: any of them can seed the next generation's backup.
    k_backups: int = 1

    # -- voting only (VotingGroup) --------------------------------------
    #: Byzantine mode: run ``n_members = 2f+1`` replicas that ballot on
    #: epoch digests and output payloads; no output is released without
    #: a quorum certificate, and an outvoted member is quarantined and
    #: re-armed through the checkpoint-transfer path.
    voting: bool = False
    #: Group size; must be odd (n = 2f+1).  f = (n-1)//2 members may
    #: lie or flip bits without the group losing exactly-once outputs.
    n_members: int = 3
    #: Multi-variant execution guard: ``"step+slice"`` pins members to
    #: alternating execution engines so any engine-specific miscompute
    #: is outvoted *and* reported as a VariantDivergence.  None runs
    #: every member on the configured base engine.
    variants: Optional[str] = None
    #: Escalate a VariantDivergence from an alarm to a raised
    #: :class:`~repro.errors.VariantDivergenceError` (fail-stop MVEE).
    variant_fail_stop: bool = False
    #: Seeded corruption injector: ``("digest", epoch)``,
    #: ``("digest", epoch, component)``, ``("output", ordinal)`` or
    #: ``("output", ordinal, arg_index)`` — flips one byte of the named
    #: digest component / output payload argument at that point, on
    #: member ``lie_member``.  Deterministic and replayable.
    lie_at: Optional[Tuple] = None
    #: Which member the corruption injector runs on (0 = the proposer,
    #: i.e. a lying primary; >0 = a bit-flipped follower).
    lie_member: int = 0
    #: Additional simultaneous liars: a sequence of ``(lie_at,
    #: lie_member)`` pairs layered on top of ``lie_at``/``lie_member``.
    #: With ``n_members = 5`` (f = 2) the group must convict two
    #: simultaneous liars in one era without losing exactly-once
    #: outputs.
    lie_specs: Sequence[Tuple] = ()

    def merged(self, **overrides) -> "ReplicationConfig":
        """A copy with ``overrides`` applied; unknown names raise
        ``TypeError`` (they would have been unknown kwargs before)."""
        known = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise TypeError(
                f"unknown replication option(s): {', '.join(unknown)}"
            )
        return replace(self, **overrides)


def config_from_kwargs(config: Optional[ReplicationConfig],
                       kwargs: dict, *, owner: str) -> ReplicationConfig:
    """The deprecation shim: fold legacy constructor keywords into a
    config, warning once per call site."""
    base = config or ReplicationConfig()
    if kwargs:
        import warnings

        warnings.warn(
            f"passing replication options to {owner} as keyword "
            f"arguments is deprecated; pass "
            f"config=ReplicationConfig(...) instead",
            DeprecationWarning, stacklevel=3,
        )
        base = base.merged(**kwargs)
    return base

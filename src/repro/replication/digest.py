"""Deterministic state digests: lockstep divergence detection.

The paper's correctness argument rests on the backup reaching a state
*identical* to the primary's; until now the repo only checked
end-of-run outputs.  This module adds the missing verification layer
(HyCoR-style lockstep state comparison): the primary periodically
digests its replicated state and ships a :class:`DigestRecord` through
the ordinary log; the backup recomputes the digest at the equivalent
point of its replay and raises
:class:`~repro.errors.DivergenceError` at the *first* divergent epoch,
naming the mismatched component, instead of silently finishing with
wrong output.

Digest structure
----------------
A :class:`StateDigest` is a set of independent 128-bit component
digests, each an *order-insensitive* combination (sum mod 2**128) of
per-item hashes, so the result does not depend on heap allocation
order, thread registration order, or visit order:

* ``heap``     — every object/array reachable from the statics and the
  live thread stacks, hashed by content with references named by
  deterministic visit ids (never by replica-local oids);
* ``frames``   — per-thread call stacks: method, pc, operand stack and
  locals;
* ``monitors`` — monitor tables of all reachable objects and the class
  locks: acquisition counts, owner, queued/waiting threads;
* ``sched``    — per-thread scheduler-visible progress: ``br_cnt``,
  ``mon_cnt``, ``t_asn``, instruction count, terminated-or-live, plus
  uncaught exceptions;
* ``env``      — the stable environment snapshot
  (:meth:`~repro.env.environment.Environment.stable_digest`).

Epochs
------
Component digests are only comparable at points where the replication
strategy guarantees replicas pass through identical global states:

* **Replicated thread scheduling** replays the full interleaving, so
  every scheduling decision is such a point.  The primary emits a
  digest after every ``interval``-th
  :class:`~repro.replication.records.ScheduleRecord` (epoch = number of
  schedule records logged); the backup compares when its replay
  controller has consumed the same number of records — true lockstep.
* **Replicated lock synchronization** replicates only the lock order;
  mid-run global states differ between replicas.  Digests are compared
  at the quiescent end-of-run point (the *final* digest, epoch 0 on
  the wire's ``final`` flag), which is exactly the state a failover
  would expose.

The ``env`` component is only compared on final digests: during replay
the shared environment already holds the primary's *later* writes, so a
mid-run comparison would be vacuous or false-positive.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import DivergenceError
from repro.replication.records import (
    KIND_DIGEST,
    ScheduleRecord,
    register_record_kind,
)
from repro.replication.wire import Reader, Writer

_MASK = (1 << 128) - 1

#: Component names, in canonical (wire and report) order.
COMPONENTS = ("heap", "frames", "monitors", "sched", "env")

#: Components compared during mid-run (lockstep) epochs; ``env`` is
#: final-only (see module docstring).
LOCKSTEP_COMPONENTS = ("heap", "frames", "monitors", "sched")


def _h(token: str) -> int:
    """128-bit hash of one item token."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8", "surrogatepass")).digest()[:16],
        "big",
    )


def _combine(hashes: Iterable[int]) -> int:
    """Order-insensitive combination of item hashes."""
    total = 0
    for value in hashes:
        total = (total + value) & _MASK
    return total


@dataclass(frozen=True)
class StateDigest:
    """Component digests of one replica's state at one epoch."""

    components: Tuple[Tuple[str, int], ...]

    def as_dict(self) -> Dict[str, int]:
        return dict(self.components)

    def hex(self) -> Dict[str, str]:
        return {name: f"{value:032x}" for name, value in self.components}

    def diff(self, other: "StateDigest",
             names: Tuple[str, ...] = COMPONENTS) -> List[str]:
        """Names of components present in both digests that differ."""
        mine, theirs = self.as_dict(), other.as_dict()
        return [
            name for name in names
            if name in mine and name in theirs and mine[name] != theirs[name]
        ]

    def fingerprint(self, names: Tuple[str, ...] = COMPONENTS) -> int:
        """A single 128-bit value summarizing the selected components.

        Voting members ballot on this scalar rather than the full
        component tuple: it is stable across replicas in equivalent
        states (component digests are), order-independent of ``names``
        permutations is *not* required (names come from one canonical
        constant), and any single-component difference changes it."""
        mine = self.as_dict()
        w = "|".join(f"{name}={mine[name]:032x}" for name in names
                     if name in mine)
        return _h("fp:" + w)


def _scalar_token(value: Any, ref_id: Callable[[Any], int]) -> str:
    from repro.runtime.values import JArray, JObject

    if value is None:
        return "null"
    if isinstance(value, (JObject, JArray)):
        return f"@{ref_id(value)}"
    if isinstance(value, float):
        return f"f{value!r}"
    if isinstance(value, str):
        return f"s{value!r}"
    return f"i{value}"


def compute_state_digest(jvm, env=None, *,
                         include_env: bool = True) -> StateDigest:
    """Digest all replication-relevant state of one JVM instance.

    Reachability starts from the statics (sorted) and the live thread
    stacks (sorted by vid), so visit ids — the replica-independent
    names for heap references — are identical on any replica in an
    equivalent state, regardless of allocation order or oids.
    """
    from repro.runtime.monitors import Monitor
    from repro.runtime.values import JArray, JObject

    visit_ids: Dict[int, int] = {}
    pending: List[Any] = []

    def ref_id(obj: Any) -> int:
        key = id(obj)
        vid = visit_ids.get(key)
        if vid is None:
            vid = visit_ids[key] = len(visit_ids)
            pending.append(obj)
        return vid

    def token(value: Any) -> str:
        return _scalar_token(value, ref_id)

    heap_items: List[int] = []
    frame_items: List[int] = []
    monitor_items: List[int] = []
    sched_items: List[int] = []

    # --- roots: statics (sorted), then threads (sorted by vid) --------
    for (class_name, field_name) in sorted(jvm.statics):
        value = jvm.statics[(class_name, field_name)]
        heap_items.append(
            _h(f"static:{class_name}.{field_name}={token(value)}")
        )

    threads = sorted(
        (t for t in jvm.scheduler.threads if not t.is_system),
        key=lambda t: t.vid,
    )
    for thread in threads:
        alive = "live" if thread.alive else "terminated"
        sched_items.append(_h(
            f"thread:{thread.vid}:{alive}:br={thread.br_cnt}"
            f":mon={thread.mon_cnt}:asn={thread.t_asn}"
            f":instr={thread.instructions}"
        ))
        if thread.thread_object is not None:
            ref_id(thread.thread_object)
        for depth, frame in enumerate(thread.frames):
            locals_tok = ",".join(token(v) for v in frame.locals)
            stack_tok = ",".join(token(v) for v in frame.stack)
            held = ",".join(f"@{ref_id(o)}" for o in frame.held_monitors)
            sync = (f"@{ref_id(frame.sync_object)}"
                    if frame.sync_object is not None else "-")
            frame_items.append(_h(
                f"frame:{thread.vid}:{depth}:{frame.method.signature}"
                f":pc={frame.pc}"
                f":L[{locals_tok}]:S[{stack_tok}]:H[{held}]:sync={sync}"
            ))
        if thread.pending_exception is not None:
            ref_id(thread.pending_exception)

    for vid_str, class_name, message in jvm.uncaught:
        sched_items.append(_h(f"uncaught:{vid_str}:{class_name}:{message}"))

    # --- breadth-first expansion over reachable objects ---------------
    def monitor_token(owner_id: int, monitor: Monitor) -> str:
        owner = (monitor.owner.vid if monitor.owner is not None
                 and not monitor.owner.is_system else "-")
        entry = ",".join(str(t.vid) for t in monitor.entry_queue)
        waiters = ",".join(str(t.vid) for t in monitor.wait_set)
        return (
            f"monitor:@{owner_id}:asn={monitor.l_asn}:owner={owner}"
            f":rec={monitor.recursion}:entry=[{entry}]:wait=[{waiters}]"
        )

    cursor = 0
    while cursor < len(pending):
        obj = pending[cursor]
        my_id = visit_ids[id(obj)]
        cursor += 1
        if isinstance(obj, JArray):
            body = ",".join(token(v) for v in obj.data)
            heap_items.append(_h(f"array:@{my_id}:{obj.elem_type}:[{body}]"))
        else:
            body = ",".join(
                f"{name}={token(obj.fields[name])}"
                for name in sorted(obj.fields)
            )
            heap_items.append(
                _h(f"object:@{my_id}:{obj.class_name}:{{{body}}}")
            )
        monitor = getattr(obj, "monitor", None)
        if monitor is not None and monitor.l_asn > 0:
            monitor_items.append(_h(monitor_token(my_id, monitor)))

    # Class locks are reachable by name, not by reference; their
    # monitors carry static-synchronized state.
    for class_name in sorted(jvm._class_locks):
        lock = jvm._class_locks[class_name]
        monitor = getattr(lock, "monitor", None)
        if monitor is not None and monitor.l_asn > 0:
            monitor_items.append(
                _h(f"classlock:{class_name}:"
                   + monitor_token(-1, monitor).replace("monitor:@-1:", ""))
            )

    components = [
        ("heap", _combine(heap_items)),
        ("frames", _combine(frame_items)),
        ("monitors", _combine(monitor_items)),
        ("sched", _combine(sched_items)),
    ]
    if include_env and env is not None:
        components.append(("env", _h("env:" + env.stable_digest())))
    return StateDigest(tuple(components))


class IncrementalStateDigest:
    """Stateful digester: reuses per-object hashes across passes.

    :func:`compute_state_digest` hashes every reachable object on every
    pass; at lockstep digest intervals most of the heap is provably
    untouched between passes.  The heap's mutation clock (PR 6's era
    machinery, see :meth:`~repro.runtime.heap.Heap.bump_era`) stamps
    every tracked mutation site — field/array stores (interpreter,
    block compiler, ``arraycopy``), monitor state changes
    (``MonitorTable._touch``), GC referent clearing, backup
    native-result adoption — so an object whose ``mut_era`` is below
    this digester's baseline *and* whose visit id (and referenced
    children's visit ids) match the previous pass contributes exactly
    the same item hash.  The component combination is order-insensitive
    (sum mod 2**128), so reusing that hash is sound.

    The BFS still walks every reachable object — visit ids must be
    assigned deterministically, and reachability itself can change —
    but a clean object skips token construction and sha256, which is
    where the time goes.  Frames, scheduler state, statics roots, class
    locks, and the environment are always recomputed: they are small
    and change every epoch.

    The cache holds strong references to its objects, so a swept
    object's ``id()`` cannot be recycled while a stale entry survives;
    the cache is rebuilt from the visited set each pass, dropping
    unreachable entries.  A replaced heap (checkpoint restore) resets
    the cache entirely.
    """

    def __init__(self, jvm, env=None) -> None:
        self._jvm = jvm
        self._env = env
        self._heap = getattr(jvm, "heap", None)
        #: id(obj) -> (obj, vid, deps, obj_hash, mon_hash|None) where
        #: deps is ((child, child_vid), ...) in tokenization order.
        self._cache: Dict[int, tuple] = {}
        self._clean_below = 0
        self.items_reused = 0
        self.items_hashed = 0

    def compute(self, *, include_env: bool = True) -> StateDigest:
        from repro.runtime.monitors import Monitor
        from repro.runtime.values import JArray, JObject

        jvm = self._jvm
        heap = getattr(jvm, "heap", None)
        if heap is None:
            # No mutation clock to lean on (stub JVMs in tests):
            # delegate to the stateless full walk.
            return compute_state_digest(jvm, self._env,
                                        include_env=include_env)
        if heap is not self._heap:
            # Restored/replaced heap: every cached identity is void.
            self._heap = heap
            self._cache = {}
            self._clean_below = 0
        cache = self._cache
        clean_below = self._clean_below
        new_cache: Dict[int, tuple] = {}

        visit_ids: Dict[int, int] = {}
        pending: List[Any] = []

        def ref_id(obj: Any) -> int:
            key = id(obj)
            vid = visit_ids.get(key)
            if vid is None:
                vid = visit_ids[key] = len(visit_ids)
                pending.append(obj)
            return vid

        def token(value: Any) -> str:
            return _scalar_token(value, ref_id)

        heap_items: List[int] = []
        frame_items: List[int] = []
        monitor_items: List[int] = []
        sched_items: List[int] = []

        # --- roots: identical to the full walk ------------------------
        for (class_name, field_name) in sorted(jvm.statics):
            value = jvm.statics[(class_name, field_name)]
            heap_items.append(
                _h(f"static:{class_name}.{field_name}={token(value)}")
            )

        threads = sorted(
            (t for t in jvm.scheduler.threads if not t.is_system),
            key=lambda t: t.vid,
        )
        for thread in threads:
            alive = "live" if thread.alive else "terminated"
            sched_items.append(_h(
                f"thread:{thread.vid}:{alive}:br={thread.br_cnt}"
                f":mon={thread.mon_cnt}:asn={thread.t_asn}"
                f":instr={thread.instructions}"
            ))
            if thread.thread_object is not None:
                ref_id(thread.thread_object)
            for depth, frame in enumerate(thread.frames):
                locals_tok = ",".join(token(v) for v in frame.locals)
                stack_tok = ",".join(token(v) for v in frame.stack)
                held = ",".join(f"@{ref_id(o)}" for o in frame.held_monitors)
                sync = (f"@{ref_id(frame.sync_object)}"
                        if frame.sync_object is not None else "-")
                frame_items.append(_h(
                    f"frame:{thread.vid}:{depth}:{frame.method.signature}"
                    f":pc={frame.pc}"
                    f":L[{locals_tok}]:S[{stack_tok}]:H[{held}]:sync={sync}"
                ))
            if thread.pending_exception is not None:
                ref_id(thread.pending_exception)

        for vid_str, class_name, message in jvm.uncaught:
            sched_items.append(
                _h(f"uncaught:{vid_str}:{class_name}:{message}")
            )

        # --- breadth-first expansion with per-object hash reuse -------
        def monitor_token(owner_id: int, monitor: Monitor) -> str:
            owner = (monitor.owner.vid if monitor.owner is not None
                     and not monitor.owner.is_system else "-")
            entry = ",".join(str(t.vid) for t in monitor.entry_queue)
            waiters = ",".join(str(t.vid) for t in monitor.wait_set)
            return (
                f"monitor:@{owner_id}:asn={monitor.l_asn}:owner={owner}"
                f":rec={monitor.recursion}:entry=[{entry}]:wait=[{waiters}]"
            )

        cursor = 0
        while cursor < len(pending):
            obj = pending[cursor]
            my_id = visit_ids[id(obj)]
            cursor += 1
            entry = cache.get(id(obj))
            if (entry is not None and entry[0] is obj
                    and obj.mut_era < clean_below and entry[1] == my_id):
                # Clean object: the children's vids must also match —
                # ref_id'ing them here performs exactly the enqueueing
                # the tokenizer would (deps are in tokenization order,
                # and a clean object's references are unchanged).
                for child, child_vid in entry[2]:
                    if ref_id(child) != child_vid:
                        break
                else:
                    heap_items.append(entry[3])
                    if entry[4] is not None:
                        monitor_items.append(entry[4])
                    new_cache[id(obj)] = entry
                    self.items_reused += 1
                    continue
            deps: List[tuple] = []

            def tok(value: Any, _deps=deps) -> str:
                if isinstance(value, (JObject, JArray)):
                    vid = ref_id(value)
                    _deps.append((value, vid))
                    return f"@{vid}"
                return _scalar_token(value, ref_id)

            if isinstance(obj, JArray):
                body = ",".join(tok(v) for v in obj.data)
                obj_hash = _h(f"array:@{my_id}:{obj.elem_type}:[{body}]")
            else:
                body = ",".join(
                    f"{name}={tok(obj.fields[name])}"
                    for name in sorted(obj.fields)
                )
                obj_hash = _h(
                    f"object:@{my_id}:{obj.class_name}:{{{body}}}"
                )
            heap_items.append(obj_hash)
            mon_hash = None
            monitor = getattr(obj, "monitor", None)
            if monitor is not None and monitor.l_asn > 0:
                mon_hash = _h(monitor_token(my_id, monitor))
                monitor_items.append(mon_hash)
            new_cache[id(obj)] = (obj, my_id, tuple(deps), obj_hash,
                                  mon_hash)
            self.items_hashed += 1

        for class_name in sorted(jvm._class_locks):
            lock = jvm._class_locks[class_name]
            monitor = getattr(lock, "monitor", None)
            if monitor is not None and monitor.l_asn > 0:
                monitor_items.append(
                    _h(f"classlock:{class_name}:"
                       + monitor_token(-1, monitor)
                       .replace("monitor:@-1:", ""))
                )

        components = [
            ("heap", _combine(heap_items)),
            ("frames", _combine(frame_items)),
            ("monitors", _combine(monitor_items)),
            ("sched", _combine(sched_items)),
        ]
        if include_env and self._env is not None:
            components.append(
                ("env", _h("env:" + self._env.stable_digest()))
            )
        self._cache = new_cache
        self._clean_below = heap.era + 1
        heap.bump_era()
        return StateDigest(tuple(components))


# ======================================================================
# The wire record
# ======================================================================
@dataclass(frozen=True)
class DigestRecord:
    """One digest checkpoint shipped primary → backup.

    ``epoch`` counts the replicated scheduling events preceding the
    checkpoint (schedule records under replicated thread scheduling);
    ``final`` marks the end-of-run digest every strategy emits.
    """

    epoch: int
    final: bool
    components: Tuple[Tuple[str, int], ...]

    def write(self, w: Writer) -> None:
        w.uvarint(KIND_DIGEST).uvarint(self.epoch)
        w.uvarint(1 if self.final else 0)
        w.uvarint(len(self.components))
        for name, value in self.components:
            w.text(name)
            w.raw(value.to_bytes(16, "big"))

    @staticmethod
    def read(r: Reader) -> "DigestRecord":
        epoch = r.uvarint()
        final = bool(r.uvarint())
        count = r.uvarint()
        components = tuple(
            (r.text(), int.from_bytes(r.raw(16), "big"))
            for _ in range(count)
        )
        return DigestRecord(epoch, final, components)

    @property
    def digest(self) -> StateDigest:
        return StateDigest(self.components)


register_record_kind(KIND_DIGEST, DigestRecord.read, core=True)


# ======================================================================
# Primary side
# ======================================================================
class DigestEmitter:
    """Observes the primary's log stream and injects digest records.

    Installed as the shipper's ``on_record`` observer: under a lockstep
    strategy it counts schedule records and, every ``interval``-th one,
    computes the state digest and logs a :class:`DigestRecord`.  The
    machine additionally calls :meth:`emit_final` from the primary's
    exit hook, so every completed run carries an end-of-run digest
    (including the stable environment component).
    """

    def __init__(self, shipper, metrics, env, *,
                 interval: Optional[int], lockstep: bool) -> None:
        self._shipper = shipper
        self._metrics = metrics
        self._env = env
        self.interval = interval
        self.lockstep = lockstep
        self.epoch = 0
        #: Set by the machine once the primary JVM exists.
        self.jvm = None
        self._emitting = False
        self._digester: Optional[IncrementalStateDigest] = None

    def _compute(self) -> StateDigest:
        """Per-epoch digests come from the incremental digester — the
        lockstep hot path re-visits only the dirty set between epochs
        (full-walk equivalence is covered by the digest test suite)."""
        if self._digester is None or self._digester._jvm is not self.jvm:
            self._digester = IncrementalStateDigest(self.jvm, self._env)
        return self._digester.compute()

    def _log_digest(self, record: DigestRecord) -> None:
        from repro.replication.records import encode

        self._emitting = True
        try:
            self._metrics.digest_records += 1
            self._metrics.digest_bytes += len(encode(record))
            self._shipper.log(record)
        finally:
            self._emitting = False

    def observe(self, record) -> None:
        """Shipper observer: one record was just logged."""
        if self._emitting or not isinstance(record, ScheduleRecord):
            return
        self.epoch += 1
        if not self.lockstep or not self.interval or self.jvm is None:
            return
        if self.epoch % self.interval:
            return
        digest = self._compute()
        self._log_digest(DigestRecord(self.epoch, False, digest.components))

    def emit_final(self) -> None:
        """End-of-run digest (the machine's exit hook)."""
        if self.jvm is None:
            return
        digest = self._compute()
        self._log_digest(DigestRecord(self.epoch, True, digest.components))


# ======================================================================
# Backup side
# ======================================================================
class DigestVerifier:
    """Recomputes and compares digests during backup replay.

    Periodic (lockstep) records are checked at the first slice boundary
    where the strategy's replay has consumed ``epoch`` schedule records
    — the exact execution point where the primary emitted them.  The
    final record is checked when the backup's run loop exits.  A
    mismatch raises :class:`~repro.errors.DivergenceError` naming the
    first divergent epoch and components.
    """

    def __init__(self, records: List[DigestRecord], env, *,
                 epoch_source: Optional[Callable[[], int]] = None) -> None:
        self._pending: List[DigestRecord] = sorted(
            (r for r in records if not r.final), key=lambda r: r.epoch
        )
        finals = [r for r in records if r.final]
        self._final: Optional[DigestRecord] = finals[-1] if finals else None
        self._env = env
        self._epoch_source = epoch_source
        self.epochs_verified = 0
        self.final_verified = False
        self._digester: Optional[IncrementalStateDigest] = None

    def extend(self, records: List[DigestRecord]) -> None:
        """Feed newly delivered digest records (hot backup)."""
        for record in records:
            if record.final:
                self._final = record
            else:
                self._pending.append(record)
        self._pending.sort(key=lambda r: r.epoch)

    @property
    def pending(self) -> int:
        return len(self._pending) + (1 if self._final is not None else 0)

    def _compare(self, record: DigestRecord, jvm,
                 names: Tuple[str, ...]) -> None:
        include_env = "env" in names
        if self._digester is None or self._digester._jvm is not jvm:
            self._digester = IncrementalStateDigest(jvm, self._env)
        local = self._digester.compute(include_env=include_env)
        mismatched = record.digest.diff(local, names)
        if mismatched:
            expected = record.digest.hex()
            got = local.hex()
            detail = "; ".join(
                f"{name}: primary={expected[name]} backup={got[name]}"
                for name in mismatched
            )
            raise DivergenceError(record.epoch, mismatched, detail)
        self.epochs_verified += 1

    def check_slice(self, jvm) -> None:
        """Compare every pending lockstep record whose epoch the replay
        has reached (called from the backup's slice-end hook)."""
        if self._epoch_source is None or not self._pending:
            return
        consumed = self._epoch_source()
        while self._pending and self._pending[0].epoch <= consumed:
            record = self._pending.pop(0)
            self._compare(record, jvm, LOCKSTEP_COMPONENTS)

    def check_final(self, jvm) -> None:
        """Compare the end-of-run digest (called from the exit hook)."""
        self.check_slice(jvm)
        if self._final is None:
            return
        record, self._final = self._final, None
        names = LOCKSTEP_COMPONENTS + (("env",) if self._env is not None
                                       else ())
        self._compare(record, jvm, names)
        self.final_verified = True

"""Side-effect handlers (paper §4.4).

A handler manages a family of related native methods whose execution
creates *volatile* environment state or produces output that needs
exactly-once semantics.  The five methods map one-to-one onto the
paper's interface:

* ``register`` — claims the native signatures the handler manages (the
  machine wires this up from the native specs' ``se_handler`` field);
* ``log``     — primary, after an output (or tracked input) executes:
  returns the payload shipped to the backup;
* ``receive`` — backup, while scanning the delivered log: folds payloads
  into a compact state (e.g. one offset per file descriptor, the
  paper's example of compressing several file writes);
* ``restore`` — backup, once, at the end of recovery: rebuilds volatile
  environment state (reopens files, seeks to the saved offsets);
* ``test``    — backup, for the one *uncertain* output (the last log
  record is an intent with no completion marker): queries the
  environment to decide whether the output happened before the crash.

Handlers for the standard libraries (files, console) are installed
automatically at startup; applications can register their own through
:meth:`SideEffectManager.add_handler`, mirroring the paper's
user-supplied handlers.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional

from repro.env.environment import Environment, EnvSession
from repro.env.port import request_id
from repro.errors import ReplicationError
from repro.replication.records import SideEffectRecord
from repro.runtime.natives import NativeOutcome, NativeSpec
from repro.runtime.stdlib import text_of


def _op_of(spec: NativeSpec) -> str:
    """``Files.write/2`` → ``write``."""
    return spec.signature.split(".", 1)[1].split("/", 1)[0]


class SideEffectHandler:
    """Base handler; subclasses override what they need."""

    name = ""

    def fresh(self) -> "SideEffectHandler":
        """A handler instance fit for a brand-new machine.

        :meth:`ReplicatedJVM.clone` calls this so any state a stateful
        handler accumulated during a run cannot leak into the next
        sweep iteration.  The default shallow copy suits stateless
        handlers; handlers with mutable attributes should override."""
        return copy.copy(self)

    def log(self, session: EnvSession, spec: NativeSpec, receiver,
            args: List[Any], outcome: NativeOutcome) -> Optional[Dict[str, Any]]:
        """Primary: capture post-execution state; None = nothing to log."""
        return None

    def receive(self, state: Dict[str, Any], payload: Dict[str, Any]) -> None:
        """Backup: fold one payload into the handler's compact state."""

    def restore(self, session: EnvSession, state: Dict[str, Any]) -> None:
        """Backup: rebuild volatile environment state, once."""

    def test(self, env: Environment, state: Dict[str, Any], spec: NativeSpec,
             args: List[Any]) -> bool:
        """Backup: did the uncertain output complete before the crash?"""
        return False

    def confirm(self, session: EnvSession, state: Dict[str, Any],
                spec: NativeSpec, args: List[Any]) -> None:
        """Backup: the uncertain output *did* complete — update volatile
        state as if it had been executed (e.g. advance the fd offset)."""


class FileSEHandler(SideEffectHandler):
    """Manages ``Files.*``: fd table and offsets (the paper's example)."""

    name = "file"

    # ------------------------------ primary ---------------------------
    def log(self, session, spec, receiver, args, outcome):
        if outcome.exception is not None:
            return None
        op = _op_of(spec)
        if op == "open":
            fd = outcome.value
            handle = session.handle(fd)
            return {"op": "open", "fd": fd, "path": args[0],
                    "mode": args[1], "offset": handle.tell()}
        if op in ("write", "writeLine", "readLine", "readChar", "seek"):
            fd = args[0]
            return {"op": "pos", "fd": fd, "offset": session.handle(fd).tell()}
        if op == "close":
            return {"op": "close", "fd": args[0]}
        return None

    # ------------------------------ backup ----------------------------
    def receive(self, state, payload):
        op = payload["op"]
        fd = payload["fd"]
        if op == "open":
            state[fd] = {"path": payload["path"], "mode": payload["mode"],
                         "offset": payload["offset"]}
        elif op == "pos":
            if fd in state:
                state[fd]["offset"] = payload["offset"]
        elif op == "close":
            state.pop(fd, None)

    def restore(self, session, state):
        for fd in sorted(state):
            entry = state[fd]
            session.restore_fd(fd, entry["path"], entry["offset"], entry["mode"])

    def test(self, env, state, spec, args):
        op = _op_of(spec)
        if op in ("write", "writeLine"):
            fd = args[0]
            text = args[1] + ("\n" if op == "writeLine" else "")
            entry = state.get(fd)
            if entry is None:
                return False
            path, offset = entry["path"], entry["offset"]
            if not env.fs.exists(path):
                return False
            content = env.fs.contents(path)
            return (
                len(content) >= offset + len(text)
                and content[offset:offset + len(text)] == text
            )
        # open/seek/close: treated as replayable (open re-executes
        # deterministically as the last operation; seek/close are
        # idempotent and never reach test()).
        return False

    def confirm(self, session, state, spec, args):
        op = _op_of(spec)
        if op in ("write", "writeLine"):
            fd = args[0]
            text = args[1] + ("\n" if op == "writeLine" else "")
            entry = state.get(fd)
            if entry is not None:
                entry["offset"] += len(text)
                session.handle(fd).seek(entry["offset"])


class ConsoleSEHandler(SideEffectHandler):
    """Manages ``System.print``/``println``: the console transcript is
    stable, so there is no volatile state to restore — only the
    position query that makes console output *testable* (R5)."""

    name = "console"

    def log(self, session, spec, receiver, args, outcome):
        if outcome.exception is not None:
            return None
        return {"op": "pos", "pos": session.env.console.position()}

    def receive(self, state, payload):
        state["pos"] = payload["pos"]

    def test(self, env, state, spec, args):
        text = text_of(args[0])
        if _op_of(spec) == "println":
            text += "\n"
        expected = state.get("pos", 0) + len(text)
        return env.console.position() >= expected


class ResponseSEHandler(SideEffectHandler):
    """Manages ``Server.reply``: the response log is stable state, so
    there is no volatile state to restore — only the membership query
    that makes a reply *testable* (R5).  A response is keyed by its
    request id, and the program answers each request once, so the
    uncertain reply completed before the crash iff its id is in the
    log."""

    name = "response"

    def log(self, session, spec, receiver, args, outcome):
        if outcome.exception is not None:
            return None
        return {"op": "count", "count": session.env.responses.count()}

    def receive(self, state, payload):
        state["count"] = payload["count"]

    def test(self, env, state, spec, args):
        return env.responses.has(request_id(args[0]))


class SideEffectManager:
    """Owns all handlers and their per-handler backup state."""

    def __init__(self) -> None:
        self._handlers: Dict[str, SideEffectHandler] = {}
        self._state: Dict[str, Dict[str, Any]] = {}
        self.restored = False
        for handler in (FileSEHandler(), ConsoleSEHandler(),
                        ResponseSEHandler()):
            self.add_handler(handler)

    def add_handler(self, handler: SideEffectHandler) -> None:
        if not handler.name:
            raise ReplicationError("side-effect handler needs a name")
        if handler.name in self._handlers:
            raise ReplicationError(
                f"side-effect handler {handler.name!r} registered twice"
            )
        self._handlers[handler.name] = handler
        self._state[handler.name] = {}

    def handler(self, name: str) -> SideEffectHandler:
        handler = self._handlers.get(name)
        if handler is None:
            raise ReplicationError(
                f"R6 violated: native references unknown side-effect "
                f"handler {name!r}"
            )
        return handler

    # ------------------------------ primary ---------------------------
    def log(self, session: EnvSession, spec: NativeSpec, receiver,
            args: List[Any],
            outcome: NativeOutcome) -> Optional[SideEffectRecord]:
        handler = self.handler(spec.se_handler)
        payload = handler.log(session, spec, receiver, args, outcome)
        if payload is None:
            return None
        return SideEffectRecord(spec.se_handler, payload)

    # ------------------------------ backup ----------------------------
    def receive(self, record: SideEffectRecord) -> None:
        handler = self.handler(record.handler)
        handler.receive(self._state[record.handler], record.payload)

    def restore(self, session: EnvSession) -> None:
        """Rebuild all volatile state; idempotent (runs once)."""
        if self.restored:
            return
        self.restored = True
        for name in sorted(self._handlers):
            self._handlers[name].restore(session, self._state[name])

    def test(self, env: Environment, spec: NativeSpec,
             args: List[Any]) -> bool:
        handler = self.handler(spec.se_handler)
        return handler.test(env, self._state[spec.se_handler], spec, args)

    def confirm(self, session: EnvSession, spec: NativeSpec,
                args: List[Any]) -> None:
        handler = self.handler(spec.se_handler)
        handler.confirm(session, self._state[spec.se_handler], spec, args)

    def state_of(self, name: str) -> Dict[str, Any]:
        return self._state[name]

    # ------------------------------ checkpointing ----------------------
    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Deep copy of every handler's compact state, for inclusion in
        a checkpoint (the handler *instances* are not serialized — a
        restoring replica re-creates them and adopts this state)."""
        return copy.deepcopy(self._state)

    def restore_snapshot(self, state: Dict[str, Dict[str, Any]]) -> None:
        """Adopt a checkpointed state; the next :meth:`restore` call
        rebuilds volatile environment state from it."""
        for name in state:
            self.handler(name)  # unknown handler → ReplicationError
        self._state = copy.deepcopy(state)
        self.restored = False

"""Quorum-voted digests: Byzantine-tolerant voting replication.

The paper's protocol assumes *fail-stop* replicas: a primary that dies
is detectably dead, and everything it shipped before dying is true.  A
lying primary — one that ships a corrupted state digest, or proposes an
output payload that does not match its own replicated execution —
breaks that assumption silently: the 1:1 pair would commit the wrong
output and never notice.  :class:`VotingGroup` closes that gap with
``n = 2f + 1`` members that *ballot* on every comparable artifact:

* the **proposer** (initially member 0) executes with the ordinary
  primary instrumentation and ships its log through one channel; every
  epoch :class:`~repro.replication.digest.DigestRecord` it emits and
  every output payload it is about to release becomes a proposal it
  votes for;
* the **followers** are hot replicas replaying the delivered log in
  lockstep (replicated thread scheduling).  Where the 1:1 hot backup
  *compares* digests and raises on mismatch, a follower here
  *recomputes and votes*; where it would silently hold at an
  un-markered output intent, it peeks the already-materialized
  arguments off the replaying thread's stack and votes on the payload
  it independently computed;
* a :class:`QuorumTally` collects the ballots.  ``f + 1`` matching
  votes form a :class:`QuorumCertificate`; **no output is released
  without one** (the shipper's ``commit_gate`` runs inside output
  commit, after the flush/ack round trip and before the native
  executes).  A member whose vote disagrees with a certificate is
  *convicted* — quarantined immediately, and re-armed later from a
  digest-verified checkpoint shipped through the same channel the arm
  transfer uses;
* a convicted **proposer** is deposed exactly like a crashed primary:
  its session is destroyed, the channel fences, the lowest healthy
  member is promoted by replaying the era basis + retained log
  (resolving the uncertain output with its *own, honestly recomputed*
  arguments), and a fresh era re-arms every slot — including the
  quarantined liar — via checkpoint transfer.

Multi-variant execution guard (MVEE)
------------------------------------
With ``variants="step+slice"`` the members are pinned to alternating
execution engines.  The engines are contractually bit-identical, so in
an honest run the guard is silent; any divergence between engines
shows up as an outvoted ballot whose engine differs from the
certificate's voters and is reported as a :class:`VariantDivergence`
(and, with ``variant_fail_stop=True``, raised as
:class:`~repro.errors.VariantDivergenceError`).

Fault injection
---------------
:class:`LieSpec` / :class:`CorruptionInjector` implement the seeded,
deterministic corruption hooks tests and ``repro conform --byzantine``
drive: ``("digest", epoch[, component])`` flips one component of the
member's digest proposal/ballot at that epoch; ``("output", ordinal[,
arg_index])`` flips one byte of the output payload at that ordinal —
on the proposer the *actual proposed arguments* are corrupted in
place, so the lie would reach the environment if the quorum failed to
stop it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.classfile.loader import ClassRegistry
from repro.env.channel import Channel
from repro.env.environment import Environment
from repro.env.port import INGEST_SIGNATURE
from repro.errors import (
    AlreadyRanError,
    PrimaryOutvoted,
    QuorumLostError,
    RecoveryError,
    ReplicationError,
    VariantDivergenceError,
)
from repro.replication.checkpoint import (
    DEFAULT_CHUNK_BYTES,
    Checkpoint,
    CheckpointAssembler,
    CheckpointChunkRecord,
    first_dispatch_vid,
    restore_checkpoint,
    take_checkpoint,
)
from repro.replication.commit import CrashInjector, EpochFence, LogShipper
from repro.replication.config import ReplicationConfig, config_from_kwargs
from repro.replication.digest import (
    LOCKSTEP_COMPONENTS,
    DigestEmitter,
    DigestRecord,
    DigestVerifier,
    StateDigest,
    _h,
    compute_state_digest,
)
from repro.replication.failure import FailureDetector
from repro.replication.machine import parse_log, register_log_record
from repro.replication.metrics import ReplicationMetrics
from repro.replication.ndnatives import BackupNativePolicy, PrimaryNativePolicy
from repro.replication.records import (
    KIND_VOTE,
    decode_record,
    encode,
    register_record_kind,
)
from repro.replication.sehandlers import SideEffectManager
from repro.replication.strategy import resolve_strategy
from repro.replication.supervisor import (
    MemberSlot,
    MemberState,
    default_generation_settings,
)
from repro.replication.transport import Transport, make_transport
from repro.replication.wire import Reader, Writer
from repro.runtime.jvm import JVM, JVMConfig, RunHooks, RunResult
from repro.runtime.natives import NativeRegistry
from repro.runtime.scheduler import SliceEnd
from repro.runtime.stdlib import default_natives
from repro.runtime.threads import ThreadState
from repro.runtime.values import JArray, JObject

Vid = Tuple[int, ...]


# ======================================================================
# The wire record (plug-in record kind 12)
# ======================================================================
@dataclass(frozen=True)
class VoteRecord:
    """One ballot, serialized through the ordinary log.

    The tally itself is fed synchronously (all members share one
    process), so the wire copy is the *audit trail*: every vote any
    member cast travels to the followers inside the same epoch-stamped
    stream as the records it judges, survives a deposition in the
    retained log, and is fenced/truncated by exactly the same rules.
    ``index`` is the per-subject coordinate: ``(epoch,)`` for periodic
    digests, ``(*vid, seq)`` for outputs, ``()`` for the final digest.
    """

    member: int
    era: int
    subject: str                 # "digest" | "output" | "final"
    index: Vid
    value: int                   # 128-bit fingerprint
    engine: str = ""

    def write(self, w: Writer) -> None:
        w.uvarint(KIND_VOTE).uvarint(self.member).uvarint(self.era)
        w.text(self.subject).vid(self.index)
        w.raw(self.value.to_bytes(16, "big")).text(self.engine)

    @staticmethod
    def read(r: Reader) -> "VoteRecord":
        return VoteRecord(
            r.uvarint(), r.uvarint(), r.text(), r.vid(),
            int.from_bytes(r.raw(16), "big"), r.text(),
        )


register_record_kind(KIND_VOTE, VoteRecord.read, core=True)
register_log_record(VoteRecord)


# ======================================================================
# Votes, certificates, verdicts, tally
# ======================================================================
@dataclass(frozen=True)
class Vote:
    """One member's ballot on one subject instance."""

    member: int
    era: int
    subject: str
    index: Vid
    value: int
    engine: str = ""

    @property
    def key(self) -> Tuple[str, int, Vid]:
        return (self.subject, self.era, self.index)


@dataclass(frozen=True)
class QuorumCertificate:
    """``f + 1`` matching votes on one subject instance."""

    subject: str
    era: int
    index: Vid
    value: int
    voters: Tuple[int, ...]

    @property
    def key(self) -> Tuple[str, int, Vid]:
        return (self.subject, self.era, self.index)


@dataclass(frozen=True)
class Verdict:
    """One ruling the tally hands back from :meth:`QuorumTally.add`.

    ``certified`` announces a fresh certificate; ``outvoted`` names a
    member whose vote disagrees with its slot's certificate (including
    votes cast *before* the certificate formed); ``equivocation`` names
    a member that voted two different values for one subject — proof of
    fault with no quorum needed.
    """

    kind: str                    # "certified" | "outvoted" | "equivocation"
    member: Optional[int]
    key: Tuple[str, int, Vid]
    certificate: Optional[QuorumCertificate] = None
    expected: Optional[int] = None
    got: Optional[int] = None
    engine: str = ""


class QuorumTally:
    """Ballot box for an ``n = 2f + 1`` group.

    Duplicate votes are idempotent; a convicted member's votes are
    ignored until :meth:`rearm`; votes for eras below the truncation
    floor (set when an era's log is superseded) are discarded.  With at
    most two distinct values in a slot an exact tie is impossible:
    ``2f + 1`` voters cannot split ``q : q`` with ``q = f + 1``.
    """

    def __init__(self, n_members: int) -> None:
        if n_members < 1 or n_members % 2 == 0:
            raise ReplicationError(
                f"a voting group needs an odd member count (n = 2f + 1), "
                f"got {n_members}"
            )
        self.n = n_members
        self.f = (n_members - 1) // 2
        self.quorum = self.f + 1
        self._slots: Dict[Tuple[str, int, Vid], Dict[int, Vote]] = {}
        self._certs: Dict[Tuple[str, int, Vid], QuorumCertificate] = {}
        #: (key, member) pairs already ruled on — a member is judged at
        #: most once per subject instance.
        self._ruled: set = set()
        self.convicted: set = set()
        self.floor_era = 0
        self.votes_accepted = 0
        self.votes_ignored = 0

    # ------------------------------------------------------------------
    def certificate(self, key) -> Optional[QuorumCertificate]:
        return self._certs.get(tuple(key))

    def votes_for(self, key) -> Dict[int, Vote]:
        return dict(self._slots.get(tuple(key), {}))

    def convict(self, member: int) -> None:
        self.convicted.add(member)

    def rearm(self, member: int) -> None:
        self.convicted.discard(member)

    def truncate_below(self, era: int) -> None:
        """Drop every slot and certificate from eras below ``era`` (the
        voting analogue of log truncation at a checkpoint boundary) and
        ignore any straggler votes for them from now on."""
        self.floor_era = era
        for table in (self._slots, self._certs):
            for key in [k for k in table if k[1] < era]:
                del table[key]
        self._ruled = {
            (key, member) for (key, member) in self._ruled
            if key[1] >= era
        }

    def uncertified(self, era: int) -> List[Tuple[str, int, Vid]]:
        """Subject instances of ``era`` that never reached a quorum."""
        return sorted(
            key for key in self._slots
            if key[1] == era and key not in self._certs
        )

    def certified(self, era: int) -> List[QuorumCertificate]:
        """Certificates formed in ``era`` (probe surface for sweeps)."""
        return [cert for key, cert in sorted(self._certs.items())
                if key[1] == era]

    # ------------------------------------------------------------------
    def add(self, vote: Vote) -> List[Verdict]:
        """Tally one ballot; returns any verdicts it triggers."""
        key = vote.key
        if vote.era < self.floor_era or vote.member in self.convicted:
            self.votes_ignored += 1
            return []
        slot = self._slots.setdefault(key, {})
        prior = slot.get(vote.member)
        if prior is not None:
            if prior.value == vote.value:
                self.votes_ignored += 1      # duplicate: idempotent
                return []
            self.votes_accepted += 1
            if (key, vote.member) in self._ruled:
                return []
            self._ruled.add((key, vote.member))
            return [Verdict(
                "equivocation", vote.member, key,
                certificate=self._certs.get(key),
                expected=prior.value, got=vote.value, engine=vote.engine,
            )]
        self.votes_accepted += 1
        slot[vote.member] = vote

        verdicts: List[Verdict] = []
        cert = self._certs.get(key)
        if cert is None:
            counts: Dict[int, List[int]] = {}
            for v in slot.values():
                counts.setdefault(v.value, []).append(v.member)
            for value, members in counts.items():
                if len(members) >= self.quorum:
                    cert = QuorumCertificate(
                        vote.subject, vote.era, vote.index, value,
                        tuple(sorted(members)),
                    )
                    self._certs[key] = cert
                    verdicts.append(Verdict("certified", None, key,
                                            certificate=cert))
                    break
        if cert is not None:
            # Rule on every disagreeing vote in the slot — including
            # ones cast before the certificate formed.
            for member in sorted(slot):
                v = slot[member]
                if v.value != cert.value and (key, member) not in self._ruled:
                    self._ruled.add((key, member))
                    verdicts.append(Verdict(
                        "outvoted", member, key, certificate=cert,
                        expected=cert.value, got=v.value, engine=v.engine,
                    ))
        return verdicts


# ======================================================================
# Seeded corruption injection
# ======================================================================
@dataclass
class LieSpec:
    """Where and how one member lies (deterministic, fires once).

    ``("digest", epoch)`` / ``("digest", epoch, component)`` — corrupt
    the named digest component at that emission epoch (the final digest
    matches on its closing epoch count as well);
    ``("output", ordinal)`` / ``("output", ordinal, arg_index)`` — flip
    the payload argument of the member's ``ordinal``-th output
    (0-based; ``arg_index`` defaults to the last argument, -1).
    """

    kind: str
    target: int
    detail: Any
    member: int = 0

    @staticmethod
    def parse(lie_at, lie_member: int) -> Optional["LieSpec"]:
        if lie_at is None:
            return None
        if not isinstance(lie_at, (tuple, list)) or len(lie_at) < 2:
            raise ReplicationError(
                f"lie_at must be (kind, target[, detail]); got {lie_at!r}"
            )
        kind = lie_at[0]
        if kind == "digest":
            detail = lie_at[2] if len(lie_at) > 2 else "heap"
            if detail not in LOCKSTEP_COMPONENTS:
                raise ReplicationError(
                    f"digest lie component must be one of "
                    f"{LOCKSTEP_COMPONENTS}, got {detail!r}"
                )
            return LieSpec("digest", int(lie_at[1]), detail, lie_member)
        if kind == "output":
            detail = int(lie_at[2]) if len(lie_at) > 2 else -1
            return LieSpec("output", int(lie_at[1]), detail, lie_member)
        raise ReplicationError(
            f"lie_at kind must be 'digest' or 'output', got {kind!r}"
        )


def _flip_scalar(value: Any) -> Any:
    """The one-bit corruption: deterministic, type-preserving."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ 1
    if isinstance(value, float):
        return -value if value else 1.0
    if isinstance(value, str):
        return (chr(ord(value[0]) ^ 1) + value[1:]) if value else "\x01"
    return value


class CorruptionInjector:
    """Fires each configured :class:`LieSpec` exactly once, replayably.

    With one spec this is the single-liar injector of PR 8; a list of
    specs arms *simultaneous* liars (up to f of them) — each fires
    independently at its own deterministic point, and each fires at
    most once.  The ``lies_on_*`` probes return the matched spec (or
    ``None``) so the corruption helpers know which lie to apply.
    """

    def __init__(self, specs) -> None:
        if specs is None or isinstance(specs, LieSpec):
            specs = [specs]
        self.specs: List[LieSpec] = [s for s in specs if s is not None]
        #: (kind, member, where) tuples of fired corruptions.
        self.fired: List[Tuple] = []
        self._fired_specs: set = set()
        self._output_ordinals: Dict[int, int] = {}

    @property
    def exhausted(self) -> bool:
        return len(self._fired_specs) >= len(self.specs)

    @property
    def liars(self) -> List[int]:
        """Members armed to lie, sorted and deduplicated."""
        return sorted({s.member for s in self.specs})

    def lies_on_digest(self, member: int, epoch: int) -> Optional[LieSpec]:
        for i, s in enumerate(self.specs):
            if (i not in self._fired_specs and s.kind == "digest"
                    and s.member == member and s.target == epoch):
                self._fired_specs.add(i)
                self.fired.append(("digest", member, epoch))
                return s
        return None

    def corrupt_components(
        self, spec: LieSpec, components: Tuple[Tuple[str, int], ...]
    ) -> Tuple[Tuple[str, int], ...]:
        target = spec.detail
        return tuple(
            (name, value ^ 1 if name == target else value)
            for name, value in components
        )

    def lies_on_output(self, member: int) -> Optional[LieSpec]:
        """Counts this member's output and decides whether to corrupt
        it.  The ordinal advances per output so the lie lands at one
        deterministic, replayable point."""
        if not any(s.kind == "output" and s.member == member
                   for s in self.specs):
            return None
        ordinal = self._output_ordinals.get(member, 0)
        self._output_ordinals[member] = ordinal + 1
        for i, s in enumerate(self.specs):
            if (i not in self._fired_specs and s.kind == "output"
                    and s.member == member and s.target == ordinal):
                self._fired_specs.add(i)
                self.fired.append(("output", member, ordinal))
                return s
        return None

    def corrupt_args(self, spec: LieSpec, args: List[Any]) -> None:
        """Flip the targeted argument *in place* — a lying proposer's
        corruption must be the payload it would actually execute."""
        if not args:
            return
        index = spec.detail
        try:
            value = args[index]
        except IndexError:
            index = -1
            value = args[index]
        if isinstance(value, JArray):
            if value.data:
                value.data[0] = _flip_scalar(value.data[0])
            return
        if isinstance(value, JObject):
            for name in sorted(value.fields):
                if not isinstance(value.fields[name], (JObject, JArray)):
                    value.fields[name] = _flip_scalar(value.fields[name])
                    return
            return
        args[index] = _flip_scalar(value)


# ======================================================================
# Payload fingerprints
# ======================================================================
def _payload_token(value: Any) -> str:
    """Replica-independent token of one output argument.  Heap values
    are named by content (class/element data, scalar fields), never by
    oids; nested references collapse to a marker — deterministic on
    both sides, which is all a fingerprint needs."""
    if value is None:
        return "null"
    if isinstance(value, JArray):
        body = ",".join(_payload_token(v) for v in value.data)
        return f"A{value.elem_type}[{body}]"
    if isinstance(value, JObject):
        body = ",".join(
            f"{name}="
            + ("&" if isinstance(value.fields[name], (JObject, JArray))
               else _payload_token(value.fields[name]))
            for name in sorted(value.fields)
        )
        return f"O{value.class_name}{{{body}}}"
    if isinstance(value, bool):
        return f"b{value}"
    if isinstance(value, float):
        return f"f{value!r}"
    if isinstance(value, str):
        return f"s{value!r}"
    return f"i{value}"


def output_fingerprint(signature: str, args: List[Any]) -> int:
    """128-bit fingerprint of one output command's full payload."""
    return _h("out:" + signature + "|"
              + "|".join(_payload_token(a) for a in args))


# ======================================================================
# Events
# ======================================================================
@dataclass
class QuarantineEvent:
    """One conviction: who, why, and whether they were re-armed."""

    era: int
    member: int
    role: str                    # "proposer" | "follower"
    reason: str
    subject: str = ""
    index: Vid = ()
    expected: Optional[int] = None
    got: Optional[int] = None
    rearmed: bool = False
    rearmed_era: Optional[int] = None


@dataclass(frozen=True)
class VariantDivergence:
    """The MVEE guard's alarm: an outvoted ballot whose engine differs
    from the certificate's voters — an engine-specific miscompute."""

    era: int
    subject: str
    index: Vid
    member: int
    engine: str
    majority_engines: Tuple[str, ...]
    expected: Optional[int]
    got: Optional[int]

    def __str__(self) -> str:
        return (
            f"era {self.era} {self.subject}@{self.index}: member "
            f"{self.member} ({self.engine}) disagrees with quorum "
            f"engines {self.majority_engines}"
        )


@dataclass
class EraReport:
    """What happened while one era's proposer held the role."""

    era: int
    proposer: int
    outcome: str = "pending"     # "completed"|"deposed"|"completed_in_recovery"
    proposer_metrics: Optional[ReplicationMetrics] = None
    recovery_metrics: Optional[ReplicationMetrics] = None
    checkpoint_bytes: int = 0
    checkpoint_chunks: int = 0
    rearms: int = 0


@dataclass
class VotingResult:
    """Outcome of one voting-group run."""

    outcome: str                 # "completed" | "completed_in_recovery"
    result: RunResult
    reports: List[EraReport]
    incidents: List[QuarantineEvent]
    divergences: List[VariantDivergence]
    metrics: ReplicationMetrics
    members: List[MemberSlot]
    final_era: int
    final_jvm: Optional[JVM] = None

    @property
    def depositions(self) -> int:
        return sum(1 for i in self.incidents if i.role == "proposer")


# ======================================================================
# Hooks
# ======================================================================
class _ProposerHooks(RunHooks):
    """Heartbeats, end-of-run digest, and the group's slice-boundary
    work: vote-wire drain, verdict processing (which may depose the
    proposer right here), and pending follower re-arms."""

    def __init__(self, group: "VotingGroup", channel: Channel,
                 emitter: DigestEmitter) -> None:
        self._group = group
        self._channel = channel
        self._emitter = emitter

    def on_slice_end(self, jvm, thread, reason) -> None:
        self._channel.heartbeat()
        self._group._on_proposer_slice(jvm, thread, reason)

    def on_exit(self, jvm, result) -> None:
        self._emitter.emit_final()


class _FollowerHooks(RunHooks):
    """Digest balloting at slice boundaries and exit (the voting
    analogue of the hot pair's verifier hooks)."""

    def __init__(self, verifier: DigestVerifier) -> None:
        self._verifier = verifier

    def on_slice_end(self, jvm, thread, reason) -> None:
        self._verifier.check_slice(jvm)

    def on_exit(self, jvm, result) -> None:
        self._verifier.check_final(jvm)


class _ProposingEmitter(DigestEmitter):
    """The proposer's digest emitter: every record it would ship first
    passes through the group, which casts the proposer's ballot and —
    under a seeded digest lie — corrupts the shipped proposal itself."""

    def __init__(self, group: "VotingGroup", *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._group = group

    def _log_digest(self, record: DigestRecord) -> None:
        record = self._group._propose_digest(record)
        super()._log_digest(record)


class _VotingVerifier(DigestVerifier):
    """A follower's verifier: instead of raising on mismatch, recompute
    the local digest and ballot on it.  Disagreement is settled by the
    quorum, not by the first replica to notice."""

    def __init__(self, group: "VotingGroup", runtime: "_MemberRuntime",
                 records, env, *, epoch_source=None) -> None:
        super().__init__(records, env, epoch_source=epoch_source)
        self._group = group
        self._runtime = runtime

    def _compare(self, record: DigestRecord, jvm, names) -> None:
        self._group._ballot_digest(self._runtime, record, jvm)
        self.epochs_verified += 1


@dataclass
class _MemberRuntime:
    """One incarnation of a follower: the replica JVM plus its feed
    plumbing.  Destroyed at quarantine; a re-arm builds a fresh one."""

    slot: MemberSlot
    jvm: JVM
    se_manager: SideEffectManager
    policy: BackupNativePolicy
    driver: Any
    controller: Any
    verifier: _VotingVerifier
    fence: EpochFence
    metrics: ReplicationMetrics
    fed: int = 0
    result: Optional[RunResult] = None
    voted_outputs: set = field(default_factory=set)


class _DemotionBoundary(Exception):
    """Internal control flow: the proposer reached a replayable
    safe-point with a demotion pending; unwind to the driver loop,
    which tears the era down and re-arms the group on the oracle
    engine."""


# ======================================================================
# The group
# ======================================================================
class VotingGroup:
    """``2f + 1`` members, quorum-gated output commit, automatic
    quarantine and checkpoint re-arm.  See the module docstring."""

    def __init__(
        self,
        registry: ClassRegistry,
        natives: Optional[NativeRegistry] = None,
        env: Optional[Environment] = None,
        *,
        config: Optional[ReplicationConfig] = None,
        **kwargs,
    ) -> None:
        config = config_from_kwargs(config, kwargs, owner="VotingGroup")
        self.config = config
        self._strategy = resolve_strategy(config.strategy)
        if not self._strategy.lockstep_digest:
            raise ReplicationError(
                "voting requires a lockstep strategy (per-epoch digest "
                "comparison); use strategy='thread_sched'"
            )
        if config.crash_at is not None or config.crash_schedule is not None:
            raise ReplicationError(
                "voting mode convicts on evidence, not on injected "
                "fail-stop; use lie_at instead of crash_at/crash_schedule"
            )
        if config.checkpoint_interval is not None:
            raise ReplicationError(
                "steady-state log truncation would drop records out from "
                "under the hot followers; voting manages its own "
                "checkpoint transfers"
            )
        if config.variants not in (None, "step+slice"):
            raise ReplicationError(
                f"unknown variants mode {config.variants!r}; expected "
                f"None or 'step+slice'"
            )
        if config.hot_backup:
            raise ReplicationError(
                "hot_backup is the 1:1 pair's replay-as-you-go mode; a "
                "voting group's followers are always hot — drop "
                "hot_backup when voting=True"
            )
        n = config.n_members
        if n < 1 or n % 2 == 0:
            raise ReplicationError(
                f"n_members must be odd (n = 2f + 1), got {n}"
            )
        if not 0 <= config.lie_member < n:
            raise ReplicationError(
                f"lie_member {config.lie_member} out of range for "
                f"{n} members"
            )
        lie_specs = [LieSpec.parse(config.lie_at, config.lie_member)]
        for extra_at, extra_member in config.lie_specs:
            if not 0 <= extra_member < n:
                raise ReplicationError(
                    f"lie_specs member {extra_member} out of range for "
                    f"{n} members"
                )
            lie_specs.append(LieSpec.parse(extra_at, extra_member))
        lie_specs = [s for s in lie_specs if s is not None]
        if len({s.member for s in lie_specs}) > (n - 1) // 2:
            raise ReplicationError(
                f"{len({s.member for s in lie_specs})} distinct liars "
                f"exceed the fault budget f = {(n - 1) // 2} of an "
                f"n = {n} group; the quorum could certify a lie"
            )

        self.registry = registry
        self.natives = natives or default_natives()
        self.env = env or Environment()
        self.n = n
        self.base_config = config.jvm_config or JVMConfig()
        self.batch_records = config.batch_records
        self.chunk_bytes = (DEFAULT_CHUNK_BYTES if config.chunk_bytes is None
                            else config.chunk_bytes)
        self.digest_interval = (config.digest_interval
                                if config.digest_interval is not None else 2)
        self.variants = config.variants
        self.variant_fail_stop = config.variant_fail_stop
        self.max_failures = config.max_failures
        self._extra_se_handlers = list(config.se_handlers)
        self._transport_spec = config.transport
        self._transport_template_used = False

        engines = self._engine_cycle()
        self.slots: List[MemberSlot] = [
            MemberSlot(
                index=i, engine=engines[i % len(engines)],
                detector=FailureDetector(config.detector_timeout),
            )
            for i in range(n)
        ]
        self.tally = QuorumTally(n)
        self.injector = CorruptionInjector(lie_specs)
        #: Group-lifetime voting counters (the per-era proposer wire
        #: metrics are folded in at the end of the run).
        self.metrics = ReplicationMetrics(role="voting-group")
        self.metrics.engine = self.base_config.engine
        self.incidents: List[QuarantineEvent] = []
        self.divergences: List[VariantDivergence] = []
        self.reports: List[EraReport] = []
        self.final_jvm: Optional[JVM] = None
        #: Fleet hook: called with each VariantDivergence as it is
        #: confirmed (a DegradationController subscribes here).
        self.on_divergence: Optional[Callable[[VariantDivergence], None]] \
            = None
        #: (era, engine) pairs, one per completed demotion.
        self.demotions: List[Tuple[int, str]] = []

        # --- per-era state --------------------------------------------
        self._era = 0
        self._proposer_idx = 0
        self._proposer_jvm: Optional[JVM] = None
        self._proposer_se: Optional[SideEffectManager] = None
        self._proposer_policy: Optional[PrimaryNativePolicy] = None
        self._emitter: Optional[_ProposingEmitter] = None
        self._shipper: Optional[LogShipper] = None
        self._channel: Optional[Channel] = None
        self._transport: Optional[Transport] = None
        self._era_metrics: Optional[ReplicationMetrics] = None
        self._followers: Dict[int, _MemberRuntime] = {}
        self._basis: Optional[Checkpoint] = None
        self._basis_era = -1
        self._pending_output_key = None
        self._vote_wire: List[VoteRecord] = []
        self._verdict_queue: List[Verdict] = []
        self._rearm_pending: List[int] = []
        self._incident_by_member: Dict[int, QuarantineEvent] = {}
        self._pumping = False
        self._processing = False
        self._ran = False

        # --- serving + demotion state ---------------------------------
        self._serve_port: Optional[str] = None
        self._serve_main: Optional[str] = None
        self._serve_args: Optional[List[str]] = None
        self._serve_result: Optional[VotingResult] = None
        self._port_basis = 0
        self._demote_to: Optional[str] = None

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _engine_cycle(self) -> Tuple[str, ...]:
        base = self.base_config.engine
        if self.variants is None:
            return (base,)
        return (base, "step" if base == "slice" else "slice")

    def _settings(self, era: int, index: int):
        """Per-(era, member) non-determinism sources: every incarnation
        runs with distinct seeds, and replication/voting must succeed
        despite them (restriction R0, now n-way)."""
        return default_generation_settings(era * self.n + index)

    def _jvm_config_for(self, era: int, slot: MemberSlot) -> JVMConfig:
        return replace(
            self.base_config,
            scheduler_seed=self._settings(era, slot.index).scheduler_seed,
            engine=slot.engine,
        )

    def _make_transport(self) -> Transport:
        spec = self._transport_spec
        if isinstance(spec, Transport):
            if self._transport_template_used:
                return spec.fresh()
            self._transport_template_used = True
            return spec
        if callable(spec):
            built = spec(self._era)
            return (built if isinstance(built, Transport)
                    else make_transport(built))
        return make_transport(spec)

    def _make_se_manager(self) -> SideEffectManager:
        manager = SideEffectManager()
        for handler in self._extra_se_handlers:
            manager.add_handler(handler.fresh())
        return manager

    def _session_name(self, slot: MemberSlot, era: int) -> str:
        return f"m{slot.index}-e{era}-r{slot.incarnation}"

    @staticmethod
    def _finish_metrics(jvm: JVM, metrics: ReplicationMetrics,
                        transport: Optional[Transport] = None) -> None:
        metrics.instructions = jvm.instructions
        metrics.cf_changes = sum(t.br_cnt for t in jvm.scheduler.threads)
        metrics.engine = jvm.config.engine
        metrics.blocks_compiled = jvm.interpreter.blocks_compiled
        metrics.block_cache_hits = jvm.interpreter.block_cache_hits
        metrics.heavy_ops = jvm.heavy_ops
        metrics.native_calls = jvm.native_calls
        metrics.locks_acquired = jvm.sync.total_acquisitions
        metrics.objects_locked = jvm.sync.monitors_created
        metrics.largest_l_asn = jvm.sync.largest_l_asn
        metrics.reschedules = jvm.scheduler.reschedules
        if transport is not None:
            stats = transport.stats
            metrics.retransmits = stats.retransmits
            metrics.messages_dropped = stats.messages_dropped
            metrics.messages_duplicated = stats.messages_duplicated
            metrics.backpressure_stalls = stats.backpressure_stalls
            metrics.heartbeats_sent = stats.heartbeats_sent
            metrics.heartbeats_delivered = stats.heartbeats_delivered

    # ------------------------------------------------------------------
    # Balloting
    # ------------------------------------------------------------------
    def _cast(self, vote: Vote) -> None:
        self.metrics.votes_cast += 1
        self._vote_wire.append(VoteRecord(
            vote.member, vote.era, vote.subject, vote.index, vote.value,
            vote.engine,
        ))
        verdicts = self.tally.add(vote)
        if verdicts:
            self._verdict_queue.extend(verdicts)
        cert = self.tally.certificate(vote.key)
        if cert is not None and vote.value == cert.value:
            # A vote matching the certificate is out-of-band proof of
            # health: clear any heartbeat-based suspicion.
            slot = self.slots[vote.member]
            if slot.absolve():
                self.metrics.suspicions_cleared += 1

    def _propose_digest(self, record: DigestRecord) -> DigestRecord:
        slot = self.slots[self._proposer_idx]
        lie = self.injector.lies_on_digest(slot.index, record.epoch)
        if lie is not None:
            record = DigestRecord(
                record.epoch, record.final,
                self.injector.corrupt_components(lie, record.components),
            )
        subject = "final" if record.final else "digest"
        index: Vid = () if record.final else (record.epoch,)
        value = record.digest.fingerprint(LOCKSTEP_COMPONENTS)
        self._cast(Vote(slot.index, self._era, subject, index, value,
                        slot.engine))
        return record

    def _ballot_digest(self, runtime: _MemberRuntime, record: DigestRecord,
                       jvm: JVM) -> None:
        slot = runtime.slot
        local = compute_state_digest(jvm, include_env=False)
        value = local.fingerprint(LOCKSTEP_COMPONENTS)
        if self.injector.lies_on_digest(slot.index, record.epoch) is not None:
            value ^= 1
        subject = "final" if record.final else "digest"
        index: Vid = () if record.final else (record.epoch,)
        self._cast(Vote(slot.index, self._era, subject, index, value,
                        slot.engine))

    def _on_output_propose(self, jvm, spec, thread, receiver, args,
                           seq: int) -> None:
        slot = self.slots[self._proposer_idx]
        lie = self.injector.lies_on_output(slot.index)
        if lie is not None:
            # Corrupt the *actual* proposal in place: if the quorum
            # failed to veto, this payload would reach the environment.
            self.injector.corrupt_args(lie, args)
        index = tuple(thread.vid) + (seq,)
        value = output_fingerprint(spec.signature, list(args))
        self._pending_output_key = ("output", self._era, index)
        self._cast(Vote(slot.index, self._era, "output", index, value,
                        slot.engine))

    def _on_output_hold(self, runtime: _MemberRuntime, jvm, spec, method,
                        thread, intent) -> None:
        index = tuple(thread.vid) + (intent.seq,)
        key = ("output", self._era, index)
        if key in runtime.voted_outputs:
            return
        runtime.voted_outputs.add(key)
        # The replaying thread stands right before the invoke: receiver
        # and arguments are still on the operand stack, exactly the
        # payload this replica independently computed.
        n_args = method.nargs + (0 if method.is_static else 1)
        stack = thread.frames[-1].stack
        args = list(stack[-n_args:]) if n_args else []
        value = output_fingerprint(spec.signature, args)
        slot = runtime.slot
        if self.injector.lies_on_output(slot.index) is not None:
            value ^= 1                  # a bit-flipped follower's ballot
        self._cast(Vote(slot.index, self._era, "output", index, value,
                        slot.engine))

    # ------------------------------------------------------------------
    # Verdict processing
    # ------------------------------------------------------------------
    def _process_verdicts(self) -> None:
        if self._processing:
            return
        self._processing = True
        deposed: Optional[PrimaryOutvoted] = None
        try:
            while self._verdict_queue:
                verdict = self._verdict_queue.pop(0)
                if verdict.kind == "certified":
                    self.metrics.quorum_certs += 1
                    continue
                try:
                    self._handle_misvote(verdict)
                except PrimaryOutvoted as exc:
                    # Defer the deposition until the queue drains: with
                    # simultaneous liars (f >= 2) a follower conviction
                    # queued behind the proposer's verdict must not be
                    # dropped by _depose clearing the queue.
                    if deposed is None:
                        deposed = exc
        finally:
            self._processing = False
        if deposed is not None:
            raise deposed

    def _handle_misvote(self, verdict: Verdict) -> None:
        member = verdict.member
        slot = self.slots[member]
        subject, era, index = verdict.key
        if self.variants is not None and verdict.certificate is not None:
            majority = tuple(sorted({
                v.engine
                for v in self.tally.votes_for(verdict.key).values()
                if v.value == verdict.certificate.value and v.engine
            }))
            # Engine-correlated only: if the loser's engine also voted
            # with the majority, the fault is the member, not the
            # engine — no MVEE alarm.
            if verdict.engine and majority and \
                    verdict.engine not in majority:
                divergence = VariantDivergence(
                    era, subject, index, member, verdict.engine, majority,
                    verdict.expected, verdict.got,
                )
                self.divergences.append(divergence)
                self.metrics.variant_divergences += 1
                if self.on_divergence is not None:
                    self.on_divergence(divergence)
                if self.variant_fail_stop:
                    raise VariantDivergenceError(divergence)
        reason = f"{verdict.kind}:{subject}@{'.'.join(map(str, index))}"
        if slot.index == self._proposer_idx:
            raise PrimaryOutvoted(verdict)
        if slot.state == MemberState.CONVICTED:
            return
        slot.convict(reason)
        self.tally.convict(member)
        self.metrics.members_quarantined += 1
        event = QuarantineEvent(
            era=era, member=member, role="follower", reason=reason,
            subject=subject, index=index,
            expected=verdict.expected, got=verdict.got,
        )
        self.incidents.append(event)
        self._incident_by_member[member] = event
        runtime = self._followers.pop(member, None)
        if runtime is not None:
            runtime.jvm.session.destroy()
        self._rearm_pending.append(member)

    # ------------------------------------------------------------------
    # The quorum gate (shipper.commit_gate)
    # ------------------------------------------------------------------
    def _blocked_members(self) -> frozenset:
        """Members a chaos transport currently partitions away from the
        group (empty on ordinary transports)."""
        fn = getattr(self._transport, "blocked_members", None)
        return frozenset() if fn is None else fn()

    def _quorum_wait_step(self) -> bool:
        """One step of waiting for a quorum that has not formed yet:
        poll the transport (retransmits, heartbeats, partition heals all
        live there), and when the only thing standing between us and a
        certificate is a scheduled partition, jump the chaos clock to
        its next boundary.  Returns False when there is nothing left to
        wait for — the quorum is genuinely lost."""
        transport = self._transport
        if transport is None:
            return False
        if transport.poll():
            return True
        advance = getattr(transport, "chaos_advance", None)
        if advance is not None and self._blocked_members():
            return bool(advance())
        return False

    def _commit_gate(self) -> None:
        """Runs inside every output commit, after the flush/ack round
        trip (which pumped the followers to the held native and let
        them ballot) and before the output may execute.

        This is the no-split-brain gate: a proposer on the minority
        side of a partition starves here — its blocked followers cast
        no ballots, no certificate forms, and the output never reaches
        the environment.  The wait loop below keeps polling (partitions
        heal, backlogs flood in, absolved members vote) and only gives
        up when the transport has nothing left to deliver."""
        self.metrics.outputs_gated += 1
        self._pump()                     # the ack delivered the intent
        self._process_verdicts()
        key = self._pending_output_key
        if key is None:
            return
        self._pending_output_key = None
        while self.tally.certificate(key) is None:
            if not self._quorum_wait_step():
                raise QuorumLostError(
                    f"output {key[2]} has no quorum certificate "
                    f"({self.tally.quorum} matching votes of {self.n} "
                    f"needed)"
                )
            self._pump()
            self._process_verdicts()

    # ------------------------------------------------------------------
    # Vote wire + slice-boundary work
    # ------------------------------------------------------------------
    def _drain_vote_wire(self) -> None:
        if self._shipper is None or self._shipper.channel.closed:
            return
        while self._vote_wire:
            record = self._vote_wire.pop(0)
            self.metrics.vote_bytes += len(encode(record))
            self._shipper.log(record)

    def _on_proposer_slice(self, jvm, thread, reason) -> None:
        self._drain_vote_wire()
        self._pump()
        self._process_verdicts()         # may raise PrimaryOutvoted
        replayable = reason in (SliceEnd.QUANTUM, SliceEnd.YIELDED) \
            and not thread.is_system \
            and thread.state is ThreadState.RUNNABLE
        if self._rearm_pending and replayable:
            # A replayable boundary (same rule as steady checkpoints):
            # the descheduled thread is `current`, so the snapshot
            # restores with set_resume_vid, exactly like the arm path.
            self._rearm_followers(jvm)
        if self._demote_to is not None and replayable:
            raise _DemotionBoundary()

    # ------------------------------------------------------------------
    # Pump (feed followers from the shared delivered log)
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        if self._pumping or self._channel is None:
            return
        self._pumping = True
        try:
            delivered = self._channel.delivered
            blocked = self._blocked_members()
            for runtime in list(self._followers.values()):
                if runtime.slot.index in blocked:
                    # Partitioned away: its feed offset freezes (the
                    # backlog floods in at heal) and silence across
                    # enough intervals makes it *suspected* — a
                    # recoverable state, never a conviction.
                    if len(delivered) > runtime.fed:
                        if runtime.slot.detector.interval() \
                                and runtime.slot.suspect():
                            self.metrics.members_suspected += 1
                    continue
                new_raw = delivered[runtime.fed:]
                runtime.fed = len(delivered)
                if new_raw:
                    inner = runtime.fence.filter_raw(new_raw)
                    parsed = parse_log(inner)
                    for record in parsed.side_effects:
                        runtime.se_manager.receive(record)
                    runtime.policy.extend(parsed.results, parsed.intents)
                    runtime.driver.extend_from(parsed)
                    if parsed.digests:
                        runtime.verifier.extend(parsed.digests)
                    runtime.jvm.sync.reevaluate_parked()
                if runtime.result is None:
                    result = runtime.jvm.run_to_completion(
                        pause_on_starvation=True
                    )
                    if result is not None:
                        runtime.result = result
                if new_raw and runtime.result is None:
                    # Delivered work is the expectation of progress; a
                    # member that stalls across enough feedings is
                    # *suspected* (recoverable), never convicted.
                    if runtime.slot.detector.interval() \
                            and runtime.slot.suspect():
                        self.metrics.members_suspected += 1
        finally:
            self._pumping = False

    # ------------------------------------------------------------------
    # Member construction
    # ------------------------------------------------------------------
    def _boot(self, main_class: str, args: Optional[List[str]]
              ) -> Tuple[JVM, SideEffectManager]:
        """Era 0's fresh boot of the first proposer."""
        slot = self.slots[0]
        settings = self._settings(0, 0)
        session = self.env.attach(
            self._session_name(slot, 0),
            clock_offset_ms=settings.clock_offset_ms,
            entropy_seed=settings.entropy_seed,
        )
        jvm = JVM(self.registry, self.natives, session,
                  self._jvm_config_for(0, slot),
                  name=self._session_name(slot, 0))
        jvm.bootstrap(main_class, args)
        return jvm, self._make_se_manager()

    def _assemble(self, start: int) -> Checkpoint:
        """Reassemble the checkpoint whose chunks were shipped after
        record index ``start`` of the delivered log."""
        raw = self._channel.backup_log()[start:]
        fence = EpochFence(self._era, self._era_metrics)
        assembler = CheckpointAssembler()
        checkpoint: Optional[Checkpoint] = None
        for data in fence.filter_raw(raw):
            record = decode_record(data)
            if isinstance(record, CheckpointChunkRecord):
                assembled = assembler.feed(record)
                if assembled is not None:
                    checkpoint = assembled
        if checkpoint is None:
            raise ReplicationError(
                f"era {self._era} checkpoint transfer acknowledged but "
                f"never assembled"
            )
        return checkpoint

    def _build_follower(self, slot: MemberSlot, checkpoint: Checkpoint,
                        fed_from: int) -> _MemberRuntime:
        """Build one follower incarnation by restoring the transferred
        checkpoint (:func:`restore_checkpoint` digest-verifies it — a
        torn or corrupted transfer is rejected, not adopted)."""
        era = self._era
        slot.incarnation += 1
        slot.role = "follower"
        settings = self._settings(era, slot.index)
        session = self.env.attach(
            self._session_name(slot, era),
            clock_offset_ms=settings.clock_offset_ms,
            entropy_seed=settings.entropy_seed,
        )
        config = self._jvm_config_for(era, slot)
        metrics = ReplicationMetrics(role="follower")
        se_manager = self._make_se_manager()
        jvm = restore_checkpoint(
            checkpoint, self.registry, self.natives, session, config,
            name=self._session_name(slot, era), se_manager=se_manager,
        )
        metrics.checkpoints_restored += 1

        policy = BackupNativePolicy({}, {}, se_manager, metrics)
        policy.hold_when_drained = True
        policy.seed_seqs(checkpoint.state().native_seqs)
        jvm.native_policy = policy
        driver = self._strategy.make_backup(parse_log([]), metrics,
                                            settings, config)
        driver.install(jvm)
        driver.set_hold(True)
        controller = driver.controller
        controller.tail_gate = policy.has_uncertain_tail
        controller.set_resume_vid(first_dispatch_vid(jvm))
        jvm.scheduler.release_current()
        jvm.sync.reevaluate_parked()

        base_epoch = checkpoint.sched_epoch
        verifier = _VotingVerifier(
            self, None, [], self.env,
            epoch_source=lambda c=controller, b=base_epoch: b + c.consumed,
        )
        runtime = _MemberRuntime(
            slot=slot, jvm=jvm, se_manager=se_manager, policy=policy,
            driver=driver, controller=controller, verifier=verifier,
            fence=EpochFence(era, metrics), metrics=metrics, fed=fed_from,
        )
        verifier._runtime = runtime
        policy.on_output_hold = (
            lambda jvm_, spec, method, thread, intent, rt=runtime:
            self._on_output_hold(rt, jvm_, spec, method, thread, intent)
        )
        jvm.run_hooks = _FollowerHooks(verifier)
        slot.detector.reset(source=lambda j=jvm: j.instructions)
        return runtime

    # ------------------------------------------------------------------
    # Era arming
    # ------------------------------------------------------------------
    def _arm_era(self, jvm: JVM, se_manager: SideEffectManager,
                 recovery_metrics: Optional[ReplicationMetrics]) -> None:
        """Instrument ``jvm`` as this era's proposer, ship its quiescent
        checkpoint, and build every follower from it — including any
        quarantined member, which this transfer re-arms."""
        era = self._era
        slot = self.slots[self._proposer_idx]
        slot.role = "proposer"
        transport = self._make_transport()
        channel = Channel(batch_records=self.batch_records,
                          transport=transport)
        metrics = ReplicationMetrics(role="proposer")
        shipper = LogShipper(channel, metrics, CrashInjector(), epoch=era)
        shipper.commit_gate = self._commit_gate
        report = EraReport(era=era, proposer=slot.index,
                           recovery_metrics=recovery_metrics)
        self._transport = transport
        self._channel = channel
        self._shipper = shipper
        self._era_metrics = metrics
        self.reports.append(report)

        # Quiescent snapshot first, then proposer instrumentation — the
        # checkpoint must not contain proposer-side hooks.  No
        # native_seqs: each era's fresh proposer policy restarts native
        # numbering at 1, and the followers must count the same way.
        checkpoint = take_checkpoint(
            jvm, se_manager, generation=era,
            env_snapshot=self.env.snapshot_stable(),
        )
        report.checkpoint_bytes = checkpoint.byte_size

        policy = PrimaryNativePolicy(shipper, metrics, se_manager)
        policy.on_output_propose = self._on_output_propose
        jvm.native_policy = policy
        settings = self._settings(era, slot.index)
        driver = self._strategy.make_primary(
            shipper, metrics, settings, self._jvm_config_for(era, slot)
        )
        driver.install(jvm)
        emitter = _ProposingEmitter(
            self, shipper, metrics, self.env,
            interval=self.digest_interval,
            lockstep=self._strategy.lockstep_digest,
        )
        emitter.jvm = jvm
        shipper.on_record = emitter.observe
        jvm.run_hooks = _ProposerHooks(self, channel, emitter)
        jvm.sync.reevaluate_parked()
        self._proposer_jvm = jvm
        self._proposer_se = se_manager
        self._proposer_policy = policy
        self._emitter = emitter

        start = len(channel.delivered)
        chunks = checkpoint.to_chunks(self.chunk_bytes)
        report.checkpoint_chunks = len(chunks)
        for chunk in chunks:
            shipper.log(chunk)
            metrics.checkpoint_records += 1
            metrics.checkpoint_bytes += len(chunk.data)
        shipper.checkpoint_commit()
        assembled = self._assemble(start)
        self._basis = assembled
        self._basis_era = era
        if self._serve_port is not None:
            # Takes so far are baked into this era's basis; only
            # post-basis recv records count at the next reconciliation.
            self._port_basis = len(self.env.port(self._serve_port).consumed)

        fed_from = len(channel.delivered)
        self._followers = {}
        for other in self.slots:
            if other.index == slot.index:
                continue
            self._followers[other.index] = self._build_follower(
                other, assembled, fed_from
            )
            if other.state == MemberState.CONVICTED:
                other.rearm()
                self.tally.rearm(other.index)
                self.metrics.members_rearmed += 1
                report.rearms += 1
                event = self._incident_by_member.pop(other.index, None)
                if event is not None:
                    event.rearmed = True
                    event.rearmed_era = era
                if other.index in self._rearm_pending:
                    self._rearm_pending.remove(other.index)

    def _rearm_followers(self, jvm: JVM) -> None:
        """Mid-era re-arm: at a replayable slice boundary, snapshot the
        live proposer and rebuild every quarantined member from the
        digest-verified transfer.  The log is *not* truncated — healthy
        followers have consumed it and their feed offsets are absolute;
        chunk records pass harmlessly through their parse."""
        pending, self._rearm_pending = list(self._rearm_pending), []
        if not pending:
            return
        era = self._era
        report = self.reports[-1]
        checkpoint = take_checkpoint(
            jvm, self._proposer_se, generation=era,
            env_snapshot=self.env.snapshot_stable(),
            native_seqs=self._proposer_policy.native_seqs(),
            sched_epoch=self._emitter.epoch,
        )
        start = len(self._channel.delivered)
        chunks = checkpoint.to_chunks(self.chunk_bytes)
        for chunk in chunks:
            self._shipper.log(chunk)
            self._era_metrics.checkpoint_records += 1
            self._era_metrics.checkpoint_bytes += len(chunk.data)
        self._shipper.checkpoint_commit()
        assembled = self._assemble(start)
        fed_from = len(self._channel.delivered)
        for index in pending:
            slot = self.slots[index]
            self._followers[index] = self._build_follower(
                slot, assembled, fed_from
            )
            slot.rearm()
            self.tally.rearm(index)
            self.metrics.members_rearmed += 1
            report.rearms += 1
            event = self._incident_by_member.pop(index, None)
            if event is not None:
                event.rearmed = True
                event.rearmed_era = era

    # ------------------------------------------------------------------
    # Deposition and recovery
    # ------------------------------------------------------------------
    def _depose(self, outvoted: PrimaryOutvoted) -> List[bytes]:
        """Quarantine the convicted proposer exactly like a crashed
        primary: destroy it, fence the channel, capture the delivered
        log as the promotion replay's input."""
        era = self._era
        idx = self._proposer_idx
        slot = self.slots[idx]
        verdict = outvoted.verdict
        reason = "outvoted:proposer"
        subject, index = "", ()
        expected = got = None
        if isinstance(verdict, Verdict):
            subject, _, index = verdict.key
            expected, got = verdict.expected, verdict.got
            reason = f"{verdict.kind}:{subject}"
        slot.convict(reason)
        self.tally.convict(idx)
        self.metrics.members_quarantined += 1
        event = QuarantineEvent(
            era=era, member=idx, role="proposer", reason=reason,
            subject=subject, index=index, expected=expected, got=got,
        )
        self.incidents.append(event)
        self._incident_by_member[idx] = event
        self._verdict_queue.clear()
        self._vote_wire.clear()
        self._pending_output_key = None

        report = self.reports[-1]
        report.outcome = "deposed"
        report.proposer_metrics = self._era_metrics
        self._finish_metrics(self._proposer_jvm, self._era_metrics,
                             self._transport)
        self._proposer_jvm.session.destroy()
        self._channel.crash_primary()
        raw = self._channel.backup_log()
        for runtime in self._followers.values():
            runtime.jvm.session.destroy()
        self._followers = {}
        self._transport.close()
        return raw

    def _next_proposer(self) -> int:
        for slot in self.slots:
            if slot.state != MemberState.CONVICTED:
                return slot.index
        raise QuorumLostError(
            "every member of the voting group is convicted; no healthy "
            "replica left to promote"
        )

    def _recover(self, raw: List[bytes]
                 ) -> Tuple[JVM, SideEffectManager, Optional[RunResult],
                            ReplicationMetrics]:
        """Promote the next healthy member: restore the era basis,
        fence and replay the retained log in hold mode, resolve the
        uncertain output with honestly recomputed arguments, promote."""
        era = self._era
        slot = self.slots[self._proposer_idx]
        slot.incarnation += 1
        metrics = ReplicationMetrics(role="recovery")
        settings = self._settings(era, slot.index)
        session = self.env.attach(
            self._session_name(slot, era),
            clock_offset_ms=settings.clock_offset_ms,
            entropy_seed=settings.entropy_seed,
        )
        config = self._jvm_config_for(era, slot)
        se_manager = self._make_se_manager()

        fence = EpochFence(max(self._basis_era, 0), metrics)
        inner = fence.filter_raw(raw)
        jvm = restore_checkpoint(
            self._basis, self.registry, self.natives, session, config,
            name=self._session_name(slot, era), se_manager=se_manager,
        )
        metrics.checkpoints_restored += 1

        parsed = parse_log(inner)
        metrics.recovery_tail_records = parsed.total
        self._reconcile_port(parsed, metrics)
        for record in parsed.side_effects:
            se_manager.receive(record)
        policy = BackupNativePolicy(
            parsed.results, parsed.intents, se_manager, metrics
        )
        policy.hold_when_drained = True
        policy.seed_seqs(self._basis.state().native_seqs)
        jvm.native_policy = policy
        driver = self._strategy.make_backup(parsed, metrics, settings,
                                            config)
        driver.install(jvm)
        driver.set_hold(True)
        controller = driver.controller
        controller.tail_gate = policy.has_uncertain_tail
        controller.set_resume_vid(first_dispatch_vid(jvm))
        jvm.scheduler.release_current()
        jvm.sync.reevaluate_parked()

        result = jvm.run_to_completion(pause_on_starvation=True)
        if result is None and any(
            policy.has_uncertain_tail(t.vid) for t in jvm.scheduler.threads
        ):
            # The deposed proposer's uncertain output: its intent is in
            # the log but the (possibly corrupted) payload died with it.
            # Re-execution here uses this replica's own recomputed
            # arguments — the lie cannot survive its liar.
            policy.tail_resolution = True
            controller.starving = False
            jvm.sync.reevaluate_parked()
            result = jvm.run_to_completion(pause_on_starvation=True)
        if result is None and policy.remaining():
            raise RecoveryError(
                f"era {era} promotion stalled with {policy.remaining()} "
                f"unreplayed native record(s)"
            )

        # Promotion cleanup (same residue-stripping as the supervisor).
        for obj in jvm.heap.objects:
            monitor = getattr(obj, "monitor", None)
            if monitor is not None:
                monitor.l_id = None
        jvm.sync.notify_wakes_all = False
        jvm.scheduler.release_current()
        jvm.scheduler.last_reason = None
        se_manager.restore(jvm.session)

        if result is None:
            policy.hold_when_drained = False
            driver.set_hold(False)
            controller.starving = False
        return jvm, se_manager, result, metrics

    # ------------------------------------------------------------------
    # Final round
    # ------------------------------------------------------------------
    def _finish_era(self, result: RunResult) -> VotingResult:
        """The proposer completed: settle the wire, drive every healthy
        follower to its final ballot, and require a certificate for
        every subject instance of the era."""
        self._drain_vote_wire()
        self._channel.settle()           # flush → pump → final replays
        self._pump()
        blocked = self._blocked_members()
        for runtime in self._followers.values():
            # Still partitioned at era end: the member cannot reach its
            # final ballot, so it finishes *suspected* — recoverable
            # silence, never a conviction — and the quorum must close
            # without its votes (f+1 of the remaining members).
            if runtime.slot.index in blocked and runtime.slot.suspect():
                self.metrics.members_suspected += 1
        for runtime in list(self._followers.values()):
            if runtime.result is not None:
                continue
            if runtime.slot.index in blocked:
                continue
            runtime.policy.hold_when_drained = False
            runtime.driver.set_hold(False)
            runtime.controller.starving = False
            runtime.jvm.sync.reevaluate_parked()
            runtime.result = runtime.jvm.run_to_completion()
        for runtime in self._followers.values():
            if runtime.slot.index in blocked:
                continue
            # A follower that completed its replay before the final
            # digest record arrived exited with nothing to compare;
            # cast its final ballot now that the record is here.
            runtime.verifier.check_final(runtime.jvm)
        self._process_verdicts()         # may raise PrimaryOutvoted
        missing = self.tally.uncertified(self._era)
        if missing:
            raise QuorumLostError(
                f"era {self._era} ended with {len(missing)} uncertified "
                f"subject(s): {missing[:3]}"
            )
        report = self.reports[-1]
        report.outcome = "completed"
        report.proposer_metrics = self._era_metrics
        self._finish_metrics(self._proposer_jvm, self._era_metrics,
                             self._transport)
        self._transport.close()
        self.final_jvm = self._proposer_jvm
        return self._build_result("completed", result)

    def _build_result(self, outcome: str, result: RunResult) -> VotingResult:
        self._aggregate_metrics()
        return VotingResult(
            outcome=outcome,
            result=result,
            reports=self.reports,
            incidents=self.incidents,
            divergences=self.divergences,
            metrics=self.metrics,
            members=self.slots,
            final_era=self._era,
            final_jvm=self.final_jvm,
        )

    def _aggregate_metrics(self) -> None:
        """Fold the per-era proposer wire/protocol counters into the
        group-lifetime metrics, so one object prices the whole run."""
        int_fields = [
            name for name, value in vars(ReplicationMetrics()).items()
            if isinstance(value, int) and not isinstance(value, bool)
        ]
        for report in self.reports:
            for metrics in (report.proposer_metrics,
                            report.recovery_metrics):
                if metrics is None:
                    continue
                for name in int_fields:
                    if name.startswith(("votes_", "vote_", "quorum_",
                                        "outputs_gated", "members_",
                                        "suspicions_", "variant_")):
                        continue     # group-owned, never per-era
                    setattr(self.metrics, name,
                            getattr(self.metrics, name)
                            + getattr(metrics, name))

    # ------------------------------------------------------------------
    # Failover (shared by run() and the serving pump)
    # ------------------------------------------------------------------
    def _failover(self, deposed: PrimaryOutvoted) -> Optional[RunResult]:
        """Depose the convicted proposer and promote the next healthy
        member.  Returns the final result when the program completed
        during recovery replay; None when serving/execution continues
        under a freshly armed era."""
        raw = self._depose(deposed)
        self._era += 1
        if self._era > self.max_failures:
            raise ReplicationError(
                f"voting group exhausted its failure budget "
                f"({self.max_failures}) — giving up"
            )
        self._proposer_idx = self._next_proposer()
        self.tally.truncate_below(self._era)
        jvm, se_manager, recovered, recovery_metrics = self._recover(raw)
        if recovered is not None:
            self.final_jvm = jvm
            self.reports.append(EraReport(
                era=self._era, proposer=self._proposer_idx,
                outcome="completed_in_recovery",
                recovery_metrics=recovery_metrics,
            ))
            self._finish_metrics(jvm, recovery_metrics)
            return recovered
        self._arm_era(jvm, se_manager, recovery_metrics)
        return None

    # ------------------------------------------------------------------
    # Graceful degradation (engine demotion)
    # ------------------------------------------------------------------
    def request_demotion(self, engine: str = "step") -> None:
        """Ask the group to rebuild itself onto ``engine`` at the next
        replayable safe-point boundary.  The live era keeps serving
        until the boundary; the demotion itself re-arms every member —
        including any quarantined one — through the checkpoint-transfer
        path under a fresh era."""
        if engine not in ("step", "slice"):
            raise ReplicationError(
                f"cannot demote to unknown engine {engine!r}; expected "
                f"'step' or 'slice'"
            )
        self._demote_to = engine

    def _demote(self) -> None:
        """Perform a pending demotion: checkpoint the live proposer at
        the safe-point, tear the era down, drop the MVEE variant
        pinning, and re-arm the whole group on the target engine.

        ``_demote_to`` is cleared only on success — a deposition that
        surfaces while settling ballots takes priority, and the pending
        demotion is retried once the new era is armed."""
        engine = self._demote_to
        if engine is None:
            return
        if self.variants is None and self.base_config.engine == engine \
                and all(slot.engine == engine for slot in self.slots):
            self._demote_to = None       # already there: no-op
            return
        # Settle the current era's outstanding ballots first; a
        # conviction surfacing here propagates (PrimaryOutvoted) and
        # pre-empts the demotion.
        self._drain_vote_wire()
        self._pump()
        self._process_verdicts()

        era = self._era
        checkpoint = take_checkpoint(
            self._proposer_jvm, self._proposer_se, generation=era,
            env_snapshot=self.env.snapshot_stable(),
        )
        report = self.reports[-1]
        report.outcome = "demoted"
        report.proposer_metrics = self._era_metrics
        self._finish_metrics(self._proposer_jvm, self._era_metrics,
                             self._transport)
        self._proposer_jvm.session.destroy()
        for runtime in self._followers.values():
            runtime.jvm.session.destroy()
        self._followers = {}
        self._transport.close()
        self._vote_wire.clear()
        self._verdict_queue.clear()
        self._pending_output_key = None

        self.variants = None
        self.base_config = replace(self.base_config, engine=engine)
        for slot in self.slots:
            slot.engine = engine
        self.metrics.engine = engine
        self.metrics.engine_demotions += 1
        self._era += 1
        self._demote_to = None
        self.demotions.append((self._era, engine))
        self.tally.truncate_below(self._era)

        # Rebuild the proposer from its own safe-point checkpoint on
        # the target engine (engines are contractually bit-identical,
        # so the restore crosses them losslessly), then arm the new
        # era — which re-checkpoints and rebuilds every follower, and
        # re-arms any convicted slot along the way.
        slot = self.slots[self._proposer_idx]
        slot.incarnation += 1
        settings = self._settings(self._era, slot.index)
        session = self.env.attach(
            self._session_name(slot, self._era),
            clock_offset_ms=settings.clock_offset_ms,
            entropy_seed=settings.entropy_seed,
        )
        se_manager = self._make_se_manager()
        jvm = restore_checkpoint(
            checkpoint, self.registry, self.natives, session,
            self._jvm_config_for(self._era, slot),
            name=self._session_name(slot, self._era),
            se_manager=se_manager,
        )
        jvm.scheduler.release_current()
        jvm.scheduler.last_reason = None
        jvm.sync.reevaluate_parked()
        se_manager.restore(jvm.session)
        self._arm_era(jvm, se_manager, None)

    # ------------------------------------------------------------------
    # Serving lifecycle (resumable request/response operation)
    # ------------------------------------------------------------------
    def _reconcile_port(self, parsed,
                        metrics: Optional[ReplicationMetrics] = None
                        ) -> None:
        """Exactly-once request consumption across a deposition: the
        era basis accounts for ``_port_basis`` takes plus one
        ``Server.recv`` result record per take whose flush survived.
        The overhang is lost in flight — un-consume and requeue at the
        front, preserving order."""
        if self._serve_port is None:
            return
        survived = sum(
            1
            for records in parsed.results.values()
            for record in records
            if record.signature == INGEST_SIGNATURE
        )
        port = self.env.port(self._serve_port)
        accounted = self._port_basis + survived
        lost = port.consumed[accounted:]
        if lost:
            del port.consumed[accounted:]
            port.requeue(lost)
            if metrics is not None:
                metrics.requests_requeued += len(lost)

    def start_serving(self, main_class: str,
                      args: Optional[List[str]] = None, *,
                      port: str) -> None:
        """Boot the first proposer, arm era 0 (checkpoint transfer to
        every follower), and drive the group to its first request wait.

        From here the group alternates between :meth:`submit` /
        :meth:`pump` and failover: a deposition during any pump is
        absorbed transparently, and a requested demotion lands at the
        next safe-point without dropping a request."""
        if self._ran:
            raise AlreadyRanError(
                "this VotingGroup already ran; build a fresh group"
            )
        self._ran = True
        self._serve_port = port
        self._serve_main = main_class
        self._serve_args = list(args) if args else None
        jvm, se_manager = self._boot(main_class, self._serve_args)
        self._arm_era(jvm, se_manager, None)
        self.pump()

    @property
    def serving(self) -> bool:
        """True while the program is parked waiting for requests."""
        return self._ran and self._serve_port is not None \
            and self._serve_result is None

    @property
    def serve_result(self) -> Optional[VotingResult]:
        return self._serve_result

    @property
    def active_jvm(self) -> Optional[JVM]:
        """The current proposer's JVM (fleet cost-accounting probe)."""
        return self._proposer_jvm

    @property
    def failures_survived(self) -> int:
        """Depositions absorbed so far (fleet probe)."""
        return sum(1 for i in self.incidents if i.role == "proposer")

    def submit(self, request: str) -> None:
        """Queue a request without driving the machine."""
        if self._serve_port is None:
            raise ReplicationError(
                "not serving: call start_serving() first"
            )
        self.env.port(self._serve_port).push(request)

    def pump(self) -> bool:
        """Drive the proposer until it parks on an empty port or the
        program completes, absorbing depositions and landing pending
        demotions along the way.  Returns True while still serving."""
        if self._serve_result is not None:
            return False
        while True:
            try:
                if self._demote_to is not None:
                    self._demote()
                result = self._proposer_jvm.run_to_completion(
                    pause_on_starvation=True
                )
                if result is None:
                    # Parked on the empty request port: settle ballots
                    # cast on the way in before handing control back.
                    self._drain_vote_wire()
                    self._pump()
                    self._process_verdicts()
                    if self._demote_to is not None:
                        self._demote()
                    return True
                self._serve_result = self._finish_era(result)
                return False
            except _DemotionBoundary:
                self._demote()
            except PrimaryOutvoted as deposed:
                recovered = self._failover(deposed)
                if recovered is not None:
                    self._serve_result = self._build_result(
                        "completed_in_recovery", recovered
                    )
                    return False

    def stop_serving(self, stop_request: str) -> VotingResult:
        """Deliver ``stop_request`` and run the program to completion."""
        self.submit(stop_request)
        self.pump()
        if self._serve_result is None:
            raise ReplicationError(
                f"group still serving after stop request {stop_request!r}"
            )
        return self._serve_result

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, main_class: str, args: Optional[List[str]] = None
            ) -> VotingResult:
        """Run under quorum supervision until the program completes,
        deposing and re-arming every convicted member along the way."""
        if self._ran:
            raise AlreadyRanError(
                "VotingGroup.run() may only be called once; build a "
                "fresh group for another run"
            )
        self._ran = True
        jvm, se_manager = self._boot(main_class, args)
        self._arm_era(jvm, se_manager, None)

        while True:
            try:
                if self._demote_to is not None:
                    self._demote()
                result = self._proposer_jvm.run_to_completion()
                return self._finish_era(result)
            except _DemotionBoundary:
                self._demote()
            except PrimaryOutvoted as deposed:
                recovered = self._failover(deposed)
                if recovered is not None:
                    return self._build_result("completed_in_recovery",
                                              recovered)


def run_voting(
    registry: ClassRegistry,
    main_class: str,
    args: Optional[List[str]] = None,
    *,
    natives: Optional[NativeRegistry] = None,
    env: Optional[Environment] = None,
    config: Optional[ReplicationConfig] = None,
) -> VotingResult:
    """One-shot convenience wrapper around :class:`VotingGroup`."""
    group = VotingGroup(registry, natives, env, config=config)
    return group.run(main_class, args)

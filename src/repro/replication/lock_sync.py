"""Replicated lock synchronization (paper §4.2, first technique).

Assumes R4A (all shared data protected by monitors).  The primary logs
a :class:`~repro.replication.records.LockAcqRecord` for every
non-recursive monitor acquisition, plus an
:class:`~repro.replication.records.IdMap` the first time each lock is
acquired; the backup replays the exact acquisition order.

Both sides are implemented as
:class:`~repro.runtime.monitors.AdmissionController` plugins — the
SyncManager calls ``may_acquire`` before an acquisition can complete
and ``on_acquired`` afterwards, which is precisely the seam the paper's
modified JVM hooks.

The batched execution engine does not change these semantics: monitor
acquisitions only happen inside MONITORENTER and synchronized-INVOKE
handlers, both of which are safe-point events the fast path dispatches
one at a time (it never batches *through* them), so admission is
consulted at exactly the same points, in the same order, as under the
single-step engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import RecoveryError
from repro.replication.commit import LogShipper
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import IdMap, LockAcqRecord
from repro.runtime.monitors import AdmissionController, Monitor
from repro.runtime.threads import JavaThread

Vid = Tuple[int, ...]
Key = Tuple[Vid, int]  # (t_id, t_asn)


class PrimaryLockSync(AdmissionController):
    """Primary side: assign l_ids and log every acquisition."""

    def __init__(self, shipper: LogShipper, metrics: ReplicationMetrics) -> None:
        self._shipper = shipper
        self._metrics = metrics
        self._next_l_id = 1

    def on_acquired(self, thread: JavaThread, monitor: Monitor) -> None:
        if thread.is_system:
            return
        if monitor.l_id is None:
            # First acquisition ever: mint a locally-unique id and log
            # the id map naming it by (t_id, t_asn) — the pair is
            # unambiguous across replicas because threads execute
            # deterministic programs (paper §4.2).
            monitor.l_id = self._next_l_id
            self._next_l_id += 1
            self._shipper.log(IdMap(monitor.l_id, thread.vid, thread.t_asn))
            self._metrics.id_maps += 1
        self._shipper.log(LockAcqRecord(
            thread.vid, thread.t_asn, monitor.l_id, monitor.l_asn
        ))
        self._metrics.lock_records += 1


class BackupLockSync(AdmissionController):
    """Backup side: enforce the primary's logged acquisition order.

    Implements the paper's recovery algorithm including both special
    cases for locks that have no l_id yet at the backup:

    1. this thread is responsible for assigning the id (a matching id
       map exists for its next acquisition);
    2. some other thread assigns it, or no map was logged before the
       crash — the thread waits (parks) until the id appears or the
       log drains, and may then mint a fresh id.
    """

    def __init__(self, id_maps: List[IdMap], acq_records: List[LockAcqRecord],
                 metrics: ReplicationMetrics) -> None:
        self._metrics = metrics
        self._maps: Dict[Key, int] = {
            (m.t_id, m.t_asn): m.l_id for m in id_maps
        }
        self._acqs: Dict[Key, LockAcqRecord] = {
            (r.t_id, r.t_asn): r for r in acq_records
        }
        if len(self._acqs) != len(acq_records):
            raise RecoveryError("duplicate (t_id, t_asn) in acquisition log")
        max_l_id = max((m.l_id for m in id_maps), default=0)
        self._next_live_l_id = max_l_id + 1
        #: Hot-backup mode: when the log runs dry, threads wait for more
        #: log instead of transitioning to live execution.
        self.hold_when_drained = False

    def extend(self, id_maps: List[IdMap],
               acq_records: List[LockAcqRecord]) -> None:
        """Append newly delivered records (hot backup incremental feed)."""
        for m in id_maps:
            self._maps[(m.t_id, m.t_asn)] = m.l_id
            self._next_live_l_id = max(self._next_live_l_id, m.l_id + 1)
        for r in acq_records:
            key = (r.t_id, r.t_asn)
            if key in self._acqs:
                raise RecoveryError("duplicate (t_id, t_asn) in acquisition log")
            self._acqs[key] = r

    # ------------------------------------------------------------------
    @property
    def in_recovery(self) -> bool:
        return bool(self._acqs)

    def remaining(self) -> int:
        return len(self._acqs)

    # ------------------------------------------------------------------
    def may_acquire(self, thread: JavaThread, monitor: Monitor) -> bool:
        if thread.is_system:
            return True
        if not self._acqs:
            return not self.hold_when_drained
        key = (thread.vid, thread.t_asn + 1)

        l_id: Optional[int] = monitor.l_id
        if l_id is None:
            mapped = self._maps.get(key)
            if mapped is not None:
                l_id = mapped   # case 1: this thread assigns the id
            elif self._maps:
                return False    # case 2: wait for the assigner / drain
            # else: no maps remain — a genuinely new lock; fall through.

        record = self._acqs.get(key)
        if record is None:
            # This acquisition was never logged: it happened (if at all)
            # after the primary failed.  Wait until recovery completes.
            return False
        if l_id is not None and record.l_id != l_id:
            raise RecoveryError(
                f"log names lock {record.l_id} for {thread.vid_str}"
                f"#{thread.t_asn + 1}, but the thread is acquiring lock {l_id}"
            )
        # Its turn comes when the lock's acquire sequence number reaches
        # the recorded value.
        return monitor.l_asn + 1 == record.l_asn

    def on_acquired(self, thread: JavaThread, monitor: Monitor) -> None:
        if thread.is_system:
            return
        key = (thread.vid, thread.t_asn)  # t_asn already incremented
        if monitor.l_id is None:
            mapped = self._maps.pop(key, None)
            if mapped is not None:
                monitor.l_id = mapped
            else:
                monitor.l_id = self._next_live_l_id
                self._next_live_l_id += 1
        record = self._acqs.pop(key, None)
        if record is not None:
            self._metrics.records_replayed += 1
            if record.l_asn != monitor.l_asn or record.l_id != monitor.l_id:
                raise RecoveryError(
                    f"acquisition replay diverged for {thread.vid_str}: "
                    f"logged (l_id={record.l_id}, l_asn={record.l_asn}), "
                    f"observed (l_id={monitor.l_id}, l_asn={monitor.l_asn})"
                )

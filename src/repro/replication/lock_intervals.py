"""Interval-coalesced lock replication (the paper's §6 suggestion).

The paper observes that DejaVu's *logical thread intervals* would cut
mtrt's 700,258 lock-acquisition records to 56 intervals — "four orders
of magnitude fewer events" — and that "our implementation could benefit
from the use of intervals".  This module implements that optimization
as a third strategy, ``lock_intervals``:

* the **primary** coalesces consecutive monitor acquisitions by the
  same thread into a single :class:`LockIntervalRecord` ``(t_id, count)``
  — between two acquisitions by *other* threads, a thread's execution
  is deterministic, so the identities of the locks it acquires need not
  be shipped;
* the **backup** replays the *global* acquisition order: only the
  thread at the head of the interval queue may complete acquisitions,
  for exactly ``count`` of them, then authority passes to the next
  interval's thread.

Replaying the global acquisition order is strictly stronger than
replaying each lock's order, so correctness needs exactly R4A, like
plain replicated lock synchronization.  The win is wire volume: one
record per *interval* instead of one per acquisition (plus no id maps
at all, since lock identities are never shipped).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.errors import RecoveryError
from repro.replication.commit import LogShipper
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import LockIntervalRecord
from repro.runtime.monitors import AdmissionController, Monitor
from repro.runtime.threads import JavaThread

Vid = Tuple[int, ...]


class PrimaryIntervalLockSync(AdmissionController):
    """Primary side: run-length-encode the acquisition sequence.

    An open interval is buffered in memory and logged only when a
    different thread acquires (or at ``flush_open_interval``, called
    before every output commit so the backup's log is complete at
    commit time).
    """

    def __init__(self, shipper: LogShipper, metrics: ReplicationMetrics) -> None:
        self._shipper = shipper
        self._metrics = metrics
        self._open_vid: Optional[Vid] = None
        self._open_count = 0
        # The shipper flushes on output commit; the open interval must
        # be logged first so the backup's log is complete at commit time.
        shipper.channel.before_flush = self.flush_open_interval

    def on_acquired(self, thread: JavaThread, monitor: Monitor) -> None:
        if thread.is_system:
            return
        if self._open_vid == thread.vid:
            self._open_count += 1
            return
        self.flush_open_interval()
        self._open_vid = thread.vid
        self._open_count = 1

    def flush_open_interval(self) -> None:
        if self._open_vid is None:
            return
        vid, count = self._open_vid, self._open_count
        self._open_vid = None
        self._open_count = 0
        self._shipper.log(LockIntervalRecord(vid, count))
        self._metrics.lock_records += 1
        self._metrics.extra["interval_acquisitions"] = (
            self._metrics.extra.get("interval_acquisitions", 0) + count
        )


class BackupIntervalLockSync(AdmissionController):
    """Backup side: enforce the global acquisition order by intervals."""

    def __init__(self, intervals: List[LockIntervalRecord],
                 metrics: ReplicationMetrics) -> None:
        self._intervals: Deque[LockIntervalRecord] = deque(intervals)
        self._metrics = metrics
        self._remaining_in_head = (
            self._intervals[0].count if self._intervals else 0
        )
        #: Hot-backup mode: wait for more log instead of going live.
        self.hold_when_drained = False

    def extend(self, intervals: List[LockIntervalRecord]) -> None:
        """Append newly delivered intervals (hot backup feed)."""
        was_empty = not self._intervals
        self._intervals.extend(intervals)
        if was_empty and self._intervals:
            self._remaining_in_head = self._intervals[0].count

    @property
    def in_recovery(self) -> bool:
        return bool(self._intervals)

    def remaining(self) -> int:
        return len(self._intervals)

    def may_acquire(self, thread: JavaThread, monitor: Monitor) -> bool:
        if thread.is_system:
            return True
        if not self._intervals:
            return not self.hold_when_drained
        return self._intervals[0].t_id == thread.vid

    def on_acquired(self, thread: JavaThread, monitor: Monitor) -> None:
        if thread.is_system or not self._intervals:
            return
        head = self._intervals[0]
        if head.t_id != thread.vid:
            raise RecoveryError(
                f"interval replay diverged: {thread.vid_str} acquired "
                f"during t{'.'.join(map(str, head.t_id))}'s interval"
            )
        self._remaining_in_head -= 1
        if self._remaining_in_head == 0:
            self._intervals.popleft()
            self._metrics.records_replayed += 1
            if self._intervals:
                self._remaining_in_head = self._intervals[0].count

"""Native invocation policies (paper §4.1 + §3.4).

The primary intercepts every native whose signature is in the
non-deterministic hash table or which is annotated as an output command:

* output commands go through *output commit* first — log the intent,
  flush, wait for the backup's ack — then execute, then log a
  :class:`~repro.replication.records.NativeResultRecord` (the
  completion marker) and the side-effect handler's payload;
* non-deterministic inputs execute and have their results logged so the
  backup can adopt them.

The backup, during recovery:

* adopts logged results for non-deterministic natives without invoking
  them (including modified array arguments);
* suppresses output commands whose completion marker was delivered;
* for the single *uncertain* output (intent delivered, no marker —
  the primary crashed in between), first restores volatile state, then
  either ``test``s testable outputs (suppressing if they completed) or
  re-executes idempotent ones — exactly-once either way;
* once a thread runs past its logged history, executes natives live
  (restoring volatile state first if not already done).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.env.port import (
    INGEST_SIGNATURE,
    REPLY_SIGNATURE,
    ingest_starved,
)
from repro.errors import RecoveryError
from repro.replication.commit import LogShipper
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import (
    NativeResultRecord,
    OutputIntentRecord,
)
from repro.replication.sehandlers import SideEffectManager
from repro.runtime.natives import NativeContext, NativeOutcome, call_native

Vid = Tuple[int, ...]


def _interesting(spec) -> bool:
    """Does this native participate in the replication protocol?"""
    return (not spec.deterministic) or spec.is_output


class PrimaryNativePolicy:
    """Normal-operation native interception at the primary."""

    def __init__(self, shipper: LogShipper, metrics: ReplicationMetrics,
                 se_manager: SideEffectManager) -> None:
        self._shipper = shipper
        self._metrics = metrics
        self._se = se_manager
        self._seqs: Dict[Vid, int] = {}
        #: Optional voting hook, called with ``(jvm, spec, thread,
        #: receiver, args, seq)`` before an output's intent is logged.
        #: The voting group casts the proposer's payload ballot here —
        #: and the seeded corruption injector mutates ``args`` in place
        #: here, so a lying proposer proposes (and votes for) a payload
        #: its peers will outvote before it can execute.
        self.on_output_propose = None

    def would_starve(self, jvm, method, thread) -> bool:
        # A serving primary parks at the safe point when its request
        # port is empty (the pump); everything else executes live.
        return ingest_starved(jvm, method, thread)

    def _next_seq(self, vid: Vid) -> int:
        seq = self._seqs.get(vid, 0) + 1
        self._seqs[vid] = seq
        return seq

    def native_seqs(self) -> Dict[Vid, int]:
        """Per-thread native sequence counters, snapshotted for a
        checkpoint: a backup seeded from that state must continue the
        primary's numbering, not restart at zero."""
        return dict(self._seqs)

    def invoke(self, jvm, spec, thread, receiver, args) -> NativeOutcome:
        ctx = NativeContext(jvm, thread, spec)
        if not _interesting(spec):
            return call_native(spec, ctx, receiver, args)

        seq = self._next_seq(thread.vid)
        if spec.is_output:
            if self.on_output_propose is not None:
                self.on_output_propose(jvm, spec, thread, receiver, args, seq)
            # Pessimistic logging: nothing reaches the environment until
            # the backup has everything needed to reproduce our state.
            self._shipper.log(OutputIntentRecord(
                thread.vid, seq, spec.signature
            ))
            self._shipper.output_commit()
            # Crash window between the ack and the output itself — the
            # canonical uncertain-output case.
            self._shipper.injector.step(f"pre-output:{spec.signature}")

        outcome = call_native(spec, ctx, receiver, args)
        if not spec.deterministic:
            self._metrics.natives_intercepted += 1
        if spec.signature == INGEST_SIGNATURE:
            self._metrics.requests_ingested += 1
        elif spec.signature == REPLY_SIGNATURE:
            self._metrics.responses_committed += 1

        # The completion marker and its side-effect record are one
        # atomic log unit: a crash must never deliver the marker (which
        # makes the backup adopt the result and skip re-execution)
        # while losing the side-effect state needed to continue.
        with self._shipper.atomic():
            self._shipper.log(NativeResultRecord(
                thread.vid, seq, spec.signature, outcome.value,
                outcome.exception, dict(outcome.array_results),
            ))
            self._metrics.native_result_records += 1

            if spec.se_handler is not None:
                record = self._se.log(jvm.session, spec, receiver, args,
                                      outcome)
                if record is not None:
                    self._shipper.log(record)
                    self._metrics.se_records += 1
        return outcome


class BackupNativePolicy:
    """Recovery-time native handling at the backup."""

    def __init__(self, results: Dict[Vid, List[NativeResultRecord]],
                 intents: Dict[Vid, List[OutputIntentRecord]],
                 se_manager: SideEffectManager,
                 metrics: ReplicationMetrics) -> None:
        self._results: Dict[Vid, Deque[NativeResultRecord]] = {
            vid: deque(records) for vid, records in results.items()
        }
        self._intents: Dict[Vid, Deque[OutputIntentRecord]] = {
            vid: deque(records) for vid, records in intents.items()
        }
        self._se = se_manager
        self._metrics = metrics
        self._seqs: Dict[Vid, int] = {}
        #: Hot-backup mode: never execute live; starve instead until
        #: the primary's record arrives (cleared at failover).
        self.hold_when_drained = False
        #: Failover mode: the primary is gone, so an output intent with
        #: no completion marker is the *uncertain tail* — admit it and
        #: let the test/confirm/re-execute path resolve it instead of
        #: starving while waiting for a marker that can never arrive.
        self.tail_resolution = False
        #: Optional voting hook, called with ``(jvm, spec, method,
        #: thread, intent)`` each time a hot follower holds at an
        #: output whose intent arrived but whose completion marker has
        #: not: the exact point where this replica has independently
        #: recomputed the output's payload and can ballot on it before
        #: the proposer is allowed to release it.
        self.on_output_hold = None

    def extend(self, results: Dict[Vid, List[NativeResultRecord]],
               intents: Dict[Vid, List[OutputIntentRecord]]) -> None:
        """Append newly delivered records (hot backup incremental feed)."""
        for vid, records in results.items():
            self._results.setdefault(vid, deque()).extend(records)
        for vid, records in intents.items():
            self._intents.setdefault(vid, deque()).extend(records)

    def would_starve(self, jvm, method, thread) -> bool:
        """True when a hot backup must wait for the log to catch up
        before executing this native."""
        if not self.hold_when_drained:
            # Live execution past the log (promoted backup): only the
            # serving ingest gate applies.
            return ingest_starved(jvm, method, thread)
        spec = jvm.natives.lookup(method.signature)
        if not _interesting(spec):
            return False
        vid = thread.vid
        if spec.is_output:
            queue = self._intents.get(vid)
            if not queue:
                return True
            # the completion marker must be there too, or the output's
            # outcome is not yet known
            results = self._results.get(vid)
            if not results and self.tail_resolution:
                return False
            if not results and self.on_output_hold is not None:
                self.on_output_hold(jvm, spec, method, thread, queue[0])
            return not results
        results = self._results.get(vid)
        return not results

    def has_uncertain_tail(self, vid: Vid) -> bool:
        """True when ``vid``'s next replayed record is an output intent
        with no matching completion marker — the uncertain tail."""
        return bool(self._intents.get(vid)) and not self._results.get(vid)

    # ------------------------------------------------------------------
    def remaining(self) -> int:
        return sum(len(q) for q in self._results.values()) + sum(
            len(q) for q in self._intents.values()
        )

    def _next_seq(self, vid: Vid) -> int:
        seq = self._seqs.get(vid, 0) + 1
        self._seqs[vid] = seq
        return seq

    def seed_seqs(self, seqs: Dict[Vid, int]) -> None:
        """Adopt the checkpointed per-thread native numbering: a replay
        that starts from a mid-run snapshot resumes the primary's
        counters, so the retained tail's records (whose ``seq`` fields
        are absolute) line up with re-executed invocations."""
        self._seqs.update(seqs)

    def native_seqs(self) -> Dict[Vid, int]:
        """Per-thread native sequence counters (see the primary's)."""
        return dict(self._seqs)

    def _ensure_restored(self, jvm) -> None:
        self._se.restore(jvm.session)

    def _refresh_se(self, jvm, spec, receiver, args,
                    outcome: NativeOutcome) -> None:
        """After executing (or confirming) an se-handled native locally,
        fold post-execution reality back into our own handler state.
        Without this, a checkpoint taken after promotion would carry the
        dead primary's last-received state, and a later generation's
        ``test()`` could wrongly confirm an output that never ran."""
        if spec.se_handler is None:
            return
        record = self._se.log(jvm.session, spec, receiver, args, outcome)
        if record is not None:
            self._se.receive(record)

    @staticmethod
    def _adopt(record: NativeResultRecord, args, heap=None) -> NativeOutcome:
        for index, contents in record.array_results.items():
            args[index].data[:] = contents
            if heap is not None:
                args[index].mut_era = heap.era
        return NativeOutcome(
            value=record.value,
            exception=record.exception,
            array_results=dict(record.array_results),
        )

    # ------------------------------------------------------------------
    def invoke(self, jvm, spec, thread, receiver, args) -> NativeOutcome:
        ctx = NativeContext(jvm, thread, spec)
        if not _interesting(spec):
            return call_native(spec, ctx, receiver, args)

        vid = thread.vid
        seq = self._next_seq(vid)

        if spec.is_output:
            intents = self._intents.get(vid)
            if intents and intents[0].seq == seq:
                intent = intents.popleft()
                if intent.signature != spec.signature:
                    raise RecoveryError(
                        f"native replay diverged for {thread.vid_str}: log "
                        f"has {intent.signature}, executing {spec.signature}"
                    )
                results = self._results.get(vid)
                if results and results[0].seq == seq:
                    # Completion marker delivered: output definitely
                    # happened at the primary — suppress it here.
                    record = results.popleft()
                    self._metrics.outputs_suppressed += 1
                    self._metrics.records_replayed += 1
                    return self._adopt(record, args, jvm.heap)
                # Uncertain: the primary crashed between ack and marker.
                self._ensure_restored(jvm)
                if spec.testable and spec.se_handler is not None:
                    self._metrics.outputs_tested += 1
                    if self._se.test(jvm.session.env, spec, list(args)):
                        self._se.confirm(jvm.session, spec, list(args))
                        self._metrics.outputs_suppressed += 1
                        outcome = NativeOutcome(value=None)
                        self._refresh_se(jvm, spec, receiver, args, outcome)
                        return outcome
                # Idempotent (or test says incomplete): execute now.
                self._metrics.outputs_reexecuted += 1
                outcome = call_native(spec, ctx, receiver, args)
                self._refresh_se(jvm, spec, receiver, args, outcome)
                return outcome
            # Past the end of the log: live execution.
            self._ensure_restored(jvm)
            outcome = call_native(spec, ctx, receiver, args)
            self._refresh_se(jvm, spec, receiver, args, outcome)
            return outcome

        # Non-deterministic input.
        results = self._results.get(vid)
        if results and results[0].seq == seq:
            record = results.popleft()
            if record.signature != spec.signature:
                raise RecoveryError(
                    f"native replay diverged for {thread.vid_str}: log has "
                    f"{record.signature}, executing {spec.signature}"
                )
            self._metrics.natives_intercepted += 1
            self._metrics.records_replayed += 1
            return self._adopt(record, args, jvm.heap)
        self._ensure_restored(jvm)
        outcome = call_native(spec, ctx, receiver, args)
        self._refresh_se(jvm, spec, receiver, args, outcome)
        return outcome

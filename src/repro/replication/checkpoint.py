"""Checkpoint state transfer: a complete, wire-framed JVM snapshot.

Re-integrating a fresh backup after a failover needs more than the log:
the new backup never saw the beginning of the run, so the promoted
primary must hand it a *snapshot* of everything the replica state
machine contains — heap (including unreachable objects, so allocation
counters and GC trigger points survive exactly), statics, every thread
with its frames and progress counters, monitor ownership and queues,
the scheduler's runnable order, virtual time, the side-effect manager's
volatile-state bookkeeping, and the stable-environment image for
cold-site priming.

The snapshot is serialized with the same compact wire format as log
records and shipped as a sequence of
:class:`CheckpointChunkRecord` messages *through the ordinary log
channel*, so chunk transfer inherits the channel's flush/ack protocol
and the crash injector's event counter (a transfer can be killed
mid-flight and must be restartable).  The assembled checkpoint embeds
the sender's :class:`~repro.replication.digest.StateDigest`; the
receiver re-derives the digest from the *restored* JVM and refuses a
snapshot whose digest does not match — a corrupted or torn transfer is
detected, never silently adopted.

Two invariants make restore exact rather than approximate:

* **oids are preserved** — references serialize as allocation-order
  object ids and every heap object (garbage included) crosses the
  wire, so ``used_cells``, allocation counters, and identity-hash
  values are bit-identical after restore;
* **thread registration order is preserved** — the scheduler wakes
  expired timers by walking ``scheduler.threads`` in registration
  order, so the snapshot serializes threads in exactly that order.

Lock *ids* (``l_id``) are deliberately not checkpointed: they are a
per-generation naming scheme assigned by the active coordination
strategy, and each promotion renames from scratch (``l_asn`` counters,
which the digest covers, are preserved).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReplicationError
from repro.replication.digest import StateDigest, compute_state_digest
from repro.replication.records import (
    KIND_CHECKPOINT_CHUNK,
    register_record_kind,
)
from repro.replication.wire import Reader, Writer
from repro.runtime.frames import Frame
from repro.runtime.jvm import JVM
from repro.runtime.monitors import get_monitor
from repro.runtime.scheduler import SliceEnd
from repro.runtime.threads import ROOT_VID, JavaThread, ThreadState
from repro.runtime.values import JArray, JObject

Vid = Tuple[int, ...]

#: Bump when the snapshot layout changes incompatibly.
_STATE_VERSION = 1

#: Default chunk payload size.  Small enough that a transfer spans many
#: flushes (so mid-transfer crash points exist), large enough that the
#: chunk framing overhead stays negligible.
DEFAULT_CHUNK_BYTES = 2048


# ======================================================================
# Tagged value codec
# ======================================================================
# The log-record codec (wire.Writer.value) deliberately rejects heap
# references — they never leave a replica during normal logging.  A
# checkpoint is the one place references *must* cross the wire, as
# allocation-order oids, alongside the nested dict/bytes shapes that
# side-effect handler state uses.

_V_NONE = 0
_V_INT = 1
_V_FLOAT = 2
_V_STR = 3
_V_BOOL = 4
_V_BYTES = 5
_V_LIST = 6
_V_DICT = 7
_V_REF = 8


def _write_value(w: Writer, v: Any) -> None:
    if v is None:
        w.uvarint(_V_NONE)
    elif isinstance(v, bool):
        w.uvarint(_V_BOOL).uvarint(1 if v else 0)
    elif isinstance(v, int):
        w.uvarint(_V_INT).svarint(v)
    elif isinstance(v, float):
        w.uvarint(_V_FLOAT).f64(v)
    elif isinstance(v, str):
        w.uvarint(_V_STR).text(v)
    elif isinstance(v, bytes):
        w.uvarint(_V_BYTES).uvarint(len(v)).raw(v)
    elif isinstance(v, (JObject, JArray)):
        w.uvarint(_V_REF).uvarint(v.oid)
    elif isinstance(v, (list, tuple)):
        w.uvarint(_V_LIST).uvarint(len(v))
        for item in v:
            _write_value(w, item)
    elif isinstance(v, dict):
        w.uvarint(_V_DICT).uvarint(len(v))
        for key, item in v.items():
            _write_value(w, key)
            _write_value(w, item)
    else:
        raise ReplicationError(
            f"checkpoint cannot serialize value of type {type(v).__name__}"
        )


def _read_value(r: Reader, resolve: Callable[[int], Any]) -> Any:
    tag = r.uvarint()
    if tag == _V_NONE:
        return None
    if tag == _V_BOOL:
        return bool(r.uvarint())
    if tag == _V_INT:
        return r.svarint()
    if tag == _V_FLOAT:
        return r.f64()
    if tag == _V_STR:
        return r.text()
    if tag == _V_BYTES:
        return r.raw(r.uvarint())
    if tag == _V_REF:
        return resolve(r.uvarint())
    if tag == _V_LIST:
        return [_read_value(r, resolve) for _ in range(r.uvarint())]
    if tag == _V_DICT:
        out: Dict[Any, Any] = {}
        for _ in range(r.uvarint()):
            key = _read_value(r, resolve)
            out[key] = _read_value(r, resolve)
        return out
    raise ReplicationError(f"unknown checkpoint value tag {tag}")


def _no_refs(_oid: int) -> Any:
    raise ReplicationError("heap reference outside heap section")


def _write_opt_vid(w: Writer, vid: Optional[Vid]) -> None:
    if vid is None:
        w.uvarint(0)
    else:
        w.uvarint(1).vid(vid)


def _read_opt_vid(r: Reader) -> Optional[Vid]:
    return r.vid() if r.uvarint() else None


# ======================================================================
# Wire records
# ======================================================================
@dataclass(frozen=True)
class CheckpointChunkRecord:
    """One slice of an encoded checkpoint, shipped through the log.

    Chunks are idempotent and unordered on arrival: the assembler keys
    them by ``(generation, index)`` and ignores duplicates, so a
    transfer interrupted by a connection reset (or restarted whole by a
    re-promoted primary) converges to the same snapshot."""

    generation: int
    index: int
    total: int
    data: bytes

    def write(self, w: Writer) -> None:
        w.uvarint(KIND_CHECKPOINT_CHUNK).uvarint(self.generation)
        w.uvarint(self.index).uvarint(self.total)
        w.uvarint(len(self.data)).raw(self.data)

    @staticmethod
    def read(r: Reader) -> "CheckpointChunkRecord":
        generation = r.uvarint()
        index = r.uvarint()
        total = r.uvarint()
        return CheckpointChunkRecord(
            generation, index, total, r.raw(r.uvarint())
        )


register_record_kind(KIND_CHECKPOINT_CHUNK, CheckpointChunkRecord.read,
                     core=True)


@dataclass(frozen=True)
class Checkpoint:
    """An encoded snapshot plus the digest it must restore to."""

    generation: int
    digest: StateDigest
    payload: bytes

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        w = Writer()
        w.uvarint(self.generation)
        w.uvarint(len(self.digest.components))
        for name, value in self.digest.components:
            w.text(name).raw(value.to_bytes(16, "big"))
        w.uvarint(len(self.payload)).raw(self.payload)
        return w.bytes()

    @staticmethod
    def decode(data: bytes) -> "Checkpoint":
        r = Reader(data)
        generation = r.uvarint()
        components = []
        for _ in range(r.uvarint()):
            name = r.text()
            components.append((name, int.from_bytes(r.raw(16), "big")))
        payload = r.raw(r.uvarint())
        if not r.exhausted:
            raise ReplicationError("trailing bytes after checkpoint")
        return Checkpoint(generation, StateDigest(tuple(components)), payload)

    # ------------------------------------------------------------------
    def to_chunks(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES
                  ) -> List[CheckpointChunkRecord]:
        """Frame the encoded checkpoint for shipment through the log."""
        if chunk_bytes <= 0:
            raise ReplicationError("chunk size must be positive")
        encoded = self.encode()
        total = max(1, -(-len(encoded) // chunk_bytes))
        return [
            CheckpointChunkRecord(
                self.generation, index, total,
                encoded[index * chunk_bytes:(index + 1) * chunk_bytes],
            )
            for index in range(total)
        ]

    @property
    def byte_size(self) -> int:
        return len(self.payload)

    def state(self) -> "_SnapshotState":
        """Decode the payload into its structured form (tests, env
        priming).  Heap references resolve to freshly built shell
        objects, not to any live JVM."""
        return _read_state(self.payload)


class CheckpointAssembler:
    """Receive-side reassembly of chunked checkpoints.

    Duplicate chunks (retransmission, restarted transfer) are ignored;
    a chunk whose ``total`` disagrees with the first chunk seen for its
    generation marks the transfer corrupt.  ``feed`` returns the
    decoded :class:`Checkpoint` exactly once, when the last missing
    chunk arrives."""

    def __init__(self) -> None:
        self._partial: Dict[int, Tuple[int, Dict[int, bytes]]] = {}
        self._done: Dict[int, bool] = {}

    def feed(self, record: CheckpointChunkRecord) -> Optional[Checkpoint]:
        gen = record.generation
        if self._done.get(gen):
            return None
        total, chunks = self._partial.setdefault(gen, (record.total, {}))
        if total != record.total:
            raise ReplicationError(
                f"checkpoint transfer for generation {gen} is inconsistent: "
                f"chunk claims {record.total} total, transfer began with "
                f"{total}"
            )
        if not 0 <= record.index < total:
            raise ReplicationError(
                f"checkpoint chunk index {record.index} out of range "
                f"0..{total - 1}"
            )
        chunks.setdefault(record.index, record.data)
        if len(chunks) < total:
            return None
        encoded = b"".join(chunks[i] for i in range(total))
        checkpoint = Checkpoint.decode(encoded)
        if checkpoint.generation != gen:
            raise ReplicationError(
                f"checkpoint generation mismatch: chunks say {gen}, "
                f"payload says {checkpoint.generation}"
            )
        self._done[gen] = True
        del self._partial[gen]
        return checkpoint

    def pending(self, generation: int) -> int:
        """Chunks received so far for an incomplete transfer."""
        entry = self._partial.get(generation)
        return len(entry[1]) if entry else 0

    def discard(self, generation: int) -> None:
        """Drop a torn transfer (its primary died mid-flight)."""
        self._partial.pop(generation, None)


# ======================================================================
# Snapshot: serialize
# ======================================================================
def take_checkpoint(jvm: JVM, se_manager, *, generation: int,
                    env_snapshot: Optional[Dict[str, str]] = None
                    ) -> Checkpoint:
    """Snapshot ``jvm`` (plus side-effect-handler state) as of now.

    Must be taken at a *quiescent point* — bootstrap, or a paused run
    loop — so no thread is mid-slice.  The embedded digest is computed
    from the same state the payload serializes, which is what lets the
    receiver verify the restore."""
    digest = compute_state_digest(jvm, include_env=False)
    payload = _write_state(jvm, se_manager, env_snapshot or {})
    return Checkpoint(generation, digest, payload)


def _write_state(jvm: JVM, se_manager,
                 env_snapshot: Dict[str, str]) -> bytes:
    w = Writer()
    w.uvarint(_STATE_VERSION)

    # --- machine counters / virtual time ------------------------------
    w.uvarint(jvm.instructions).uvarint(jvm.heavy_ops)
    w.uvarint(jvm.native_calls)
    w.f64(jvm._time_skew_ms)

    # --- heap: shells, then contents (so references resolve) ----------
    heap = jvm.heap
    objects = list(heap.objects)
    w.uvarint(heap._next_oid).uvarint(heap.total_allocations)
    w.uvarint(heap.used_cells).uvarint(1 if heap.gc_requested else 0)
    w.uvarint(len(objects))
    for obj in objects:
        if isinstance(obj, JArray):
            w.uvarint(1).uvarint(obj.oid).text(obj.elem_type)
        else:
            w.uvarint(0).uvarint(obj.oid).text(obj.class_name)
    monitor_oid: Dict[int, int] = {}
    for obj in objects:
        if isinstance(obj, JArray):
            w.uvarint(len(obj.data))
            for v in obj.data:
                _write_value(w, v)
        else:
            w.uvarint(len(obj.fields))
            for name, v in obj.fields.items():
                w.text(name)
                _write_value(w, v)
        monitor = obj.monitor
        if monitor is not None and (
            monitor.owner is not None or monitor.recursion
            or monitor.entry_queue or monitor.wait_set or monitor.l_asn
        ):
            monitor_oid[id(monitor)] = obj.oid
            w.uvarint(1)
            _write_opt_vid(
                w, monitor.owner.vid if monitor.owner is not None else None
            )
            w.uvarint(monitor.recursion).uvarint(monitor.l_asn)
            w.uvarint(len(monitor.entry_queue))
            for t in monitor.entry_queue:
                w.vid(t.vid)
            w.uvarint(len(monitor.wait_set))
            for t in monitor.wait_set:
                w.vid(t.vid)
        else:
            if monitor is not None:
                monitor_oid[id(monitor)] = obj.oid
            w.uvarint(0)

    # --- statics -------------------------------------------------------
    w.uvarint(len(jvm.statics))
    for (class_name, field_name) in sorted(jvm.statics):
        w.text(class_name).text(field_name)
        _write_value(w, jvm.statics[(class_name, field_name)])

    # --- threads, in scheduler registration order ----------------------
    threads = list(jvm.scheduler.threads)
    w.uvarint(len(threads))
    for t in threads:
        w.vid(t.vid).text(t.name)
        flags = (
            (1 if t.is_daemon else 0)
            | (2 if t.is_system else 0)
            | (4 if t.reacquiring else 0)
            | (8 if t.in_native else 0)
            | (16 if t.forbid_sync else 0)
            | (32 if t.forbid_env else 0)
        )
        w.uvarint(flags).text(t.state.value)
        w.uvarint(t.br_cnt).uvarint(t.mon_cnt).uvarint(t.t_asn)
        w.uvarint(t.instructions).uvarint(t.children_spawned)
        w.uvarint(t.saved_recursion)
        if t.wakeup_time is None:
            w.uvarint(0)
        else:
            w.uvarint(1).f64(t.wakeup_time)
        blocked = t.blocked_on
        if blocked is None:
            w.uvarint(0)
        else:
            oid = monitor_oid.get(id(blocked))
            if oid is None:
                raise ReplicationError(
                    f"{t.vid_str} blocks on a monitor owned by no heap "
                    f"object — cannot checkpoint"
                )
            w.uvarint(1).uvarint(oid)
        if t.thread_object is None:
            w.uvarint(0)
        else:
            w.uvarint(1).uvarint(t.thread_object.oid)
        _write_value(w, t.pending_exception)
        w.uvarint(len(t.joiners))
        for joiner in t.joiners:
            w.vid(joiner.vid)
        w.uvarint(len(t.frames))
        for frame in t.frames:
            method = frame.method
            w.text(method.declaring_class.name).text(method.name)
            w.uvarint(method.nargs).uvarint(frame.pc)
            w.uvarint(len(frame.locals))
            for v in frame.locals:
                _write_value(w, v)
            w.uvarint(len(frame.stack))
            for v in frame.stack:
                _write_value(w, v)
            if frame.sync_object is None:
                w.uvarint(0)
            else:
                w.uvarint(1).uvarint(frame.sync_object.oid)
            w.uvarint(len(frame.held_monitors))
            for obj in frame.held_monitors:
                w.uvarint(obj.oid)

    # --- scheduler ------------------------------------------------------
    scheduler = jvm.scheduler
    w.uvarint(len(scheduler.runnable))
    for t in scheduler.runnable:
        w.vid(t.vid)
    _write_opt_vid(
        w, scheduler.current.vid if scheduler.current is not None else None
    )
    if scheduler.last_reason is None:
        w.uvarint(0)
    else:
        w.uvarint(1).text(scheduler.last_reason.value)
    w.uvarint(scheduler.reschedules).uvarint(scheduler.slices)

    # --- sync manager ---------------------------------------------------
    sync = jvm.sync
    w.uvarint(1 if sync.notify_wakes_all else 0)
    w.uvarint(sync.total_acquisitions).uvarint(sync.monitors_created)
    w.uvarint(sync.largest_l_asn)
    parked = sync.parked_threads
    w.uvarint(len(parked))
    for t in parked:
        w.vid(t.vid)

    # --- naming tables / misc ------------------------------------------
    w.uvarint(len(jvm._class_locks))
    for name in sorted(jvm._class_locks):
        w.text(name).uvarint(jvm._class_locks[name].oid)
    w.uvarint(len(jvm._daemon_requests))
    for oid in sorted(jvm._daemon_requests):
        w.uvarint(oid).uvarint(1 if jvm._daemon_requests[oid] else 0)
    w.uvarint(len(jvm.uncaught))
    for vid_str, class_name, message in jvm.uncaught:
        w.text(vid_str).text(class_name).text(message)
    _write_opt_vid(
        w, jvm.main_thread.vid if jvm.main_thread is not None else None
    )

    # --- side-effect handler state / stable environment ----------------
    _write_value(w, se_manager.snapshot())
    _write_value(w, dict(env_snapshot))
    return w.bytes()


# ======================================================================
# Snapshot: structured read
# ======================================================================
class _SnapshotState:
    """The decoded payload, with heap objects materialized as shells."""

    def __init__(self) -> None:
        self.instructions = 0
        self.heavy_ops = 0
        self.native_calls = 0
        self.time_skew_ms = 0.0
        self.next_oid = 1
        self.total_allocations = 0
        self.used_cells = 0
        self.gc_requested = False
        self.objects: List[Any] = []
        self.by_oid: Dict[int, Any] = {}
        #: (oid, owner_vid, recursion, l_asn, entry_vids, wait_vids)
        self.monitors: List[Tuple] = []
        self.statics: Dict[Tuple[str, str], Any] = {}
        #: Per-thread dicts, in registration order.
        self.threads: List[Dict[str, Any]] = []
        self.runnable_vids: List[Vid] = []
        self.current_vid: Optional[Vid] = None
        self.last_reason: Optional[str] = None
        self.reschedules = 0
        self.slices = 0
        self.notify_wakes_all = False
        self.total_acquisitions = 0
        self.monitors_created = 0
        self.largest_l_asn = 0
        self.parked_vids: List[Vid] = []
        self.class_locks: Dict[str, int] = {}
        self.daemon_requests: Dict[int, bool] = {}
        self.uncaught: List[Tuple[str, str, str]] = []
        self.main_vid: Optional[Vid] = None
        self.se_state: Dict[str, Dict[str, Any]] = {}
        self.env_snapshot: Dict[str, str] = {}


def _read_state(payload: bytes) -> _SnapshotState:
    r = Reader(payload)
    version = r.uvarint()
    if version != _STATE_VERSION:
        raise ReplicationError(
            f"checkpoint state version {version} is not supported "
            f"(expected {_STATE_VERSION})"
        )
    s = _SnapshotState()
    s.instructions = r.uvarint()
    s.heavy_ops = r.uvarint()
    s.native_calls = r.uvarint()
    s.time_skew_ms = r.f64()

    # --- heap shells ----------------------------------------------------
    s.next_oid = r.uvarint()
    s.total_allocations = r.uvarint()
    s.used_cells = r.uvarint()
    s.gc_requested = bool(r.uvarint())
    n_objects = r.uvarint()
    for _ in range(n_objects):
        kind = r.uvarint()
        oid = r.uvarint()
        if kind == 1:
            obj: Any = JArray(r.text(), [], oid)
        else:
            obj = JObject(r.text(), {}, oid)
        s.objects.append(obj)
        s.by_oid[oid] = obj

    def resolve(oid: int) -> Any:
        try:
            return s.by_oid[oid]
        except KeyError:
            raise ReplicationError(
                f"checkpoint references unknown oid {oid}"
            ) from None

    # --- heap contents --------------------------------------------------
    for obj in s.objects:
        if isinstance(obj, JArray):
            obj.data[:] = [
                _read_value(r, resolve) for _ in range(r.uvarint())
            ]
        else:
            for _ in range(r.uvarint()):
                name = r.text()
                obj.fields[name] = _read_value(r, resolve)
        if r.uvarint():
            owner_vid = _read_opt_vid(r)
            recursion = r.uvarint()
            l_asn = r.uvarint()
            entry = [r.vid() for _ in range(r.uvarint())]
            waiters = [r.vid() for _ in range(r.uvarint())]
            s.monitors.append(
                (obj.oid, owner_vid, recursion, l_asn, entry, waiters)
            )

    # --- statics --------------------------------------------------------
    for _ in range(r.uvarint()):
        class_name = r.text()
        field_name = r.text()
        s.statics[(class_name, field_name)] = _read_value(r, resolve)

    # --- threads --------------------------------------------------------
    for _ in range(r.uvarint()):
        t: Dict[str, Any] = {}
        t["vid"] = r.vid()
        t["name"] = r.text()
        flags = r.uvarint()
        t["is_daemon"] = bool(flags & 1)
        t["is_system"] = bool(flags & 2)
        t["reacquiring"] = bool(flags & 4)
        t["in_native"] = bool(flags & 8)
        t["forbid_sync"] = bool(flags & 16)
        t["forbid_env"] = bool(flags & 32)
        t["state"] = r.text()
        t["br_cnt"] = r.uvarint()
        t["mon_cnt"] = r.uvarint()
        t["t_asn"] = r.uvarint()
        t["instructions"] = r.uvarint()
        t["children_spawned"] = r.uvarint()
        t["saved_recursion"] = r.uvarint()
        t["wakeup_time"] = r.f64() if r.uvarint() else None
        t["blocked_on_oid"] = r.uvarint() if r.uvarint() else None
        t["thread_object_oid"] = r.uvarint() if r.uvarint() else None
        t["pending_exception"] = _read_value(r, resolve)
        t["joiner_vids"] = [r.vid() for _ in range(r.uvarint())]
        frames = []
        for _ in range(r.uvarint()):
            f: Dict[str, Any] = {}
            f["class"] = r.text()
            f["method"] = r.text()
            f["nargs"] = r.uvarint()
            f["pc"] = r.uvarint()
            f["locals"] = [
                _read_value(r, resolve) for _ in range(r.uvarint())
            ]
            f["stack"] = [
                _read_value(r, resolve) for _ in range(r.uvarint())
            ]
            f["sync_oid"] = r.uvarint() if r.uvarint() else None
            f["held_oids"] = [r.uvarint() for _ in range(r.uvarint())]
            frames.append(f)
        t["frames"] = frames
        s.threads.append(t)

    # --- scheduler / sync / misc ---------------------------------------
    s.runnable_vids = [r.vid() for _ in range(r.uvarint())]
    s.current_vid = _read_opt_vid(r)
    s.last_reason = r.text() if r.uvarint() else None
    s.reschedules = r.uvarint()
    s.slices = r.uvarint()
    s.notify_wakes_all = bool(r.uvarint())
    s.total_acquisitions = r.uvarint()
    s.monitors_created = r.uvarint()
    s.largest_l_asn = r.uvarint()
    s.parked_vids = [r.vid() for _ in range(r.uvarint())]
    for _ in range(r.uvarint()):
        name = r.text()
        s.class_locks[name] = r.uvarint()
    for _ in range(r.uvarint()):
        oid = r.uvarint()
        s.daemon_requests[oid] = bool(r.uvarint())
    for _ in range(r.uvarint()):
        s.uncaught.append((r.text(), r.text(), r.text()))
    s.main_vid = _read_opt_vid(r)
    s.se_state = _read_value(r, _no_refs)
    s.env_snapshot = _read_value(r, _no_refs)
    if not r.exhausted:
        raise ReplicationError("trailing bytes after checkpoint state")
    return s


# ======================================================================
# Snapshot: restore
# ======================================================================
def restore_checkpoint(checkpoint: Checkpoint, registry, natives, session,
                       config=None, *, name: str = "restored",
                       se_manager=None) -> JVM:
    """Materialize a fresh JVM from a checkpoint and verify its digest.

    Raises :class:`~repro.errors.ReplicationError` if the state digest
    re-derived from the restored machine differs from the digest the
    sender embedded — the transfer (or this restore) corrupted state
    and the snapshot must not be adopted."""
    state = _read_state(checkpoint.payload)
    jvm = JVM(registry, natives, session, config, name=name)
    _apply_state(jvm, state)
    if se_manager is not None:
        se_manager.restore_snapshot(state.se_state)
    actual = compute_state_digest(jvm, include_env=False)
    mismatched = actual.diff(checkpoint.digest)
    if mismatched:
        raise ReplicationError(
            f"checkpoint restore diverged in component(s) "
            f"{', '.join(mismatched)} for generation "
            f"{checkpoint.generation} — refusing the snapshot"
        )
    return jvm


def _apply_state(jvm: JVM, s: _SnapshotState) -> None:
    # --- heap -----------------------------------------------------------
    heap = jvm.heap
    heap.objects = list(s.objects)
    heap._next_oid = s.next_oid
    heap.used_cells = s.used_cells
    heap.total_allocations = s.total_allocations
    heap.gc_requested = s.gc_requested

    # --- statics (constructor seeded defaults; overwrite) ---------------
    for key, value in s.statics.items():
        jvm.statics[key] = value

    # --- threads, registered in snapshot order ---------------------------
    threads_by_vid: Dict[Vid, JavaThread] = {}
    for t in s.threads:
        thread = JavaThread(
            t["vid"], None, name=t["name"],
            is_daemon=t["is_daemon"], is_system=t["is_system"],
        )
        thread.state = ThreadState(t["state"])
        thread.br_cnt = t["br_cnt"]
        thread.mon_cnt = t["mon_cnt"]
        thread.t_asn = t["t_asn"]
        thread.instructions = t["instructions"]
        thread.children_spawned = t["children_spawned"]
        thread.saved_recursion = t["saved_recursion"]
        thread.wakeup_time = t["wakeup_time"]
        thread.reacquiring = t["reacquiring"]
        thread.in_native = t["in_native"]
        thread.forbid_sync = t["forbid_sync"]
        thread.forbid_env = t["forbid_env"]
        thread.pending_exception = t["pending_exception"]
        if t["thread_object_oid"] is not None:
            thread.thread_object = s.by_oid[t["thread_object_oid"]]
            jvm.threads_by_oid[t["thread_object_oid"]] = thread
        for f in t["frames"]:
            method = jvm.registry.lookup_method(
                f["class"], f["method"], f["nargs"]
            )
            frame = Frame(method, [])
            frame.locals = list(f["locals"])
            frame.stack = list(f["stack"])
            frame.pc = f["pc"]
            if f["sync_oid"] is not None:
                frame.sync_object = s.by_oid[f["sync_oid"]]
            frame.held_monitors = [s.by_oid[oid] for oid in f["held_oids"]]
            thread.frames.append(frame)
        jvm.scheduler.register(thread)
        jvm.threads_by_vid[thread.vid] = thread
        threads_by_vid[thread.vid] = thread

    def thread_of(vid: Vid) -> JavaThread:
        try:
            return threads_by_vid[vid]
        except KeyError:
            raise ReplicationError(
                f"checkpoint references unknown thread "
                f"t{'.'.join(map(str, vid))}"
            ) from None

    # --- joiners (threads must all exist first) -------------------------
    for t in s.threads:
        thread = threads_by_vid[t["vid"]]
        thread.joiners = [thread_of(vid) for vid in t["joiner_vids"]]

    # --- monitors -------------------------------------------------------
    for oid, owner_vid, recursion, l_asn, entry, waiters in s.monitors:
        monitor = get_monitor(s.by_oid[oid])
        monitor.owner = (
            thread_of(owner_vid) if owner_vid is not None else None
        )
        monitor.recursion = recursion
        monitor.l_asn = l_asn
        monitor.entry_queue.extend(thread_of(vid) for vid in entry)
        monitor.wait_set.extend(thread_of(vid) for vid in waiters)

    # --- thread -> monitor references -----------------------------------
    for t in s.threads:
        if t["blocked_on_oid"] is not None:
            # An admission-parked thread can reference a monitor with no
            # serialized state of its own (nobody owns or queues on it
            # yet); materialize it lazily, as the sync manager would.
            monitor = get_monitor(s.by_oid[t["blocked_on_oid"]])
            threads_by_vid[t["vid"]].blocked_on = monitor

    # --- scheduler ------------------------------------------------------
    scheduler = jvm.scheduler
    scheduler.runnable.extend(thread_of(vid) for vid in s.runnable_vids)
    scheduler.current = (
        thread_of(s.current_vid) if s.current_vid is not None else None
    )
    scheduler.last_reason = (
        SliceEnd(s.last_reason) if s.last_reason is not None else None
    )
    scheduler.reschedules = s.reschedules
    scheduler.slices = s.slices

    # --- sync manager ---------------------------------------------------
    sync = jvm.sync
    sync.notify_wakes_all = s.notify_wakes_all
    sync.total_acquisitions = s.total_acquisitions
    sync.monitors_created = s.monitors_created
    sync.largest_l_asn = s.largest_l_asn
    sync._parked.extend(thread_of(vid) for vid in s.parked_vids)

    # --- misc ------------------------------------------------------------
    jvm.instructions = s.instructions
    jvm.heavy_ops = s.heavy_ops
    jvm.native_calls = s.native_calls
    jvm._time_skew_ms = s.time_skew_ms
    jvm._class_locks.update(
        (name, s.by_oid[oid]) for name, oid in s.class_locks.items()
    )
    jvm._daemon_requests.update(s.daemon_requests)
    jvm.uncaught.extend(s.uncaught)
    jvm.main_thread = (
        thread_of(s.main_vid) if s.main_vid is not None else None
    )
    jvm._bootstrapped = True


# ======================================================================
def first_dispatch_vid(jvm: JVM) -> Vid:
    """The thread a primary continuing from this state dispatches first.

    Computed identically on the promoted primary and on a backup that
    restored the matching checkpoint, so a schedule-replaying backup
    knows which thread the (unlogged) first post-promotion dispatch
    ran: the head of the runnable queue, else the timed-waiting thread
    whose timer expires first (ties broken by registration order, the
    order ``wake_expired_timers`` scans)."""
    scheduler = jvm.scheduler
    if scheduler.current is not None:
        return scheduler.current.vid
    if scheduler.runnable:
        return scheduler.runnable[0].vid
    best: Optional[JavaThread] = None
    for t in scheduler.threads:
        if (t.state is ThreadState.TIMED_WAITING
                and t.wakeup_time is not None
                and (best is None or t.wakeup_time < best.wakeup_time)):
            best = t
    if best is not None:
        return best.vid
    if jvm.main_thread is not None:
        return jvm.main_thread.vid
    return ROOT_VID

"""Checkpoint state transfer: a complete, wire-framed JVM snapshot.

Re-integrating a fresh backup after a failover needs more than the log:
the new backup never saw the beginning of the run, so the promoted
primary must hand it a *snapshot* of everything the replica state
machine contains — heap (including unreachable objects, so allocation
counters and GC trigger points survive exactly), statics, every thread
with its frames and progress counters, monitor ownership and queues,
the scheduler's runnable order, virtual time, the side-effect manager's
volatile-state bookkeeping, and the stable-environment image for
cold-site priming.

The snapshot is serialized with the same compact wire format as log
records and shipped as a sequence of
:class:`CheckpointChunkRecord` messages *through the ordinary log
channel*, so chunk transfer inherits the channel's flush/ack protocol
and the crash injector's event counter (a transfer can be killed
mid-flight and must be restartable).  The assembled checkpoint embeds
the sender's :class:`~repro.replication.digest.StateDigest`; the
receiver re-derives the digest from the *restored* JVM and refuses a
snapshot whose digest does not match — a corrupted or torn transfer is
detected, never silently adopted.

Two invariants make restore exact rather than approximate:

* **oids are preserved** — references serialize as allocation-order
  object ids and every heap object (garbage included) crosses the
  wire, so ``used_cells``, allocation counters, and identity-hash
  values are bit-identical after restore;
* **thread registration order is preserved** — the scheduler wakes
  expired timers by walking ``scheduler.threads`` in registration
  order, so the snapshot serializes threads in exactly that order.

Lock *ids* (``l_id``) are a per-generation naming scheme assigned by
the active coordination strategy, and each promotion renames from
scratch (``l_asn`` counters, which the digest covers, are preserved).
Since v2 they *are* serialized: steady-state checkpoint adoption
truncates the log mid-generation, which can drop the IdMap records
that named locks first acquired before the checkpoint — the restored
state must therefore carry those names so the retained log tail stays
resolvable.  Promotion still strips them.

Steady-state incremental checkpoints (:class:`DeltaCheckpoint`) reuse
the same state layout but serialize only the heap objects mutated
since the heap's last ``advance_era()`` plus the oids freed since
then; the (small) non-heap sections ship whole.
:func:`compose_delta` merges a delta onto a decoded base snapshot and
re-encodes a full :class:`Checkpoint` whose embedded digest is the
digest the primary computed at delta capture time — so composition
errors are caught exactly like torn transfers, by digest mismatch on
restore.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReplicationError
from repro.replication.digest import StateDigest, compute_state_digest
from repro.replication.records import (
    KIND_CHECKPOINT_CHUNK,
    KIND_CHECKPOINT_DELTA,
    register_record_kind,
)
from repro.replication.wire import Reader, Writer
from repro.runtime.frames import Frame
from repro.runtime.jvm import JVM
from repro.runtime.monitors import get_monitor
from repro.runtime.scheduler import SliceEnd
from repro.runtime.threads import ROOT_VID, JavaThread, ThreadState
from repro.runtime.values import JArray, JObject

Vid = Tuple[int, ...]

#: Bump when the snapshot layout changes incompatibly.
#: v2: monitor blocks carry the optional l_id; a native-seq table and
#: the capture-time schedule epoch joined the non-heap sections.
_STATE_VERSION = 2

#: Default chunk payload size.  Small enough that a transfer spans many
#: flushes (so mid-transfer crash points exist), large enough that the
#: chunk framing overhead stays negligible.
DEFAULT_CHUNK_BYTES = 2048


# ======================================================================
# Tagged value codec
# ======================================================================
# The log-record codec (wire.Writer.value) deliberately rejects heap
# references — they never leave a replica during normal logging.  A
# checkpoint is the one place references *must* cross the wire, as
# allocation-order oids, alongside the nested dict/bytes shapes that
# side-effect handler state uses.

_V_NONE = 0
_V_INT = 1
_V_FLOAT = 2
_V_STR = 3
_V_BOOL = 4
_V_BYTES = 5
_V_LIST = 6
_V_DICT = 7
_V_REF = 8


def _write_value(w: Writer, v: Any) -> None:
    if v is None:
        w.uvarint(_V_NONE)
    elif isinstance(v, bool):
        w.uvarint(_V_BOOL).uvarint(1 if v else 0)
    elif isinstance(v, int):
        w.uvarint(_V_INT).svarint(v)
    elif isinstance(v, float):
        w.uvarint(_V_FLOAT).f64(v)
    elif isinstance(v, str):
        w.uvarint(_V_STR).text(v)
    elif isinstance(v, bytes):
        w.uvarint(_V_BYTES).uvarint(len(v)).raw(v)
    elif isinstance(v, (JObject, JArray)):
        w.uvarint(_V_REF).uvarint(v.oid)
    elif isinstance(v, (list, tuple)):
        w.uvarint(_V_LIST).uvarint(len(v))
        for item in v:
            _write_value(w, item)
    elif isinstance(v, dict):
        w.uvarint(_V_DICT).uvarint(len(v))
        for key, item in v.items():
            _write_value(w, key)
            _write_value(w, item)
    else:
        raise ReplicationError(
            f"checkpoint cannot serialize value of type {type(v).__name__}"
        )


def _read_value(r: Reader, resolve: Callable[[int], Any]) -> Any:
    tag = r.uvarint()
    if tag == _V_NONE:
        return None
    if tag == _V_BOOL:
        return bool(r.uvarint())
    if tag == _V_INT:
        return r.svarint()
    if tag == _V_FLOAT:
        return r.f64()
    if tag == _V_STR:
        return r.text()
    if tag == _V_BYTES:
        return r.raw(r.uvarint())
    if tag == _V_REF:
        return resolve(r.uvarint())
    if tag == _V_LIST:
        return [_read_value(r, resolve) for _ in range(r.uvarint())]
    if tag == _V_DICT:
        out: Dict[Any, Any] = {}
        for _ in range(r.uvarint()):
            key = _read_value(r, resolve)
            out[key] = _read_value(r, resolve)
        return out
    raise ReplicationError(f"unknown checkpoint value tag {tag}")


def _no_refs(_oid: int) -> Any:
    raise ReplicationError("heap reference outside heap section")


def _write_opt_vid(w: Writer, vid: Optional[Vid]) -> None:
    if vid is None:
        w.uvarint(0)
    else:
        w.uvarint(1).vid(vid)


def _read_opt_vid(r: Reader) -> Optional[Vid]:
    return r.vid() if r.uvarint() else None


# ======================================================================
# Wire records
# ======================================================================
@dataclass(frozen=True)
class CheckpointChunkRecord:
    """One slice of an encoded checkpoint, shipped through the log.

    Chunks are idempotent and unordered on arrival: the assembler keys
    them by ``(generation, index)`` and ignores duplicates, so a
    transfer interrupted by a connection reset (or restarted whole by a
    re-promoted primary) converges to the same snapshot."""

    generation: int
    index: int
    total: int
    data: bytes

    def write(self, w: Writer) -> None:
        w.uvarint(KIND_CHECKPOINT_CHUNK).uvarint(self.generation)
        w.uvarint(self.index).uvarint(self.total)
        w.uvarint(len(self.data)).raw(self.data)

    @staticmethod
    def read(r: Reader) -> "CheckpointChunkRecord":
        generation = r.uvarint()
        index = r.uvarint()
        total = r.uvarint()
        return CheckpointChunkRecord(
            generation, index, total, r.raw(r.uvarint())
        )


register_record_kind(KIND_CHECKPOINT_CHUNK, CheckpointChunkRecord.read,
                     core=True)


@dataclass(frozen=True)
class DeltaChunkRecord:
    """One slice of an encoded delta checkpoint.

    Like :class:`CheckpointChunkRecord` but keyed by ``(generation,
    seq)`` — a primary emits many deltas per generation.  Deliberately
    *not* given a parse rule in the machine's log parser: a torn delta
    in a crashed primary's log tail is simply ignored by recovery."""

    generation: int
    seq: int
    index: int
    total: int
    data: bytes

    def write(self, w: Writer) -> None:
        w.uvarint(KIND_CHECKPOINT_DELTA).uvarint(self.generation)
        w.uvarint(self.seq).uvarint(self.index).uvarint(self.total)
        w.uvarint(len(self.data)).raw(self.data)

    @staticmethod
    def read(r: Reader) -> "DeltaChunkRecord":
        generation = r.uvarint()
        seq = r.uvarint()
        index = r.uvarint()
        total = r.uvarint()
        return DeltaChunkRecord(generation, seq, index, total,
                                r.raw(r.uvarint()))


register_record_kind(KIND_CHECKPOINT_DELTA, DeltaChunkRecord.read,
                     core=True)


@dataclass(frozen=True)
class Checkpoint:
    """An encoded snapshot plus the digest it must restore to.

    ``sched_epoch`` is the primary's count of shipped ScheduleRecords
    at capture time: after steady-state log truncation the retained
    tail's DigestRecords still carry absolute epochs, so a replaying
    backup offsets its consumed-record count by this value."""

    generation: int
    digest: StateDigest
    payload: bytes
    sched_epoch: int = 0

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        w = Writer()
        w.uvarint(self.generation).uvarint(self.sched_epoch)
        w.uvarint(len(self.digest.components))
        for name, value in self.digest.components:
            w.text(name).raw(value.to_bytes(16, "big"))
        w.uvarint(len(self.payload)).raw(self.payload)
        return w.bytes()

    @staticmethod
    def decode(data: bytes) -> "Checkpoint":
        r = Reader(data)
        generation = r.uvarint()
        sched_epoch = r.uvarint()
        components = []
        for _ in range(r.uvarint()):
            name = r.text()
            components.append((name, int.from_bytes(r.raw(16), "big")))
        payload = r.raw(r.uvarint())
        if not r.exhausted:
            raise ReplicationError("trailing bytes after checkpoint")
        return Checkpoint(generation, StateDigest(tuple(components)),
                          payload, sched_epoch)

    # ------------------------------------------------------------------
    def to_chunks(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES
                  ) -> List[CheckpointChunkRecord]:
        """Frame the encoded checkpoint for shipment through the log."""
        if chunk_bytes <= 0:
            raise ReplicationError("chunk size must be positive")
        encoded = self.encode()
        total = max(1, -(-len(encoded) // chunk_bytes))
        return [
            CheckpointChunkRecord(
                self.generation, index, total,
                encoded[index * chunk_bytes:(index + 1) * chunk_bytes],
            )
            for index in range(total)
        ]

    @property
    def byte_size(self) -> int:
        return len(self.payload)

    def state(self) -> "_SnapshotState":
        """Decode the payload into its structured form (tests, env
        priming).  Heap references resolve to freshly built shell
        objects, not to any live JVM."""
        return _read_state(self.payload)


class CheckpointAssembler:
    """Receive-side reassembly of chunked checkpoints.

    Duplicate chunks (retransmission, restarted transfer) are ignored;
    a chunk whose ``total`` disagrees with the first chunk seen for its
    generation marks the transfer corrupt.  ``feed`` returns the
    decoded :class:`Checkpoint` exactly once, when the last missing
    chunk arrives."""

    def __init__(self) -> None:
        self._partial: Dict[int, Tuple[int, Dict[int, bytes]]] = {}
        self._done: Dict[int, bool] = {}

    def feed(self, record: CheckpointChunkRecord) -> Optional[Checkpoint]:
        gen = record.generation
        if self._done.get(gen):
            return None
        total, chunks = self._partial.setdefault(gen, (record.total, {}))
        if total != record.total:
            raise ReplicationError(
                f"checkpoint transfer for generation {gen} is inconsistent: "
                f"chunk claims {record.total} total, transfer began with "
                f"{total}"
            )
        if not 0 <= record.index < total:
            raise ReplicationError(
                f"checkpoint chunk index {record.index} out of range "
                f"0..{total - 1}"
            )
        chunks.setdefault(record.index, record.data)
        if len(chunks) < total:
            return None
        encoded = b"".join(chunks[i] for i in range(total))
        checkpoint = Checkpoint.decode(encoded)
        if checkpoint.generation != gen:
            raise ReplicationError(
                f"checkpoint generation mismatch: chunks say {gen}, "
                f"payload says {checkpoint.generation}"
            )
        self._done[gen] = True
        del self._partial[gen]
        return checkpoint

    def pending(self, generation: int) -> int:
        """Chunks received so far for an incomplete transfer."""
        entry = self._partial.get(generation)
        return len(entry[1]) if entry else 0

    def discard(self, generation: int) -> None:
        """Drop a torn transfer (its primary died mid-flight)."""
        self._partial.pop(generation, None)


@dataclass(frozen=True)
class DeltaCheckpoint:
    """An incremental snapshot since a base checkpoint.

    ``seq`` numbers the checkpoint stream within a generation (the
    arm-time full checkpoint is seq 0); ``base_seq`` names the state
    this delta applies to, letting the adopter refuse out-of-order
    composition.  ``digest`` is the digest of the *complete* state at
    capture — what the composed full checkpoint must restore to."""

    generation: int
    seq: int
    base_seq: int
    sched_epoch: int
    digest: StateDigest
    payload: bytes

    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        w = Writer()
        w.uvarint(self.generation).uvarint(self.seq)
        w.uvarint(self.base_seq).uvarint(self.sched_epoch)
        w.uvarint(len(self.digest.components))
        for name, value in self.digest.components:
            w.text(name).raw(value.to_bytes(16, "big"))
        w.uvarint(len(self.payload)).raw(self.payload)
        return w.bytes()

    @staticmethod
    def decode(data: bytes) -> "DeltaCheckpoint":
        r = Reader(data)
        generation = r.uvarint()
        seq = r.uvarint()
        base_seq = r.uvarint()
        sched_epoch = r.uvarint()
        components = []
        for _ in range(r.uvarint()):
            name = r.text()
            components.append((name, int.from_bytes(r.raw(16), "big")))
        payload = r.raw(r.uvarint())
        if not r.exhausted:
            raise ReplicationError("trailing bytes after delta checkpoint")
        return DeltaCheckpoint(generation, seq, base_seq, sched_epoch,
                               StateDigest(tuple(components)), payload)

    # ------------------------------------------------------------------
    def to_chunks(self, chunk_bytes: int = DEFAULT_CHUNK_BYTES
                  ) -> List[DeltaChunkRecord]:
        if chunk_bytes <= 0:
            raise ReplicationError("chunk size must be positive")
        encoded = self.encode()
        total = max(1, -(-len(encoded) // chunk_bytes))
        return [
            DeltaChunkRecord(
                self.generation, self.seq, index, total,
                encoded[index * chunk_bytes:(index + 1) * chunk_bytes],
            )
            for index in range(total)
        ]

    @property
    def byte_size(self) -> int:
        return len(self.payload)


class DeltaAssembler:
    """Receive-side reassembly of chunked delta checkpoints, keyed by
    ``(generation, seq)`` with the same idempotence rules as
    :class:`CheckpointAssembler`."""

    def __init__(self) -> None:
        self._partial: Dict[Tuple[int, int], Tuple[int, Dict[int, bytes]]] = {}
        self._done: Dict[Tuple[int, int], bool] = {}

    def feed(self, record: DeltaChunkRecord) -> Optional[DeltaCheckpoint]:
        key = (record.generation, record.seq)
        if self._done.get(key):
            return None
        total, chunks = self._partial.setdefault(key, (record.total, {}))
        if total != record.total:
            raise ReplicationError(
                f"delta transfer {key} is inconsistent: chunk claims "
                f"{record.total} total, transfer began with {total}"
            )
        if not 0 <= record.index < total:
            raise ReplicationError(
                f"delta chunk index {record.index} out of range "
                f"0..{total - 1}"
            )
        chunks.setdefault(record.index, record.data)
        if len(chunks) < total:
            return None
        encoded = b"".join(chunks[i] for i in range(total))
        delta = DeltaCheckpoint.decode(encoded)
        if (delta.generation, delta.seq) != key:
            raise ReplicationError(
                f"delta identity mismatch: chunks say {key}, payload "
                f"says {(delta.generation, delta.seq)}"
            )
        self._done[key] = True
        del self._partial[key]
        return delta


# ======================================================================
# Snapshot: serialize
# ======================================================================
def _monitor_live(monitor) -> bool:
    return bool(
        monitor.owner is not None or monitor.recursion
        or monitor.entry_queue or monitor.wait_set or monitor.l_asn
        or monitor.l_id is not None
    )


def _monitor_tuple(oid: int, monitor) -> Tuple:
    return (
        oid,
        monitor.owner.vid if monitor.owner is not None else None,
        monitor.recursion,
        monitor.l_asn,
        monitor.l_id,
        [t.vid for t in monitor.entry_queue],
        [t.vid for t in monitor.wait_set],
    )


def _thread_dict(t: JavaThread) -> Dict[str, Any]:
    blocked = t.blocked_on
    if blocked is None:
        blocked_oid = None
    else:
        if blocked.obj is None:
            raise ReplicationError(
                f"{t.vid_str} blocks on a monitor owned by no heap "
                f"object — cannot checkpoint"
            )
        blocked_oid = blocked.obj.oid
    frames = []
    for frame in t.frames:
        method = frame.method
        frames.append({
            "class": method.declaring_class.name,
            "method": method.name,
            "nargs": method.nargs,
            "pc": frame.pc,
            "locals": list(frame.locals),
            "stack": list(frame.stack),
            "sync_oid": (frame.sync_object.oid
                         if frame.sync_object is not None else None),
            "held_oids": [obj.oid for obj in frame.held_monitors],
        })
    return {
        "vid": t.vid,
        "name": t.name,
        "is_daemon": t.is_daemon,
        "is_system": t.is_system,
        "reacquiring": t.reacquiring,
        "in_native": t.in_native,
        "forbid_sync": t.forbid_sync,
        "forbid_env": t.forbid_env,
        "state": t.state.value,
        "br_cnt": t.br_cnt,
        "mon_cnt": t.mon_cnt,
        "t_asn": t.t_asn,
        "instructions": t.instructions,
        "children_spawned": t.children_spawned,
        "saved_recursion": t.saved_recursion,
        "wakeup_time": t.wakeup_time,
        "blocked_on_oid": blocked_oid,
        "thread_object_oid": (t.thread_object.oid
                              if t.thread_object is not None else None),
        "pending_exception": t.pending_exception,
        "joiner_vids": [j.vid for j in t.joiners],
        "frames": frames,
    }


def _capture_state(jvm: JVM, se_manager, env_snapshot: Dict[str, str],
                   native_seqs: Optional[Dict[Vid, int]],
                   include_heap: bool = True) -> "_SnapshotState":
    """Build the structured snapshot of a live JVM.

    ``include_heap=False`` skips the O(heap) object walk — delta
    captures stream the dirty objects directly and only need the
    (small) non-heap sections here."""
    s = _SnapshotState()
    s.instructions = jvm.instructions
    s.heavy_ops = jvm.heavy_ops
    s.native_calls = jvm.native_calls
    s.time_skew_ms = jvm._time_skew_ms

    heap = jvm.heap
    s.next_oid = heap._next_oid
    s.total_allocations = heap.total_allocations
    s.used_cells = heap.used_cells
    s.gc_requested = heap.gc_requested
    if include_heap:
        s.objects = list(heap.objects)
        s.by_oid = {obj.oid: obj for obj in s.objects}
        for obj in s.objects:
            monitor = obj.monitor
            if monitor is not None and _monitor_live(monitor):
                s.monitors.append(_monitor_tuple(obj.oid, monitor))

    s.statics = dict(jvm.statics)
    for t in jvm.scheduler.threads:
        s.threads.append(_thread_dict(t))

    scheduler = jvm.scheduler
    s.runnable_vids = [t.vid for t in scheduler.runnable]
    s.current_vid = (scheduler.current.vid
                     if scheduler.current is not None else None)
    s.last_reason = (scheduler.last_reason.value
                     if scheduler.last_reason is not None else None)
    s.reschedules = scheduler.reschedules
    s.slices = scheduler.slices

    sync = jvm.sync
    s.notify_wakes_all = sync.notify_wakes_all
    s.total_acquisitions = sync.total_acquisitions
    s.monitors_created = sync.monitors_created
    s.largest_l_asn = sync.largest_l_asn
    s.parked_vids = [t.vid for t in sync.parked_threads]

    s.native_seqs = dict(native_seqs or {})
    s.class_locks = {name: obj.oid
                     for name, obj in jvm._class_locks.items()}
    s.daemon_requests = dict(jvm._daemon_requests)
    s.uncaught = list(jvm.uncaught)
    s.main_vid = (jvm.main_thread.vid
                  if jvm.main_thread is not None else None)
    s.se_state = se_manager.snapshot()
    s.env_snapshot = dict(env_snapshot)
    return s


def _write_object_shell(w: Writer, obj: Any) -> None:
    if isinstance(obj, JArray):
        w.uvarint(1).uvarint(obj.oid).text(obj.elem_type)
    else:
        w.uvarint(0).uvarint(obj.oid).text(obj.class_name)


def _write_object_body(w: Writer, obj: Any,
                       monitor_block: Optional[Tuple]) -> None:
    if isinstance(obj, JArray):
        w.uvarint(len(obj.data))
        for v in obj.data:
            _write_value(w, v)
    else:
        w.uvarint(len(obj.fields))
        for name, v in obj.fields.items():
            w.text(name)
            _write_value(w, v)
    if monitor_block is None:
        w.uvarint(0)
        return
    _, owner_vid, recursion, l_asn, l_id, entry, waiters = monitor_block
    w.uvarint(1)
    _write_opt_vid(w, owner_vid)
    w.uvarint(recursion).uvarint(l_asn)
    if l_id is None:
        w.uvarint(0)
    else:
        w.uvarint(1).uvarint(l_id)
    w.uvarint(len(entry))
    for vid in entry:
        w.vid(vid)
    w.uvarint(len(waiters))
    for vid in waiters:
        w.vid(vid)


def _write_nonheap(w: Writer, s: "_SnapshotState") -> None:
    # --- statics -------------------------------------------------------
    w.uvarint(len(s.statics))
    for (class_name, field_name) in sorted(s.statics):
        w.text(class_name).text(field_name)
        _write_value(w, s.statics[(class_name, field_name)])

    # --- threads, in scheduler registration order ----------------------
    w.uvarint(len(s.threads))
    for t in s.threads:
        w.vid(t["vid"]).text(t["name"])
        flags = (
            (1 if t["is_daemon"] else 0)
            | (2 if t["is_system"] else 0)
            | (4 if t["reacquiring"] else 0)
            | (8 if t["in_native"] else 0)
            | (16 if t["forbid_sync"] else 0)
            | (32 if t["forbid_env"] else 0)
        )
        w.uvarint(flags).text(t["state"])
        w.uvarint(t["br_cnt"]).uvarint(t["mon_cnt"]).uvarint(t["t_asn"])
        w.uvarint(t["instructions"]).uvarint(t["children_spawned"])
        w.uvarint(t["saved_recursion"])
        if t["wakeup_time"] is None:
            w.uvarint(0)
        else:
            w.uvarint(1).f64(t["wakeup_time"])
        if t["blocked_on_oid"] is None:
            w.uvarint(0)
        else:
            w.uvarint(1).uvarint(t["blocked_on_oid"])
        if t["thread_object_oid"] is None:
            w.uvarint(0)
        else:
            w.uvarint(1).uvarint(t["thread_object_oid"])
        _write_value(w, t["pending_exception"])
        w.uvarint(len(t["joiner_vids"]))
        for vid in t["joiner_vids"]:
            w.vid(vid)
        w.uvarint(len(t["frames"]))
        for f in t["frames"]:
            w.text(f["class"]).text(f["method"])
            w.uvarint(f["nargs"]).uvarint(f["pc"])
            w.uvarint(len(f["locals"]))
            for v in f["locals"]:
                _write_value(w, v)
            w.uvarint(len(f["stack"]))
            for v in f["stack"]:
                _write_value(w, v)
            if f["sync_oid"] is None:
                w.uvarint(0)
            else:
                w.uvarint(1).uvarint(f["sync_oid"])
            w.uvarint(len(f["held_oids"]))
            for oid in f["held_oids"]:
                w.uvarint(oid)

    # --- scheduler ------------------------------------------------------
    w.uvarint(len(s.runnable_vids))
    for vid in s.runnable_vids:
        w.vid(vid)
    _write_opt_vid(w, s.current_vid)
    if s.last_reason is None:
        w.uvarint(0)
    else:
        w.uvarint(1).text(s.last_reason)
    w.uvarint(s.reschedules).uvarint(s.slices)

    # --- sync manager ---------------------------------------------------
    w.uvarint(1 if s.notify_wakes_all else 0)
    w.uvarint(s.total_acquisitions).uvarint(s.monitors_created)
    w.uvarint(s.largest_l_asn)
    w.uvarint(len(s.parked_vids))
    for vid in s.parked_vids:
        w.vid(vid)

    # --- native sequence counters (v2) ---------------------------------
    w.uvarint(len(s.native_seqs))
    for vid in sorted(s.native_seqs):
        w.vid(vid).uvarint(s.native_seqs[vid])

    # --- naming tables / misc ------------------------------------------
    w.uvarint(len(s.class_locks))
    for name in sorted(s.class_locks):
        w.text(name).uvarint(s.class_locks[name])
    w.uvarint(len(s.daemon_requests))
    for oid in sorted(s.daemon_requests):
        w.uvarint(oid).uvarint(1 if s.daemon_requests[oid] else 0)
    w.uvarint(len(s.uncaught))
    for vid_str, class_name, message in s.uncaught:
        w.text(vid_str).text(class_name).text(message)
    _write_opt_vid(w, s.main_vid)

    # --- side-effect handler state / stable environment ----------------
    _write_value(w, s.se_state)
    _write_value(w, dict(s.env_snapshot))


def _encode_state(s: "_SnapshotState") -> bytes:
    """Serialize a structured snapshot to the full-checkpoint payload.

    The single encoder for both live captures and delta composition:
    ``_read_state(_encode_state(s))`` round-trips."""
    w = Writer()
    w.uvarint(_STATE_VERSION)
    w.uvarint(s.instructions).uvarint(s.heavy_ops)
    w.uvarint(s.native_calls)
    w.f64(s.time_skew_ms)

    # --- heap: shells, then contents (so references resolve) ----------
    objects = list(s.objects)
    w.uvarint(s.next_oid).uvarint(s.total_allocations)
    w.uvarint(s.used_cells).uvarint(1 if s.gc_requested else 0)
    w.uvarint(len(objects))
    for obj in objects:
        _write_object_shell(w, obj)
    monitors_by_oid = {m[0]: m for m in s.monitors}
    for obj in objects:
        _write_object_body(w, obj, monitors_by_oid.get(obj.oid))

    _write_nonheap(w, s)
    return w.bytes()


def take_checkpoint(jvm: JVM, se_manager, *, generation: int,
                    env_snapshot: Optional[Dict[str, str]] = None,
                    native_seqs: Optional[Dict[Vid, int]] = None,
                    sched_epoch: int = 0) -> Checkpoint:
    """Snapshot ``jvm`` (plus side-effect-handler state) as of now.

    Must be taken at a *quiescent point* — bootstrap, or a paused run
    loop — so no thread is mid-slice.  The embedded digest is computed
    from the same state the payload serializes, which is what lets the
    receiver verify the restore."""
    digest = compute_state_digest(jvm, include_env=False)
    state = _capture_state(jvm, se_manager, env_snapshot or {}, native_seqs)
    return Checkpoint(generation, digest, _encode_state(state), sched_epoch)


def take_delta_checkpoint(jvm: JVM, se_manager, *, generation: int,
                          seq: int, base_seq: int, sched_epoch: int = 0,
                          env_snapshot: Optional[Dict[str, str]] = None,
                          native_seqs: Optional[Dict[Vid, int]] = None
                          ) -> DeltaCheckpoint:
    """Capture the state changed since the heap's last ``advance_era()``.

    Serializes only dirty heap objects (``mut_era >= era``) and the
    freed-oid set; non-heap sections (threads, scheduler, statics, sync,
    handler state) ship whole — they are small next to the heap.  The
    caller advances the heap era once the delta is safely adopted."""
    digest = compute_state_digest(jvm, include_env=False)
    heap = jvm.heap
    w = Writer()
    w.uvarint(_STATE_VERSION)
    w.uvarint(jvm.instructions).uvarint(jvm.heavy_ops)
    w.uvarint(jvm.native_calls)
    w.f64(jvm._time_skew_ms)

    w.uvarint(heap._next_oid).uvarint(heap.total_allocations)
    w.uvarint(heap.used_cells).uvarint(1 if heap.gc_requested else 0)
    freed = sorted(heap.freed_oids())
    w.uvarint(len(freed))
    for oid in freed:
        w.uvarint(oid)
    dirty = list(heap.dirty_objects())
    w.uvarint(len(dirty))
    for obj in dirty:
        _write_object_shell(w, obj)
    for obj in dirty:
        monitor = obj.monitor
        block = (_monitor_tuple(obj.oid, monitor)
                 if monitor is not None and _monitor_live(monitor)
                 else None)
        _write_object_body(w, obj, block)

    s = _capture_state(jvm, se_manager, env_snapshot or {}, native_seqs,
                       include_heap=False)
    _write_nonheap(w, s)
    return DeltaCheckpoint(generation, seq, base_seq, sched_epoch,
                           digest, w.bytes())


def compose_delta(base: Checkpoint, delta: DeltaCheckpoint) -> Checkpoint:
    """Merge a delta onto a full checkpoint, yielding a full checkpoint.

    Pure state-level surgery — no JVM involved, so any replica (or the
    conform harness) can maintain a recovery basis from the checkpoint
    stream.  Correctness is *checked*, not assumed: the result embeds
    the digest the primary computed over its complete state at delta
    capture, and restore refuses the snapshot on any mismatch."""
    if delta.generation != base.generation:
        raise ReplicationError(
            f"delta generation {delta.generation} does not match base "
            f"checkpoint generation {base.generation}"
        )
    s = _read_state(base.payload)
    r = Reader(delta.payload)
    version = r.uvarint()
    if version != _STATE_VERSION:
        raise ReplicationError(
            f"delta state version {version} is not supported "
            f"(expected {_STATE_VERSION})"
        )
    s.instructions = r.uvarint()
    s.heavy_ops = r.uvarint()
    s.native_calls = r.uvarint()
    s.time_skew_ms = r.f64()
    s.next_oid = r.uvarint()
    s.total_allocations = r.uvarint()
    s.used_cells = r.uvarint()
    s.gc_requested = bool(r.uvarint())

    freed = {r.uvarint() for _ in range(r.uvarint())}
    for oid in freed:
        s.by_oid.pop(oid, None)

    # Dirty shells: update in place where the oid exists (clean objects'
    # references to it stay valid), create otherwise.
    dirty_objs: List[Any] = []
    dirty_oids = set()
    for _ in range(r.uvarint()):
        kind = r.uvarint()
        oid = r.uvarint()
        type_name = r.text()
        existing = s.by_oid.get(oid)
        if existing is not None:
            if (1 if isinstance(existing, JArray) else 0) != kind:
                raise ReplicationError(
                    f"delta re-types oid {oid} — oids are never reused, "
                    f"refusing composition"
                )
            obj = existing
        elif kind == 1:
            obj = JArray(type_name, [], oid)
            s.by_oid[oid] = obj
        else:
            obj = JObject(type_name, {}, oid)
            s.by_oid[oid] = obj
        dirty_objs.append(obj)
        dirty_oids.add(oid)

    def resolve(oid: int) -> Any:
        try:
            return s.by_oid[oid]
        except KeyError:
            raise ReplicationError(
                f"delta references unknown oid {oid}"
            ) from None

    delta_monitors: List[Tuple] = []
    for obj in dirty_objs:
        if isinstance(obj, JObject):
            obj.fields.clear()
        _read_object_body(r, obj, resolve, delta_monitors)

    # Monitor blocks: the sync layer dirties an object on every monitor
    # transition, so the delta's blocks fully cover changed monitors;
    # base blocks survive only for untouched, unfreed objects.
    s.monitors = [
        m for m in s.monitors
        if m[0] not in dirty_oids and m[0] not in freed
    ] + delta_monitors

    # The live heap list is ascending-oid (allocation appends, GC keeps
    # relative order), so rebuilding sorted reproduces it exactly.
    s.objects = sorted(s.by_oid.values(), key=lambda obj: obj.oid)

    # Non-heap sections replace the base's wholesale.
    _read_nonheap(r, s, resolve)
    if not r.exhausted:
        raise ReplicationError("trailing bytes after delta state")

    return Checkpoint(delta.generation, delta.digest, _encode_state(s),
                      delta.sched_epoch)


# ======================================================================
# Snapshot: structured read
# ======================================================================
class _SnapshotState:
    """The decoded payload, with heap objects materialized as shells."""

    def __init__(self) -> None:
        self.instructions = 0
        self.heavy_ops = 0
        self.native_calls = 0
        self.time_skew_ms = 0.0
        self.next_oid = 1
        self.total_allocations = 0
        self.used_cells = 0
        self.gc_requested = False
        self.objects: List[Any] = []
        self.by_oid: Dict[int, Any] = {}
        #: (oid, owner_vid, recursion, l_asn, l_id, entry_vids, wait_vids)
        self.monitors: List[Tuple] = []
        self.statics: Dict[Tuple[str, str], Any] = {}
        #: Per-thread dicts, in registration order.
        self.threads: List[Dict[str, Any]] = []
        self.runnable_vids: List[Vid] = []
        self.current_vid: Optional[Vid] = None
        self.last_reason: Optional[str] = None
        self.reschedules = 0
        self.slices = 0
        self.notify_wakes_all = False
        self.total_acquisitions = 0
        self.monitors_created = 0
        self.largest_l_asn = 0
        self.parked_vids: List[Vid] = []
        #: Per-thread native sequence counters at capture (v2): a
        #: backup seeded from this state must continue the primary's
        #: native numbering, not restart at zero.
        self.native_seqs: Dict[Vid, int] = {}
        self.class_locks: Dict[str, int] = {}
        self.daemon_requests: Dict[int, bool] = {}
        self.uncaught: List[Tuple[str, str, str]] = []
        self.main_vid: Optional[Vid] = None
        self.se_state: Dict[str, Dict[str, Any]] = {}
        self.env_snapshot: Dict[str, str] = {}


def _read_object_body(r: Reader, obj: Any, resolve: Callable[[int], Any],
                      monitors_out: List[Tuple]) -> None:
    """Read one object's contents + optional monitor block."""
    if isinstance(obj, JArray):
        obj.data[:] = [
            _read_value(r, resolve) for _ in range(r.uvarint())
        ]
    else:
        for _ in range(r.uvarint()):
            name = r.text()
            obj.fields[name] = _read_value(r, resolve)
    if r.uvarint():
        owner_vid = _read_opt_vid(r)
        recursion = r.uvarint()
        l_asn = r.uvarint()
        l_id = r.uvarint() if r.uvarint() else None
        entry = [r.vid() for _ in range(r.uvarint())]
        waiters = [r.vid() for _ in range(r.uvarint())]
        monitors_out.append(
            (obj.oid, owner_vid, recursion, l_asn, l_id, entry, waiters)
        )


def _read_state(payload: bytes) -> _SnapshotState:
    r = Reader(payload)
    version = r.uvarint()
    if version != _STATE_VERSION:
        raise ReplicationError(
            f"checkpoint state version {version} is not supported "
            f"(expected {_STATE_VERSION})"
        )
    s = _SnapshotState()
    s.instructions = r.uvarint()
    s.heavy_ops = r.uvarint()
    s.native_calls = r.uvarint()
    s.time_skew_ms = r.f64()

    # --- heap shells ----------------------------------------------------
    s.next_oid = r.uvarint()
    s.total_allocations = r.uvarint()
    s.used_cells = r.uvarint()
    s.gc_requested = bool(r.uvarint())
    n_objects = r.uvarint()
    for _ in range(n_objects):
        kind = r.uvarint()
        oid = r.uvarint()
        if kind == 1:
            obj: Any = JArray(r.text(), [], oid)
        else:
            obj = JObject(r.text(), {}, oid)
        s.objects.append(obj)
        s.by_oid[oid] = obj

    def resolve(oid: int) -> Any:
        try:
            return s.by_oid[oid]
        except KeyError:
            raise ReplicationError(
                f"checkpoint references unknown oid {oid}"
            ) from None

    # --- heap contents --------------------------------------------------
    for obj in s.objects:
        _read_object_body(r, obj, resolve, s.monitors)

    _read_nonheap(r, s, resolve)
    if not r.exhausted:
        raise ReplicationError("trailing bytes after checkpoint state")
    return s


def _read_nonheap(r: Reader, s: _SnapshotState,
                  resolve: Callable[[int], Any]) -> None:
    """Read the non-heap sections into ``s``, replacing wholesale (the
    delta-composition path reuses a base state object)."""
    # --- statics --------------------------------------------------------
    s.statics = {}
    for _ in range(r.uvarint()):
        class_name = r.text()
        field_name = r.text()
        s.statics[(class_name, field_name)] = _read_value(r, resolve)

    # --- threads --------------------------------------------------------
    s.threads = []
    for _ in range(r.uvarint()):
        t: Dict[str, Any] = {}
        t["vid"] = r.vid()
        t["name"] = r.text()
        flags = r.uvarint()
        t["is_daemon"] = bool(flags & 1)
        t["is_system"] = bool(flags & 2)
        t["reacquiring"] = bool(flags & 4)
        t["in_native"] = bool(flags & 8)
        t["forbid_sync"] = bool(flags & 16)
        t["forbid_env"] = bool(flags & 32)
        t["state"] = r.text()
        t["br_cnt"] = r.uvarint()
        t["mon_cnt"] = r.uvarint()
        t["t_asn"] = r.uvarint()
        t["instructions"] = r.uvarint()
        t["children_spawned"] = r.uvarint()
        t["saved_recursion"] = r.uvarint()
        t["wakeup_time"] = r.f64() if r.uvarint() else None
        t["blocked_on_oid"] = r.uvarint() if r.uvarint() else None
        t["thread_object_oid"] = r.uvarint() if r.uvarint() else None
        t["pending_exception"] = _read_value(r, resolve)
        t["joiner_vids"] = [r.vid() for _ in range(r.uvarint())]
        frames = []
        for _ in range(r.uvarint()):
            f: Dict[str, Any] = {}
            f["class"] = r.text()
            f["method"] = r.text()
            f["nargs"] = r.uvarint()
            f["pc"] = r.uvarint()
            f["locals"] = [
                _read_value(r, resolve) for _ in range(r.uvarint())
            ]
            f["stack"] = [
                _read_value(r, resolve) for _ in range(r.uvarint())
            ]
            f["sync_oid"] = r.uvarint() if r.uvarint() else None
            f["held_oids"] = [r.uvarint() for _ in range(r.uvarint())]
            frames.append(f)
        t["frames"] = frames
        s.threads.append(t)

    # --- scheduler / sync / misc ---------------------------------------
    s.runnable_vids = [r.vid() for _ in range(r.uvarint())]
    s.current_vid = _read_opt_vid(r)
    s.last_reason = r.text() if r.uvarint() else None
    s.reschedules = r.uvarint()
    s.slices = r.uvarint()
    s.notify_wakes_all = bool(r.uvarint())
    s.total_acquisitions = r.uvarint()
    s.monitors_created = r.uvarint()
    s.largest_l_asn = r.uvarint()
    s.parked_vids = [r.vid() for _ in range(r.uvarint())]
    s.native_seqs = {}
    for _ in range(r.uvarint()):
        vid = r.vid()
        s.native_seqs[vid] = r.uvarint()
    s.class_locks = {}
    for _ in range(r.uvarint()):
        name = r.text()
        s.class_locks[name] = r.uvarint()
    s.daemon_requests = {}
    for _ in range(r.uvarint()):
        oid = r.uvarint()
        s.daemon_requests[oid] = bool(r.uvarint())
    s.uncaught = []
    for _ in range(r.uvarint()):
        s.uncaught.append((r.text(), r.text(), r.text()))
    s.main_vid = _read_opt_vid(r)
    s.se_state = _read_value(r, _no_refs)
    s.env_snapshot = _read_value(r, _no_refs)


# ======================================================================
# Snapshot: restore
# ======================================================================
def restore_checkpoint(checkpoint: Checkpoint, registry, natives, session,
                       config=None, *, name: str = "restored",
                       se_manager=None) -> JVM:
    """Materialize a fresh JVM from a checkpoint and verify its digest.

    Raises :class:`~repro.errors.ReplicationError` if the state digest
    re-derived from the restored machine differs from the digest the
    sender embedded — the transfer (or this restore) corrupted state
    and the snapshot must not be adopted."""
    state = _read_state(checkpoint.payload)
    jvm = JVM(registry, natives, session, config, name=name)
    _apply_state(jvm, state)
    if se_manager is not None:
        se_manager.restore_snapshot(state.se_state)
    actual = compute_state_digest(jvm, include_env=False)
    mismatched = actual.diff(checkpoint.digest)
    if mismatched:
        raise ReplicationError(
            f"checkpoint restore diverged in component(s) "
            f"{', '.join(mismatched)} for generation "
            f"{checkpoint.generation} — refusing the snapshot"
        )
    return jvm


def _apply_state(jvm: JVM, s: _SnapshotState) -> None:
    # --- heap -----------------------------------------------------------
    heap = jvm.heap
    heap.objects = list(s.objects)
    heap._next_oid = s.next_oid
    heap.used_cells = s.used_cells
    heap.total_allocations = s.total_allocations
    heap.gc_requested = s.gc_requested

    # --- statics (constructor seeded defaults; overwrite) ---------------
    for key, value in s.statics.items():
        jvm.statics[key] = value

    # --- threads, registered in snapshot order ---------------------------
    threads_by_vid: Dict[Vid, JavaThread] = {}
    for t in s.threads:
        thread = JavaThread(
            t["vid"], None, name=t["name"],
            is_daemon=t["is_daemon"], is_system=t["is_system"],
        )
        thread.state = ThreadState(t["state"])
        thread.br_cnt = t["br_cnt"]
        thread.mon_cnt = t["mon_cnt"]
        thread.t_asn = t["t_asn"]
        thread.instructions = t["instructions"]
        thread.children_spawned = t["children_spawned"]
        thread.saved_recursion = t["saved_recursion"]
        thread.wakeup_time = t["wakeup_time"]
        thread.reacquiring = t["reacquiring"]
        thread.in_native = t["in_native"]
        thread.forbid_sync = t["forbid_sync"]
        thread.forbid_env = t["forbid_env"]
        thread.pending_exception = t["pending_exception"]
        if t["thread_object_oid"] is not None:
            thread.thread_object = s.by_oid[t["thread_object_oid"]]
            jvm.threads_by_oid[t["thread_object_oid"]] = thread
        for f in t["frames"]:
            method = jvm.registry.lookup_method(
                f["class"], f["method"], f["nargs"]
            )
            frame = Frame(method, [])
            frame.locals = list(f["locals"])
            frame.stack = list(f["stack"])
            frame.pc = f["pc"]
            if f["sync_oid"] is not None:
                frame.sync_object = s.by_oid[f["sync_oid"]]
            frame.held_monitors = [s.by_oid[oid] for oid in f["held_oids"]]
            thread.frames.append(frame)
        jvm.scheduler.register(thread)
        jvm.threads_by_vid[thread.vid] = thread
        threads_by_vid[thread.vid] = thread

    def thread_of(vid: Vid) -> JavaThread:
        try:
            return threads_by_vid[vid]
        except KeyError:
            raise ReplicationError(
                f"checkpoint references unknown thread "
                f"t{'.'.join(map(str, vid))}"
            ) from None

    # --- joiners (threads must all exist first) -------------------------
    for t in s.threads:
        thread = threads_by_vid[t["vid"]]
        thread.joiners = [thread_of(vid) for vid in t["joiner_vids"]]

    # --- monitors -------------------------------------------------------
    for oid, owner_vid, recursion, l_asn, l_id, entry, waiters in s.monitors:
        monitor = get_monitor(s.by_oid[oid])
        monitor.owner = (
            thread_of(owner_vid) if owner_vid is not None else None
        )
        monitor.recursion = recursion
        monitor.l_asn = l_asn
        monitor.l_id = l_id
        monitor.entry_queue.extend(thread_of(vid) for vid in entry)
        monitor.wait_set.extend(thread_of(vid) for vid in waiters)

    # --- thread -> monitor references -----------------------------------
    for t in s.threads:
        if t["blocked_on_oid"] is not None:
            # An admission-parked thread can reference a monitor with no
            # serialized state of its own (nobody owns or queues on it
            # yet); materialize it lazily, as the sync manager would.
            monitor = get_monitor(s.by_oid[t["blocked_on_oid"]])
            threads_by_vid[t["vid"]].blocked_on = monitor

    # --- scheduler ------------------------------------------------------
    scheduler = jvm.scheduler
    scheduler.runnable.extend(thread_of(vid) for vid in s.runnable_vids)
    scheduler.current = (
        thread_of(s.current_vid) if s.current_vid is not None else None
    )
    scheduler.last_reason = (
        SliceEnd(s.last_reason) if s.last_reason is not None else None
    )
    scheduler.reschedules = s.reschedules
    scheduler.slices = s.slices

    # --- sync manager ---------------------------------------------------
    sync = jvm.sync
    sync.notify_wakes_all = s.notify_wakes_all
    sync.total_acquisitions = s.total_acquisitions
    sync.monitors_created = s.monitors_created
    sync.largest_l_asn = s.largest_l_asn
    sync._parked.extend(thread_of(vid) for vid in s.parked_vids)

    # --- misc ------------------------------------------------------------
    jvm.instructions = s.instructions
    jvm.heavy_ops = s.heavy_ops
    jvm.native_calls = s.native_calls
    jvm._time_skew_ms = s.time_skew_ms
    jvm._class_locks.update(
        (name, s.by_oid[oid]) for name, oid in s.class_locks.items()
    )
    jvm._daemon_requests.update(s.daemon_requests)
    jvm.uncaught.extend(s.uncaught)
    jvm.main_thread = (
        thread_of(s.main_vid) if s.main_vid is not None else None
    )
    jvm._bootstrapped = True


# ======================================================================
def first_dispatch_vid(jvm: JVM) -> Vid:
    """The thread a primary continuing from this state dispatches first.

    Computed identically on the promoted primary and on a backup that
    restored the matching checkpoint, so a schedule-replaying backup
    knows which thread the (unlogged) first post-promotion dispatch
    ran: the head of the runnable queue, else the timed-waiting thread
    whose timer expires first (ties broken by registration order, the
    order ``wake_expired_timers`` scans)."""
    scheduler = jvm.scheduler
    if scheduler.current is not None:
        return scheduler.current.vid
    if scheduler.runnable:
        return scheduler.runnable[0].vid
    best: Optional[JavaThread] = None
    for t in scheduler.threads:
        if (t.state is ThreadState.TIMED_WAITING
                and t.wakeup_time is not None
                and (best is None or t.wakeup_time < best.wakeup_time)):
            best = t
    if best is not None:
        return best.vid
    if jvm.main_thread is not None:
        return jvm.main_thread.vid
    return ROOT_VID

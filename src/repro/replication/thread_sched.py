"""Replicated thread scheduling (paper §4.2, second technique).

Assumes R4B (exclusive access to shared data while scheduled — true on
our green-threads uniprocessor).  Whenever the primary schedules a
*different* thread, it logs a
:class:`~repro.replication.records.ScheduleRecord` containing the
descheduled thread's progress point ``(br_cnt, pc_off, mon_cnt)``, the
``l_asn`` of the monitor it was waiting on (if any), and the id of the
next thread.  The backup's controller replays the records: it runs each
thread until its progress matches the logged point, then switches to
the logged successor.  After the final record it schedules the thread
the primary intended to run next and reverts to live scheduling
(paper: "the backup must schedule t' because at the primary t' might
have interacted with the environment").

Progress points are exact: ``br_cnt`` only advances on control-flow
changes, so between two changes the pc increases monotonically and
``(br_cnt, pc_off)`` identifies a unique instruction boundary;
``mon_cnt`` disambiguates re-executed acquisition attempts.  One paper
complication does not arise here: our native methods execute atomically
within a slice, so a thread is never descheduled *inside* a native
method (the mon_cnt-budget rule of §4.2 exists in the record format and
in the replay comparison, but the budget case is unreachable — see
DESIGN.md).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.errors import RecoveryError
from repro.replication.commit import LogShipper
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import ScheduleRecord
from repro.runtime.scheduler import ScheduleController, Scheduler, SliceEnd
from repro.runtime.threads import JavaThread, ThreadState

#: Quantum used while replaying — preemption comes from progress
#: targets, never from quantum expiry.
_REPLAY_QUANTUM = 1 << 60


class PrimarySchedController(ScheduleController):
    """Primary side: jittered round-robin plus record logging."""

    def __init__(self, seed: int, quantum_base: int, quantum_jitter: int,
                 shipper: LogShipper, metrics: ReplicationMetrics) -> None:
        super().__init__(seed, quantum_base, quantum_jitter)
        self._shipper = shipper
        self._metrics = metrics

    def on_switch(self, prev: Optional[JavaThread], reason: Optional[SliceEnd],
                  next_thread: JavaThread) -> None:
        if prev is None or prev.is_system or next_thread.is_system:
            # The first dispatch (always the main thread) needs no
            # record, and system threads are never replicated.
            return
        br_cnt, pc_off, mon_cnt = prev.progress_point()
        blocked = prev.blocked_on
        l_asn = blocked.l_asn if blocked is not None else -1
        self._shipper.log(ScheduleRecord(
            br_cnt, pc_off, mon_cnt, l_asn, next_thread.vid, prev.vid
        ))
        self._metrics.schedule_records += 1


class BackupSchedController(ScheduleController):
    """Backup side: replay the primary's schedule, then go live.

    Replay preemption works because every logged progress point is an
    event boundary: the primary only ever deschedules a thread right
    after a control-flow change (quantum expiry) or at a blocking
    instruction with its counters undone, so the fast path's
    event-boundary :meth:`should_preempt` checks observe every point
    the primary could have logged.
    """

    #: Replay preemption is real here — the execution engine must call
    #: :meth:`should_preempt` at every safe-point boundary.
    needs_preempt_checks = True

    def __init__(self, records: List[ScheduleRecord],
                 fallback: ScheduleController,
                 metrics: ReplicationMetrics) -> None:
        super().__init__()
        self._records: Deque[ScheduleRecord] = deque(records)
        self._fallback = fallback
        self._metrics = metrics
        #: Set by the machine after the backup JVM exists.
        self.jvm = None
        self._current_vid = None  # None until first pick (main thread)
        self._pending_live_vid = None
        #: Hot-backup mode: when the record queue runs dry, report
        #: starvation instead of going live.
        self.hold_when_drained = False
        #: Failover-time escape hatch for the *uncertain tail*: a
        #: predicate on a vid, true while that thread's next native is
        #: a delivered output intent with no completion marker.  In
        #: hold mode the gated thread may run just far enough to
        #: resolve the intent (test/confirm/re-execute) even though the
        #: schedule log is drained — without it the replay would starve
        #: one native short of the paper's exactly-once resolution.
        self.tail_gate = None
        #: True while the controller is waiting for more log (read by
        #: the run loop's pause logic).
        self.starving = False
        #: Schedule records consumed so far — the replay's digest epoch
        #: (read by :class:`repro.replication.digest.DigestVerifier`).
        self.consumed = 0

    def extend(self, records: List[ScheduleRecord]) -> None:
        """Append newly delivered schedule records (hot backup feed)."""
        self._records.extend(records)
        if records:
            self.starving = False
            self._pending_live_vid = None

    # ------------------------------------------------------------------
    @property
    def in_recovery(self) -> bool:
        return bool(self._records)

    def remaining(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    def quantum(self, thread: JavaThread) -> int:
        if self._records:
            return _REPLAY_QUANTUM
        return self._fallback.quantum(thread)

    def _live_app_threads(self) -> int:
        return sum(
            1 for t in self.jvm.scheduler.threads
            if t.alive and not t.is_system
        )

    def should_preempt(self, thread: JavaThread) -> bool:
        if not self._records:
            # Hot backup running the single-thread prefix unbounded: the
            # moment a second thread exists, further execution would
            # guess an interleaving — stop and wait for the record.
            if (
                self.hold_when_drained
                and self.jvm is not None
                and self._live_app_threads() > 1
            ):
                # ... except the uncertain-tail thread, which must
                # reach its native; preempt it the moment the tail is
                # resolved.
                return not (self.tail_gate is not None
                            and self.tail_gate(thread.vid))
            return False
        return thread.progress_point() == self._records[0].progress

    def on_slice_end(self, thread: JavaThread, reason: SliceEnd) -> None:
        if not self._records:
            self._fallback.on_slice_end(thread, reason)
            return
        record = self._records[0]
        at_target = thread.progress_point() == record.progress
        if reason is SliceEnd.CONTROLLER:
            self._consume(record, thread)
        elif at_target and reason in (
            SliceEnd.TERMINATED, SliceEnd.WAITING, SliceEnd.BLOCKED,
            SliceEnd.YIELDED,
        ):
            self._consume(record, thread)
        elif reason in (SliceEnd.TERMINATED, SliceEnd.WAITING,
                        SliceEnd.BLOCKED, SliceEnd.PARKED):
            raise RecoveryError(
                f"schedule replay diverged: {thread.vid_str} stopped "
                f"({reason.value}) at {thread.progress_point()} before "
                f"reaching the logged point {record.progress}"
            )
        # YIELDED off-target: the primary's yield did not switch threads
        # (no other runnable thread); continue with the same thread.

    def _consume(self, record: ScheduleRecord, thread: JavaThread) -> None:
        if record.prev_t_id != thread.vid:
            raise RecoveryError(
                f"schedule replay diverged: log deschedules "
                f"t{'.'.join(map(str, record.prev_t_id))} but "
                f"{thread.vid_str} was running"
            )
        self._records.popleft()
        self._metrics.records_replayed += 1
        self.consumed += 1
        self._current_vid = record.t_id
        if not self._records:
            # Paper: after the last record, the primary's intended next
            # thread must still be scheduled first.
            self._pending_live_vid = record.t_id

    def set_resume_vid(self, vid) -> None:
        """First dispatch of a checkpoint-restored replay: the thread
        that was current at the snapshot, not necessarily main."""
        self._current_vid = vid

    def pick_next(self, scheduler: Scheduler) -> Optional[JavaThread]:
        if not self._records and self.hold_when_drained:
            live = [t for t in scheduler.threads
                    if t.alive and not t.is_system]
            if len(live) > 1:
                # With no schedule records at all (checkpoint-restored
                # replay of a log that held none), the resume thread set
                # via set_resume_vid is the one the tail gate applies to.
                vid = (self._pending_live_vid
                       if self._pending_live_vid is not None
                       else self._current_vid)
                if (vid is not None and self.tail_gate is not None
                        and self.tail_gate(vid)):
                    # Only the uncertain-tail thread may run, and only
                    # until its intent resolves (should_preempt stops
                    # it right after).
                    thread = self.jvm.threads_by_vid.get(vid)
                    if thread is not None:
                        if (thread.state is ThreadState.TIMED_WAITING
                                and thread.wakeup_time is not None):
                            return None
                        if thread.state is ThreadState.RUNNABLE:
                            if thread in scheduler.runnable:
                                scheduler.runnable.remove(thread)
                            return thread
                # Several threads but no record to bound the next slice:
                # running any of them could overshoot the primary's
                # schedule, so wait for more log.
                self.starving = True
                return None
            # A single thread has no interleaving to get wrong; native
            # record starvation paces it against the log.
            return self._fallback.pick_next(scheduler)
        if self._records:
            vid = self._current_vid
            if vid is None:
                # First dispatch: the main thread, as at the primary.
                vid = self.jvm.main_thread.vid
                self._current_vid = vid
            thread = self.jvm.threads_by_vid.get(vid)
            if thread is None:
                raise RecoveryError(
                    f"schedule log names unknown thread "
                    f"t{'.'.join(map(str, vid))}"
                )
            if (thread.state is ThreadState.TIMED_WAITING
                    and thread.wakeup_time is not None):
                # The primary ran this thread after its timer fired; let
                # the run loop advance virtual time, then retry.
                return None
            if thread.state is not ThreadState.RUNNABLE:
                raise RecoveryError(
                    f"schedule log expects {thread.vid_str} to run but it "
                    f"is {thread.state.value}"
                )
            # Keep the runnable queue clean for the eventual live phase.
            if thread in scheduler.runnable:
                scheduler.runnable.remove(thread)
            return thread
        if self._pending_live_vid is not None:
            thread = self.jvm.threads_by_vid.get(self._pending_live_vid)
            if thread is not None and thread.state is ThreadState.RUNNABLE:
                self._pending_live_vid = None
                if thread in scheduler.runnable:
                    scheduler.runnable.remove(thread)
                return thread
            if (thread is not None
                    and thread.state is ThreadState.TIMED_WAITING
                    and thread.wakeup_time is not None):
                return None
            self._pending_live_vid = None
        return self._fallback.pick_next(scheduler)

"""Replica-coordination strategies behind a pluggable registry.

The paper evaluates two ways to make the replicas agree on thread
interleaving — replicated lock synchronization (§4.2) and replicated
thread scheduling (§4.3) — and sketches a third (§6, logical lock
intervals).  This module turns "which strategy" from a string literal
baked into the machine into a registry of :class:`CoordinationStrategy`
objects, so third-party strategies plug in without editing
``machine.py``:

* a strategy exposes ``make_primary(shipper, metrics, settings,
  config)`` and ``make_backup(parsed_log, metrics, settings, config)``,
  each returning a *driver* with an ``install(jvm)`` hook that wires
  the strategy's controllers into a JVM;
* backup drivers additionally support ``extend_from(parsed)`` (hot
  backup: newly delivered records stream in) and ``set_hold(flag)``
  (hold-when-drained mode while the primary is still alive);
* :func:`register_strategy` adds a strategy under its ``name``;
  ``ReplicatedJVM(strategy="name")`` resolves through the registry, so
  existing string names keep working.

Plug-ins that need their own log record types register a wire decoder
with :func:`repro.replication.records.register_record_kind` and a
parse bucket with :func:`repro.replication.machine.register_log_record`
— the parsed log exposes unclaimed record types in ``parsed.extra``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ReplicationError
from repro.replication.lock_intervals import (
    BackupIntervalLockSync,
    PrimaryIntervalLockSync,
)
from repro.replication.lock_sync import BackupLockSync, PrimaryLockSync
from repro.replication.thread_sched import (
    BackupSchedController,
    PrimarySchedController,
)
from repro.runtime.scheduler import ScheduleController


# ======================================================================
# Drivers: what make_primary / make_backup return
# ======================================================================
class PrimaryDriver:
    """Installs a strategy's primary-side hooks into a JVM."""

    def install(self, jvm) -> None:
        raise NotImplementedError


class BackupDriver:
    """Installs a strategy's backup-side replay hooks into a JVM."""

    def install(self, jvm) -> None:
        raise NotImplementedError

    def extend_from(self, parsed) -> None:
        """Hot backup: feed newly delivered (parsed) log records."""

    def set_hold(self, hold: bool) -> None:
        """Hot backup: pause instead of failing when the log drains."""

    def digest_epoch_source(self):
        """Callable returning the replay's current digest epoch (number
        of replicated scheduling events consumed), or ``None`` if the
        strategy does not support lockstep digest comparison."""
        return None


class AdmissionPrimaryDriver(PrimaryDriver):
    """Primary driver for strategies that govern monitor admission."""

    def __init__(self, admission) -> None:
        self.admission = admission

    def install(self, jvm) -> None:
        jvm.sync.admission = self.admission


class AdmissionBackupDriver(BackupDriver):
    """Backup driver for admission-based strategies.  During replay,
    notify wakes every waiter; the admission controller then enforces
    the logged re-acquisition order (guarded-wait programs are immune
    to the extra wakeups)."""

    def __init__(self, admission, extend: Callable = None) -> None:
        self.admission = admission
        self._extend = extend

    def install(self, jvm) -> None:
        jvm.sync.admission = self.admission
        jvm.sync.notify_wakes_all = True

    def extend_from(self, parsed) -> None:
        if self._extend is not None:
            self._extend(parsed)

    def set_hold(self, hold: bool) -> None:
        self.admission.hold_when_drained = hold


class SchedulerPrimaryDriver(PrimaryDriver):
    """Primary driver for strategies that own the thread scheduler."""

    def __init__(self, controller) -> None:
        self.controller = controller

    def install(self, jvm) -> None:
        jvm.scheduler.controller = self.controller


class SchedulerBackupDriver(BackupDriver):
    def __init__(self, controller, extend: Callable = None) -> None:
        self.controller = controller
        self._extend = extend

    def install(self, jvm) -> None:
        self.controller.jvm = jvm
        jvm.scheduler.controller = self.controller

    def extend_from(self, parsed) -> None:
        if self._extend is not None:
            self._extend(parsed)

    def set_hold(self, hold: bool) -> None:
        self.controller.hold_when_drained = hold

    def digest_epoch_source(self):
        return lambda: self.controller.consumed


# ======================================================================
# The protocol and the built-in strategies
# ======================================================================
class CoordinationStrategy:
    """Base/protocol for replica-coordination strategies.

    Subclasses define ``name`` and the two factories.  ``settings`` is
    the replica's :class:`~repro.replication.machine.ReplicaSettings`,
    ``config`` the :class:`~repro.runtime.jvm.JVMConfig` — both are
    provided so strategies can seed their own controllers.
    """

    name: str = ""

    #: True when the strategy replicates the full thread interleaving,
    #: making replica states comparable at every scheduling decision —
    #: the precondition for periodic (lockstep) digest records.
    #: Strategies that replicate only lock order compare digests at the
    #: quiescent end of the run instead.
    lockstep_digest: bool = False

    def make_primary(self, shipper, metrics, settings, config) -> PrimaryDriver:
        raise NotImplementedError

    def make_backup(self, parsed_log, metrics, settings, config) -> BackupDriver:
        raise NotImplementedError


class LockSyncStrategy(CoordinationStrategy):
    """Replicated lock synchronization (§4.2): one record per monitor
    acquisition."""

    name = "lock_sync"

    def make_primary(self, shipper, metrics, settings, config):
        return AdmissionPrimaryDriver(PrimaryLockSync(shipper, metrics))

    def make_backup(self, parsed_log, metrics, settings, config):
        admission = BackupLockSync(
            parsed_log.id_maps, parsed_log.lock_acqs, metrics
        )
        return AdmissionBackupDriver(
            admission,
            extend=lambda p: admission.extend(p.id_maps, p.lock_acqs),
        )


class ThreadSchedStrategy(CoordinationStrategy):
    """Replicated thread scheduling (§4.3): one record per scheduling
    decision, replayed at exact progress points."""

    name = "thread_sched"
    lockstep_digest = True

    def make_primary(self, shipper, metrics, settings, config):
        return SchedulerPrimaryDriver(PrimarySchedController(
            settings.scheduler_seed,
            config.quantum_base,
            config.quantum_jitter,
            shipper,
            metrics,
        ))

    def make_backup(self, parsed_log, metrics, settings, config):
        controller = BackupSchedController(
            parsed_log.schedules,
            ScheduleController(
                settings.scheduler_seed,
                config.quantum_base,
                config.quantum_jitter,
            ),
            metrics,
        )
        return SchedulerBackupDriver(
            controller, extend=lambda p: controller.extend(p.schedules)
        )


class LockIntervalsStrategy(CoordinationStrategy):
    """Logical lock intervals (§6): consecutive acquisitions by one
    thread coalesce into a single interval record."""

    name = "lock_intervals"

    def make_primary(self, shipper, metrics, settings, config):
        return AdmissionPrimaryDriver(
            PrimaryIntervalLockSync(shipper, metrics)
        )

    def make_backup(self, parsed_log, metrics, settings, config):
        admission = BackupIntervalLockSync(parsed_log.intervals, metrics)
        return AdmissionBackupDriver(
            admission, extend=lambda p: admission.extend(p.intervals)
        )


# ======================================================================
# Registry
# ======================================================================
_REGISTRY: Dict[str, CoordinationStrategy] = {}


def register_strategy(strategy: CoordinationStrategy, *,
                      replace: bool = False) -> CoordinationStrategy:
    """Register a strategy under ``strategy.name``.  Third-party
    strategies registered here run through :class:`ReplicatedJVM`
    without any core edits.  Returns the strategy for decorator-ish
    chaining."""
    name = getattr(strategy, "name", "")
    if not name:
        raise ReplicationError(
            f"strategy {strategy!r} has no name; set a class-level "
            f"``name`` attribute"
        )
    if name in _REGISTRY and not replace:
        raise ReplicationError(
            f"strategy {name!r} already registered (pass replace=True "
            f"to override)"
        )
    _REGISTRY[name] = strategy
    return strategy


def resolve_strategy(spec) -> CoordinationStrategy:
    """Turn a strategy spec — a registered name or a strategy object —
    into a :class:`CoordinationStrategy`."""
    if isinstance(spec, str):
        strategy = _REGISTRY.get(spec)
        if strategy is None:
            raise ReplicationError(
                f"unknown strategy {spec!r}; expected one of "
                f"{strategy_names()} (register_strategy adds new ones)"
            )
        return strategy
    if hasattr(spec, "make_primary") and hasattr(spec, "make_backup"):
        return spec
    raise ReplicationError(
        f"strategy spec {spec!r} is neither a registered name nor a "
        f"CoordinationStrategy"
    )


def strategy_names() -> Tuple[str, ...]:
    """Registered strategy names, built-ins first."""
    builtins = ("lock_sync", "thread_sched", "lock_intervals")
    extras = tuple(sorted(set(_REGISTRY) - set(builtins)))
    return tuple(n for n in builtins if n in _REGISTRY) + extras


register_strategy(LockSyncStrategy())
register_strategy(ThreadSchedStrategy())
register_strategy(LockIntervalsStrategy())

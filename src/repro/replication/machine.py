"""The fault-tolerant JVM facade: primary-backup replication.

:class:`ReplicatedJVM` wires a program, an environment, and a strategy
("lock_sync" or "thread_sched") into the paper's architecture:

* the **primary** executes the program with the strategy's hooks
  installed, buffering log records over the channel and performing
  output commit before every output command;
* the **backup is cold**: during normal operation it only accumulates
  the log (the channel's delivered list).  When the primary fail-stops
  (via :class:`~repro.replication.commit.CrashInjector`), the failure
  detector fires and a fresh JVM is built from the *identical initial
  state* (same class registry), which replays the log — reproducing
  lock acquisitions or the thread schedule, adopting native results,
  restoring volatile environment state through side-effect handlers,
  and resolving the one uncertain output — then continues live as the
  new sole machine.

Primary and backup deliberately differ in scheduler seed, clock offset,
and entropy seed: replication must succeed *despite* divergent
non-determinism, which is the paper's entire point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.classfile.loader import ClassRegistry
from repro.env.channel import Channel
from repro.env.environment import Environment
from repro.errors import PrimaryCrashed, ReplicationError
from repro.replication.commit import CrashInjector, LogShipper
from repro.replication.failure import FailureDetector
from repro.replication.lock_intervals import (
    BackupIntervalLockSync,
    PrimaryIntervalLockSync,
)
from repro.replication.lock_sync import BackupLockSync, PrimaryLockSync
from repro.replication.metrics import ReplicationMetrics
from repro.replication.ndnatives import BackupNativePolicy, PrimaryNativePolicy
from repro.replication.records import (
    IdMap,
    LockAcqRecord,
    LockIntervalRecord,
    NativeResultRecord,
    OutputIntentRecord,
    ScheduleRecord,
    SideEffectRecord,
    decode_record,
)
from repro.replication.sehandlers import SideEffectHandler, SideEffectManager
from repro.replication.thread_sched import (
    BackupSchedController,
    PrimarySchedController,
)
from repro.runtime.jvm import JVM, JVMConfig, RunHooks, RunResult
from repro.runtime.natives import NativeRegistry
from repro.runtime.scheduler import ScheduleController
from repro.runtime.stdlib import default_natives

STRATEGIES = ("lock_sync", "thread_sched", "lock_intervals")


@dataclass(frozen=True)
class ReplicaSettings:
    """Per-replica sources of non-determinism (deliberately different
    between primary and backup — restriction R0's assumption that
    replica environments are 'sufficiently different')."""

    scheduler_seed: int
    clock_offset_ms: int
    entropy_seed: int


DEFAULT_PRIMARY = ReplicaSettings(
    scheduler_seed=101, clock_offset_ms=0, entropy_seed=7001
)
DEFAULT_BACKUP = ReplicaSettings(
    scheduler_seed=202, clock_offset_ms=137, entropy_seed=9002
)


@dataclass
class FailoverResult:
    """Outcome of one replicated run."""

    outcome: str  # "primary_completed" | "failover_completed"
    primary_result: Optional[RunResult]
    backup_result: Optional[RunResult]
    primary_metrics: ReplicationMetrics
    backup_metrics: Optional[ReplicationMetrics]
    crash_event: Optional[int] = None
    detection_intervals: Optional[int] = None

    @property
    def final_result(self) -> RunResult:
        return self.backup_result if self.backup_result is not None \
            else self.primary_result

    @property
    def failed_over(self) -> bool:
        return self.outcome == "failover_completed"


class _HeartbeatHooks(RunHooks):
    """Drive the failure detector from the primary's run loop."""

    def __init__(self, detector: FailureDetector) -> None:
        self._detector = detector

    def on_slice_end(self, jvm, thread, reason) -> None:
        self._detector.heartbeat()


@dataclass
class _ParsedLog:
    id_maps: List[IdMap] = field(default_factory=list)
    lock_acqs: List[LockAcqRecord] = field(default_factory=list)
    schedules: List[ScheduleRecord] = field(default_factory=list)
    results: Dict[Tuple[int, ...], List[NativeResultRecord]] = field(
        default_factory=dict
    )
    intents: Dict[Tuple[int, ...], List[OutputIntentRecord]] = field(
        default_factory=dict
    )
    intervals: List[LockIntervalRecord] = field(default_factory=list)
    side_effects: List[SideEffectRecord] = field(default_factory=list)
    total: int = 0


def parse_log(raw_records: List[bytes]) -> _ParsedLog:
    """Decode and partition the delivered log."""
    parsed = _ParsedLog()
    for data in raw_records:
        record = decode_record(data)
        parsed.total += 1
        if isinstance(record, IdMap):
            parsed.id_maps.append(record)
        elif isinstance(record, LockAcqRecord):
            parsed.lock_acqs.append(record)
        elif isinstance(record, ScheduleRecord):
            parsed.schedules.append(record)
        elif isinstance(record, NativeResultRecord):
            parsed.results.setdefault(record.t_id, []).append(record)
        elif isinstance(record, OutputIntentRecord):
            parsed.intents.setdefault(record.t_id, []).append(record)
        elif isinstance(record, LockIntervalRecord):
            parsed.intervals.append(record)
        elif isinstance(record, SideEffectRecord):
            parsed.side_effects.append(record)
        else:  # pragma: no cover - decode_record already rejects junk
            raise ReplicationError(f"unknown record {record!r}")
    return parsed


class ReplicatedJVM:
    """One fault-tolerant JVM: a primary, a log channel, a cold backup."""

    def __init__(
        self,
        registry: ClassRegistry,
        natives: Optional[NativeRegistry] = None,
        env: Optional[Environment] = None,
        *,
        strategy: str = "lock_sync",
        crash_at: Optional[int] = None,
        primary: ReplicaSettings = DEFAULT_PRIMARY,
        backup: ReplicaSettings = DEFAULT_BACKUP,
        jvm_config: Optional[JVMConfig] = None,
        batch_records: int = 64,
        detector_timeout: int = 3,
        se_handlers: Optional[List[SideEffectHandler]] = None,
        hot_backup: bool = False,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ReplicationError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
            )
        self.registry = registry
        self.natives = natives or default_natives()
        self.env = env or Environment()
        self.strategy = strategy
        self.crash_at = crash_at
        self.primary_settings = primary
        self.backup_settings = backup
        self.base_config = jvm_config or JVMConfig()
        self.channel = Channel(batch_records=batch_records)
        self.detector = FailureDetector(detector_timeout)
        self._extra_se_handlers = list(se_handlers or [])

        self.hot_backup = hot_backup
        self.primary_jvm: Optional[JVM] = None
        self.backup_jvm: Optional[JVM] = None
        self.primary_metrics = ReplicationMetrics(role="primary")
        self.backup_metrics: Optional[ReplicationMetrics] = None
        self.shipper: Optional[LogShipper] = None
        self._fed_records = 0
        self._hot_result: Optional[RunResult] = None
        self.hot_precrash_instructions = 0

    # ==================================================================
    # Construction of the two replicas
    # ==================================================================
    def _make_se_manager(self) -> SideEffectManager:
        manager = SideEffectManager()
        for handler in self._extra_se_handlers:
            manager.add_handler(handler)
        return manager

    def _build_primary(self) -> JVM:
        settings = self.primary_settings
        session = self.env.attach(
            "primary",
            clock_offset_ms=settings.clock_offset_ms,
            entropy_seed=settings.entropy_seed,
        )
        config = replace(self.base_config, scheduler_seed=settings.scheduler_seed)
        jvm = JVM(self.registry, self.natives, session, config, name="primary")
        self.shipper = LogShipper(
            self.channel, self.primary_metrics, CrashInjector(self.crash_at)
        )
        se_manager = self._make_se_manager()
        jvm.native_policy = PrimaryNativePolicy(
            self.shipper, self.primary_metrics, se_manager
        )
        if self.strategy == "lock_sync":
            jvm.sync.admission = PrimaryLockSync(
                self.shipper, self.primary_metrics
            )
        elif self.strategy == "lock_intervals":
            jvm.sync.admission = PrimaryIntervalLockSync(
                self.shipper, self.primary_metrics
            )
        else:
            jvm.scheduler.controller = PrimarySchedController(
                settings.scheduler_seed,
                config.quantum_base,
                config.quantum_jitter,
                self.shipper,
                self.primary_metrics,
            )
        jvm.run_hooks = _HeartbeatHooks(self.detector)
        self.primary_jvm = jvm
        return jvm

    def _build_backup(self) -> JVM:
        settings = self.backup_settings
        session = self.env.attach(
            "backup",
            clock_offset_ms=settings.clock_offset_ms,
            entropy_seed=settings.entropy_seed,
        )
        config = replace(self.base_config, scheduler_seed=settings.scheduler_seed)
        jvm = JVM(self.registry, self.natives, session, config, name="backup")
        metrics = ReplicationMetrics(role="backup")
        self.backup_metrics = metrics

        parsed = parse_log(self.channel.backup_log())
        se_manager = self._make_se_manager()
        for record in parsed.side_effects:
            se_manager.receive(record)
        policy = BackupNativePolicy(
            parsed.results, parsed.intents, se_manager, metrics
        )
        policy.hold_when_drained = self.hot_backup
        jvm.native_policy = policy
        self._backup_se_manager = se_manager
        if self.strategy == "lock_sync":
            admission = BackupLockSync(
                parsed.id_maps, parsed.lock_acqs, metrics
            )
            admission.hold_when_drained = self.hot_backup
            jvm.sync.admission = admission
            # During replay, notify wakes every waiter; the admission
            # controller then enforces the logged re-acquisition order
            # (guarded-wait programs are immune to the extra wakeups).
            jvm.sync.notify_wakes_all = True
        elif self.strategy == "lock_intervals":
            admission = BackupIntervalLockSync(
                parsed.intervals, metrics
            )
            admission.hold_when_drained = self.hot_backup
            jvm.sync.admission = admission
            jvm.sync.notify_wakes_all = True
        else:
            controller = BackupSchedController(
                parsed.schedules,
                ScheduleController(
                    settings.scheduler_seed,
                    config.quantum_base,
                    config.quantum_jitter,
                ),
                metrics,
            )
            controller.jvm = jvm
            controller.hold_when_drained = self.hot_backup
            jvm.scheduler.controller = controller
        self.backup_jvm = jvm
        return jvm

    # ==================================================================
    # Execution
    # ==================================================================
    def run(self, main_class: str, args: Optional[List[str]] = None
            ) -> FailoverResult:
        """Run with fault tolerance.  If the primary fail-stops (per
        ``crash_at``), the backup detects it, replays, and finishes.

        With ``hot_backup=True`` the backup JVM runs *during* normal
        operation: every flushed log message is applied immediately
        (the paper's 'keeping the backup updated would require only
        minor modifications'), so recovery at failover is nearly
        instantaneous — only the undelivered tail remains."""
        if getattr(self, "_ran", False):
            raise ReplicationError(
                "ReplicatedJVM.run() may only be called once; construct a "
                "fresh machine for another run"
            )
        self._ran = True
        primary = self._build_primary()
        if self.hot_backup:
            backup = self._build_backup()
            backup.bootstrap(main_class, args)
            outer_on_flush = self.channel.on_flush

            def pumping_flush(n_records: int, n_bytes: int) -> None:
                outer_on_flush(n_records, n_bytes)
                self._pump_hot_backup()

            self.channel.on_flush = pumping_flush
        try:
            result = primary.run(main_class, args)
            self.channel.flush()
            self._finish_metrics(primary, self.primary_metrics)
            backup_result = None
            if self.hot_backup:
                backup_result = self._finish_hot_backup()
            return FailoverResult(
                outcome="primary_completed",
                primary_result=result,
                backup_result=None,
                primary_metrics=self.primary_metrics,
                backup_metrics=self.backup_metrics,
            )
        except PrimaryCrashed:
            self._finish_metrics(primary, self.primary_metrics)
            crash_event = self.shipper.injector.events
            # Fail-stop: volatile state and buffered records are gone.
            primary.session.destroy()
            self.channel.crash_primary()
            detection = self.detector.await_detection()

        if self.hot_backup:
            backup = self.backup_jvm
            #: How far the hot backup had already replayed when the
            #: primary died — the recovery-time advantage over a cold
            #: backup, measurable by tests and benchmarks.
            self.hot_precrash_instructions = backup.instructions
            self._pump_hot_backup()          # any tail delivered pre-crash
            backup_result = self._finish_hot_backup()
        else:
            backup = self._build_backup()
            backup_result = backup.run(main_class, args)
            self._finish_metrics(backup, self.backup_metrics)
        return FailoverResult(
            outcome="failover_completed",
            primary_result=None,
            backup_result=backup_result,
            primary_metrics=self.primary_metrics,
            backup_metrics=self.backup_metrics,
            crash_event=crash_event,
            detection_intervals=detection,
        )

    # ==================================================================
    # Hot backup plumbing
    # ==================================================================
    def _pump_hot_backup(self) -> None:
        """Feed newly delivered records to the live backup and let it
        replay until it needs log that has not arrived yet."""
        if self._hot_result is not None:
            return
        delivered = self.channel.delivered
        new_raw = delivered[self._fed_records:]
        self._fed_records = len(delivered)
        if new_raw:
            parsed = parse_log(new_raw)
            for record in parsed.side_effects:
                self._backup_se_manager.receive(record)
            self.backup_jvm.native_policy.extend(
                parsed.results, parsed.intents
            )
            if self.strategy in ("lock_sync",):
                self.backup_jvm.sync.admission.extend(
                    parsed.id_maps, parsed.lock_acqs
                )
            elif self.strategy == "lock_intervals":
                self.backup_jvm.sync.admission.extend(parsed.intervals)
            else:
                self.backup_jvm.scheduler.controller.extend(parsed.schedules)
            self.backup_jvm.sync.reevaluate_parked()
        result = self.backup_jvm.run_to_completion(pause_on_starvation=True)
        if result is not None:
            self._hot_result = result

    def _finish_hot_backup(self) -> RunResult:
        """Release hold mode and drive the hot backup to completion."""
        self._pump_hot_backup()
        if self._hot_result is None:
            backup = self.backup_jvm
            backup.native_policy.hold_when_drained = False
            admission = backup.sync.admission
            if hasattr(admission, "hold_when_drained"):
                admission.hold_when_drained = False
            controller = backup.scheduler.controller
            if hasattr(controller, "hold_when_drained"):
                controller.hold_when_drained = False
                controller.starving = False
            backup.sync.reevaluate_parked()
            self._hot_result = backup.run_to_completion()
        self._finish_metrics(self.backup_jvm, self.backup_metrics)
        return self._hot_result

    def replay_backup(self, main_class: str,
                      args: Optional[List[str]] = None) -> RunResult:
        """Replay the *complete* log at the backup (no crash needed).

        This is the measurement behind Figure 2's backup bars: the
        primary ran to completion; the backup re-executes the program
        driven entirely by the log.  Call after :meth:`run` returned
        ``primary_completed``.
        """
        if self.channel.pending_records:
            self.channel.flush()
        backup = self._build_backup()
        result = backup.run(main_class, args)
        self._finish_metrics(backup, self.backup_metrics)
        return result

    # ==================================================================
    def _finish_metrics(self, jvm: JVM, metrics: ReplicationMetrics) -> None:
        metrics.instructions = jvm.instructions
        metrics.cf_changes = sum(t.br_cnt for t in jvm.scheduler.threads)
        metrics.heavy_ops = jvm.heavy_ops
        metrics.native_calls = jvm.native_calls
        metrics.locks_acquired = jvm.sync.total_acquisitions
        metrics.objects_locked = jvm.sync.monitors_created
        metrics.largest_l_asn = jvm.sync.largest_l_asn
        metrics.reschedules = jvm.scheduler.reschedules


def run_unreplicated(
    registry: ClassRegistry,
    main_class: str,
    args: Optional[List[str]] = None,
    *,
    env: Optional[Environment] = None,
    natives: Optional[NativeRegistry] = None,
    settings: ReplicaSettings = DEFAULT_PRIMARY,
    jvm_config: Optional[JVMConfig] = None,
) -> Tuple[RunResult, JVM]:
    """Run the original, unreplicated JVM (the performance baseline)."""
    env = env or Environment()
    session = env.attach(
        "baseline",
        clock_offset_ms=settings.clock_offset_ms,
        entropy_seed=settings.entropy_seed,
    )
    config = replace(
        jvm_config or JVMConfig(), scheduler_seed=settings.scheduler_seed
    )
    jvm = JVM(registry, natives or default_natives(), session, config,
              name="baseline")
    result = jvm.run(main_class, args)
    return result, jvm

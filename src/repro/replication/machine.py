"""The fault-tolerant JVM facade: primary-backup replication.

:class:`ReplicatedJVM` wires a program, an environment, a coordination
strategy, and a log transport into the paper's architecture:

* the **primary** executes the program with the strategy's hooks
  installed, buffering log records over the channel and performing
  output commit before every output command;
* the **backup is cold**: during normal operation it only accumulates
  the log (the transport's delivered list).  When the primary
  fail-stops (via :class:`~repro.replication.commit.CrashInjector`),
  the failure detector fires and a fresh JVM is built from the
  *identical initial state* (same class registry), which replays the
  log — reproducing lock acquisitions or the thread schedule, adopting
  native results, restoring volatile environment state through
  side-effect handlers, and resolving the one uncertain output — then
  continues live as the new sole machine.

Primary and backup deliberately differ in scheduler seed, clock offset,
and entropy seed: replication must succeed *despite* divergent
non-determinism, which is the paper's entire point.

Strategies resolve through the registry in
:mod:`repro.replication.strategy` (``register_strategy`` adds new ones
without editing this file); transports through
:mod:`repro.replication.transport` (in-memory by default, seeded fault
injection and real localhost TCP as alternatives).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.classfile.loader import ClassRegistry
from repro.env.channel import Channel
from repro.env.environment import Environment
from repro.env.port import INGEST_SIGNATURE, request_id
from repro.errors import AlreadyRanError, PrimaryCrashed, ReplicationError
from repro.replication.commit import CrashInjector, LogShipper
from repro.replication.config import (
    DEFAULT_BACKUP,
    DEFAULT_PRIMARY,
    ReplicaSettings,
    ReplicationConfig,
    config_from_kwargs,
)
from repro.replication.digest import (
    DigestEmitter,
    DigestRecord,
    DigestVerifier,
)
from repro.replication.failure import FailureDetector
from repro.replication.metrics import ReplicationMetrics
from repro.replication.ndnatives import BackupNativePolicy, PrimaryNativePolicy
from repro.replication.checkpoint import (
    Checkpoint,
    first_dispatch_vid,
    restore_checkpoint,
)
from repro.replication.records import (
    IdMap,
    LockAcqRecord,
    LockIntervalRecord,
    NativeResultRecord,
    OutputIntentRecord,
    ScheduleRecord,
    SideEffectRecord,
    decode_record,
)
from repro.replication.sehandlers import SideEffectHandler, SideEffectManager
from repro.replication.steady import SteadyCheckpointer, SteadyHooks
from repro.replication.strategy import (
    CoordinationStrategy,
    register_strategy,
    resolve_strategy,
    strategy_names,
)
from repro.replication.transport import Transport, make_transport
from repro.runtime.jvm import JVM, JVMConfig, RunHooks, RunResult
from repro.runtime.natives import NativeRegistry
from repro.runtime.stdlib import default_natives

#: The built-in strategy names (kept for back-compat; the live set is
#: :func:`repro.replication.strategy.strategy_names`).
STRATEGIES = ("lock_sync", "thread_sched", "lock_intervals")

_UNSET = object()


@dataclass
class FailoverResult:
    """Outcome of one replicated run."""

    outcome: str  # "primary_completed" | "failover_completed"
    primary_result: Optional[RunResult]
    backup_result: Optional[RunResult]
    primary_metrics: ReplicationMetrics
    backup_metrics: Optional[ReplicationMetrics]
    crash_event: Optional[int] = None
    detection_intervals: Optional[int] = None

    @property
    def final_result(self) -> RunResult:
        return self.backup_result if self.backup_result is not None \
            else self.primary_result

    @property
    def failed_over(self) -> bool:
        return self.outcome == "failover_completed"


class _HeartbeatHooks(RunHooks):
    """Ship transport-level heartbeats from the primary's run loop;
    the failure detector counts them as the backup sees them."""

    def __init__(self, channel: Channel) -> None:
        self._channel = channel

    def on_slice_end(self, jvm, thread, reason) -> None:
        self._channel.heartbeat()


class _PrimaryHooks(_HeartbeatHooks):
    """Heartbeats plus the end-of-run state digest."""

    def __init__(self, channel: Channel, emitter: DigestEmitter) -> None:
        super().__init__(channel)
        self._emitter = emitter

    def on_exit(self, jvm, result) -> None:
        self._emitter.emit_final()


class _VerifierHooks(RunHooks):
    """Backup-side digest comparison at slice boundaries and exit."""

    def __init__(self, verifier: DigestVerifier) -> None:
        self._verifier = verifier

    def on_slice_end(self, jvm, thread, reason) -> None:
        self._verifier.check_slice(jvm)

    def on_exit(self, jvm, result) -> None:
        self._verifier.check_final(jvm)


@dataclass
class ParsedLog:
    """The delivered log, partitioned by record type.  Plug-in record
    types land in :attr:`extra` (keyed by class name) unless a parse
    rule was registered via :func:`register_log_record`."""

    id_maps: List[IdMap] = field(default_factory=list)
    lock_acqs: List[LockAcqRecord] = field(default_factory=list)
    schedules: List[ScheduleRecord] = field(default_factory=list)
    results: Dict[Tuple[int, ...], List[NativeResultRecord]] = field(
        default_factory=dict
    )
    intents: Dict[Tuple[int, ...], List[OutputIntentRecord]] = field(
        default_factory=dict
    )
    intervals: List[LockIntervalRecord] = field(default_factory=list)
    side_effects: List[SideEffectRecord] = field(default_factory=list)
    digests: List[DigestRecord] = field(default_factory=list)
    extra: Dict[str, list] = field(default_factory=dict)
    total: int = 0


#: Back-compat alias (parse_log used to return a private class).
_ParsedLog = ParsedLog


_PARSE_RULES: Dict[Type, Callable[[ParsedLog, object], None]] = {
    IdMap: lambda p, r: p.id_maps.append(r),
    LockAcqRecord: lambda p, r: p.lock_acqs.append(r),
    ScheduleRecord: lambda p, r: p.schedules.append(r),
    NativeResultRecord:
        lambda p, r: p.results.setdefault(r.t_id, []).append(r),
    OutputIntentRecord:
        lambda p, r: p.intents.setdefault(r.t_id, []).append(r),
    LockIntervalRecord: lambda p, r: p.intervals.append(r),
    SideEffectRecord: lambda p, r: p.side_effects.append(r),
    DigestRecord: lambda p, r: p.digests.append(r),
}


def register_log_record(record_type: Type,
                        rule: Optional[Callable[[ParsedLog, object], None]]
                        = None) -> None:
    """Give a plug-in record type a home in :class:`ParsedLog`.

    ``rule(parsed, record)`` buckets one decoded record; with no rule
    the record goes to ``parsed.extra[record_type.__name__]`` (which is
    also where unregistered types land, so calling this is optional —
    it exists to let plug-ins claim a custom bucket or redirect a type).
    """
    if rule is None:
        name = record_type.__name__
        rule = lambda p, r: p.extra.setdefault(name, []).append(r)  # noqa: E731
    _PARSE_RULES[record_type] = rule


def parse_log(raw_records: List[bytes]) -> ParsedLog:
    """Decode and partition the delivered log.  Dispatch is by record
    type through a rule table, so strategy plug-ins can register new
    record types without touching this function."""
    parsed = ParsedLog()
    for data in raw_records:
        record = decode_record(data)
        parsed.total += 1
        rule = _PARSE_RULES.get(type(record))
        if rule is not None:
            rule(parsed, record)
        else:
            parsed.extra.setdefault(type(record).__name__, []).append(record)
    return parsed


class ReplicatedJVM:
    """One fault-tolerant JVM: a primary, a log channel, a cold backup."""

    def __init__(
        self,
        registry: ClassRegistry,
        natives: Optional[NativeRegistry] = None,
        env: Optional[Environment] = None,
        *,
        config: Optional[ReplicationConfig] = None,
        **kwargs,
    ) -> None:
        config = config_from_kwargs(config, kwargs, owner="ReplicatedJVM")
        self.config = config
        self._strategy = resolve_strategy(config.strategy)
        self.registry = registry
        self.natives = natives or default_natives()
        self.env = env or Environment()
        self.crash_at = config.crash_at
        self.primary_settings = config.primary
        self.backup_settings = config.backup
        self.base_config = config.jvm_config or JVMConfig()
        self._transport_spec = config.transport
        self.transport = make_transport(config.transport)
        self.channel = Channel(batch_records=config.batch_records,
                               transport=self.transport)
        self.detector = FailureDetector(
            config.detector_timeout,
            source=lambda: self.transport.stats.heartbeats_delivered,
        )
        self._extra_se_handlers = list(config.se_handlers)
        #: Emit a :class:`DigestRecord` every N replicated scheduling
        #: events (plus one final digest at primary exit).  ``None``
        #: disables digest checkpoints entirely.
        self.digest_interval = config.digest_interval
        self._digest_emitter: Optional[DigestEmitter] = None
        self._digest_verifier: Optional[DigestVerifier] = None

        #: Steady-state incremental checkpointing: emit a delta
        #: checkpoint every N slices and truncate the delivered log at
        #: each adoption (None = off; the log grows for the whole run).
        self.checkpoint_interval = config.checkpoint_interval
        if config.hot_backup and config.checkpoint_interval is not None:
            raise ReplicationError(
                "hot_backup replays the delivered log as it arrives; "
                "steady-state checkpoint truncation would drop records "
                "out from under it — use one or the other"
            )
        self._steady: Optional[SteadyCheckpointer] = None
        self._primary_se_manager: Optional[SideEffectManager] = None
        self._backup_from_basis = False
        self._verify_sessions = 0
        #: ``len(port.consumed)`` at the last checkpoint adoption: live
        #: takes already baked into the basis snapshot (serving mode).
        self._port_basis = 0

        self.hot_backup = config.hot_backup
        self.primary_jvm: Optional[JVM] = None
        self.backup_jvm: Optional[JVM] = None
        self.primary_metrics = ReplicationMetrics(role="primary")
        self.backup_metrics: Optional[ReplicationMetrics] = None
        self.shipper: Optional[LogShipper] = None
        self._backup_driver = None
        self._ran = False
        self._fed_records = 0
        self._hot_result: Optional[RunResult] = None
        self.hot_precrash_instructions = 0
        # -- serving lifecycle state --------------------------------------
        self._serve_port: Optional[str] = None
        self._serve_main: Optional[str] = None
        self._serve_args: Optional[List[str]] = None
        self._serve_result: Optional[FailoverResult] = None
        self._active_jvm: Optional[JVM] = None
        self._serve_crash_event: Optional[int] = None
        self._serve_detection: Optional[int] = None

    @property
    def strategy(self) -> str:
        """Name of the resolved coordination strategy."""
        return self._strategy.name

    # ==================================================================
    # Lifecycle
    # ==================================================================
    def clone(self, *, env: Optional[Environment] = None, crash_at=_UNSET,
              hot_backup=_UNSET, transport=_UNSET, strategy=_UNSET,
              detector_timeout=_UNSET,
              digest_interval=_UNSET, checkpoint_interval=_UNSET,
              verify_checkpoints=_UNSET) -> "ReplicatedJVM":
        """A fresh, runnable machine with this one's configuration.

        A ReplicatedJVM is single-shot (:class:`AlreadyRanError`);
        crash-point sweeps and benchmark repetitions clone the template
        instead of hand re-constructing it.  The clone gets a *new*
        environment (pass ``env=`` to supply one), a fresh transport of
        the same configuration, and *fresh* side-effect handlers
        (``SideEffectHandler.fresh()``), so no run-accumulated handler
        or fault-counter state leaks between sweep iterations; keyword
        overrides adjust the copy.
        """
        if transport is _UNSET:
            spec = self._transport_spec
            if isinstance(spec, str) or callable(spec):
                transport = spec          # re-buildable by make_transport
            else:
                transport = self.transport.fresh()
        overrides = {
            "transport": transport,
            "se_handlers": tuple(h.fresh() for h in self._extra_se_handlers),
        }
        if strategy is not _UNSET:
            overrides["strategy"] = strategy
        if crash_at is not _UNSET:
            overrides["crash_at"] = crash_at
        if hot_backup is not _UNSET:
            overrides["hot_backup"] = hot_backup
        if detector_timeout is not _UNSET:
            overrides["detector_timeout"] = detector_timeout
        if digest_interval is not _UNSET:
            overrides["digest_interval"] = digest_interval
        if checkpoint_interval is not _UNSET:
            overrides["checkpoint_interval"] = checkpoint_interval
        if verify_checkpoints is not _UNSET:
            overrides["verify_checkpoints"] = verify_checkpoints
        return ReplicatedJVM(
            self.registry,
            natives=self.natives,
            env=env or Environment(),
            config=self.config.merged(**overrides),
        )

    def close(self) -> None:
        """Release transport resources (socket transports hold a
        listener and a receiver thread); the delivered log survives."""
        self.transport.close()

    # ==================================================================
    # Construction of the two replicas
    # ==================================================================
    def _make_se_manager(self) -> SideEffectManager:
        manager = SideEffectManager()
        for handler in self._extra_se_handlers:
            manager.add_handler(handler)
        return manager

    def _build_primary(self) -> JVM:
        settings = self.primary_settings
        session = self.env.attach(
            "primary",
            clock_offset_ms=settings.clock_offset_ms,
            entropy_seed=settings.entropy_seed,
        )
        config = replace(self.base_config, scheduler_seed=settings.scheduler_seed)
        jvm = JVM(self.registry, self.natives, session, config, name="primary")
        self.shipper = LogShipper(
            self.channel, self.primary_metrics, CrashInjector(self.crash_at)
        )
        se_manager = self._make_se_manager()
        self._primary_se_manager = se_manager
        jvm.native_policy = PrimaryNativePolicy(
            self.shipper, self.primary_metrics, se_manager
        )
        driver = self._strategy.make_primary(
            self.shipper, self.primary_metrics, settings, config
        )
        driver.install(jvm)
        if self.digest_interval is not None:
            emitter = DigestEmitter(
                self.shipper, self.primary_metrics, self.env,
                interval=self.digest_interval,
                lockstep=self._strategy.lockstep_digest,
            )
            emitter.jvm = jvm
            self.shipper.on_record = emitter.observe
            self._digest_emitter = emitter
            jvm.run_hooks = _PrimaryHooks(self.channel, emitter)
        else:
            jvm.run_hooks = _HeartbeatHooks(self.channel)
        if self.checkpoint_interval is not None:
            self._steady = SteadyCheckpointer(
                self.shipper, self.channel, self.primary_metrics,
                se_manager,
                interval=self.checkpoint_interval,
                env_snapshot=self.env.snapshot_stable,
                verify_restore=(self._verify_adopted
                                if self.config.verify_checkpoints else None),
                on_adopt=self._on_steady_adopt,
            )
            jvm.run_hooks = SteadyHooks(jvm.run_hooks, self._steady)
        self.primary_jvm = jvm
        return jvm

    def _verify_adopted(self, checkpoint: Checkpoint) -> None:
        """Restore the composed checkpoint into a scratch machine —
        :func:`restore_checkpoint` re-derives the state digest and
        refuses the snapshot on any mismatch, so a composition bug is
        caught at adoption, not at the next failover."""
        self._verify_sessions += 1
        session = self.env.attach(f"ckpt-verify-{self._verify_sessions}")
        try:
            restore_checkpoint(
                checkpoint, self.registry, self.natives, session,
                replace(self.base_config,
                        scheduler_seed=self.backup_settings.scheduler_seed),
                name="ckpt-verify", se_manager=self._make_se_manager(),
            )
        finally:
            session.destroy()

    def _on_steady_adopt(self, checkpoint: Checkpoint, delta) -> None:
        if self._serve_port is not None:
            # Requests consumed so far are baked into the basis; only
            # post-checkpoint recv records count at reconciliation.
            self._port_basis = len(
                self.env.port(self._serve_port).consumed
            )

    def _build_backup(self) -> JVM:
        settings = self.backup_settings
        session = self.env.attach(
            "backup",
            clock_offset_ms=settings.clock_offset_ms,
            entropy_seed=settings.entropy_seed,
        )
        config = replace(self.base_config, scheduler_seed=settings.scheduler_seed)
        metrics = ReplicationMetrics(role="backup")
        self.backup_metrics = metrics
        se_manager = self._make_se_manager()

        basis = self._steady.basis if self._steady is not None else None
        self._backup_from_basis = basis is not None
        if basis is not None:
            # Steady-state recovery: restore the last adopted checkpoint
            # (digest-verified) and replay only the retained tail.
            jvm = restore_checkpoint(
                basis, self.registry, self.natives, session, config,
                name="backup", se_manager=se_manager,
            )
            metrics.checkpoints_restored += 1
        else:
            jvm = JVM(self.registry, self.natives, session, config,
                      name="backup")

        parsed = parse_log(self.channel.backup_log())
        metrics.recovery_tail_records = parsed.total
        for record in parsed.side_effects:
            se_manager.receive(record)
        policy = BackupNativePolicy(
            parsed.results, parsed.intents, se_manager, metrics
        )
        policy.hold_when_drained = self.hot_backup
        if basis is not None:
            policy.seed_seqs(basis.state().native_seqs)
        jvm.native_policy = policy
        self._backup_se_manager = se_manager
        driver = self._strategy.make_backup(parsed, metrics, settings, config)
        driver.install(jvm)
        driver.set_hold(self.hot_backup)
        self._backup_driver = driver
        if basis is not None:
            # The snapshot was captured with the descheduled thread
            # still `current`; replay resumes by dispatching it first
            # (the tail's first ScheduleRecord deschedules it at the
            # captured progress point), then normalizes the scheduler
            # the same way the primary's requeue did.
            controller = getattr(driver, "controller", None)
            if controller is not None \
                    and hasattr(controller, "set_resume_vid"):
                controller.set_resume_vid(first_dispatch_vid(jvm))
            jvm.scheduler.release_current()
            jvm.sync.reevaluate_parked()
        if self.digest_interval is not None:
            source = driver.digest_epoch_source()
            if basis is not None and source is not None:
                # Retained DigestRecords carry absolute epochs; the
                # replay's consumed count restarts at the truncation
                # point, so offset it by the basis capture epoch.
                base_epoch = basis.sched_epoch
                tail_source = source
                source = lambda: base_epoch + tail_source()  # noqa: E731
            verifier = DigestVerifier(
                parsed.digests, self.env, epoch_source=source,
            )
            self._digest_verifier = verifier
            jvm.run_hooks = _VerifierHooks(verifier)
        self.backup_jvm = jvm
        return jvm

    # ==================================================================
    # Execution
    # ==================================================================
    def run(self, main_class: str, args: Optional[List[str]] = None
            ) -> FailoverResult:
        """Run with fault tolerance.  If the primary fail-stops (per
        ``crash_at``), the backup detects it, replays, and finishes.

        With ``hot_backup=True`` the backup JVM runs *during* normal
        operation: every flushed log message is applied immediately
        (the paper's 'keeping the backup updated would require only
        minor modifications'), so recovery at failover is nearly
        instantaneous — only the undelivered tail remains."""
        if self._ran:
            raise AlreadyRanError(
                "ReplicatedJVM.run() may only be called once; use "
                "ReplicatedJVM.clone() to build a fresh machine with "
                "the same configuration"
            )
        self._ran = True
        primary = self._build_primary()
        if self.hot_backup:
            backup = self._build_backup()
            backup.bootstrap(main_class, args)
            outer_on_flush = self.channel.on_flush

            def pumping_flush(n_records: int, n_bytes: int) -> None:
                outer_on_flush(n_records, n_bytes)
                self._pump_hot_backup()

            self.channel.on_flush = pumping_flush
        try:
            result = primary.run(main_class, args)
            self.channel.settle()
            self._finish_metrics(primary, self.primary_metrics)
            backup_result = None
            if self.hot_backup:
                backup_result = self._finish_hot_backup()
            return FailoverResult(
                outcome="primary_completed",
                primary_result=result,
                backup_result=None,
                primary_metrics=self.primary_metrics,
                backup_metrics=self.backup_metrics,
            )
        except PrimaryCrashed:
            self._finish_metrics(primary, self.primary_metrics)
            crash_event = self.shipper.injector.events
            # Fail-stop: volatile state and buffered records are gone.
            primary.session.destroy()
            self.channel.crash_primary()
            detection = self.detector.await_detection()

        if self.hot_backup:
            backup = self.backup_jvm
            #: How far the hot backup had already replayed when the
            #: primary died — the recovery-time advantage over a cold
            #: backup, measurable by tests and benchmarks.
            self.hot_precrash_instructions = backup.instructions
            self._pump_hot_backup()          # any tail delivered pre-crash
            backup_result = self._finish_hot_backup()
        else:
            backup = self._build_backup()
            if self._backup_from_basis:
                # The basis checkpoint already contains the bootstrapped
                # (mid-run) state; re-bootstrapping would corrupt it.
                backup_result = backup.run_to_completion()
            else:
                backup_result = backup.run(main_class, args)
            self._finish_metrics(backup, self.backup_metrics)
        return FailoverResult(
            outcome="failover_completed",
            primary_result=None,
            backup_result=backup_result,
            primary_metrics=self.primary_metrics,
            backup_metrics=self.backup_metrics,
            crash_event=crash_event,
            detection_intervals=detection,
        )

    # ==================================================================
    # Hot backup plumbing
    # ==================================================================
    def _pump_hot_backup(self) -> None:
        """Feed newly delivered records to the live backup and let it
        replay until it needs log that has not arrived yet."""
        if self._hot_result is not None:
            return
        delivered = self.channel.delivered
        new_raw = delivered[self._fed_records:]
        self._fed_records = len(delivered)
        if new_raw:
            parsed = parse_log(new_raw)
            for record in parsed.side_effects:
                self._backup_se_manager.receive(record)
            self.backup_jvm.native_policy.extend(
                parsed.results, parsed.intents
            )
            self._backup_driver.extend_from(parsed)
            if self._digest_verifier is not None and parsed.digests:
                self._digest_verifier.extend(parsed.digests)
            self.backup_jvm.sync.reevaluate_parked()
        result = self.backup_jvm.run_to_completion(pause_on_starvation=True)
        if result is not None:
            self._hot_result = result

    def _finish_hot_backup(self) -> RunResult:
        """Release hold mode and drive the hot backup to completion."""
        self._pump_hot_backup()
        if self._hot_result is None:
            backup = self.backup_jvm
            backup.native_policy.hold_when_drained = False
            self._backup_driver.set_hold(False)
            controller = backup.scheduler.controller
            if hasattr(controller, "hold_when_drained"):
                controller.starving = False
            backup.sync.reevaluate_parked()
            self._hot_result = backup.run_to_completion()
        self._finish_metrics(self.backup_jvm, self.backup_metrics)
        return self._hot_result

    def replay_backup(self, main_class: str,
                      args: Optional[List[str]] = None) -> RunResult:
        """Replay the *complete* log at the backup (no crash needed).

        This is the measurement behind Figure 2's backup bars: the
        primary ran to completion; the backup re-executes the program
        driven entirely by the log.  Call after :meth:`run` returned
        ``primary_completed``.
        """
        if self.channel.pending_records:
            self.channel.settle()
        backup = self._build_backup()
        if self._backup_from_basis:
            result = backup.run_to_completion()
        else:
            result = backup.run(main_class, args)
        self._finish_metrics(backup, self.backup_metrics)
        return result

    # ==================================================================
    # Serving lifecycle (resumable request/response operation)
    # ==================================================================
    def start_serving(self, main_class: str,
                      args: Optional[List[str]] = None, *,
                      port: str) -> None:
        """Boot the primary and drive it to its first request wait.

        Instead of one ``run()`` to completion, the machine alternates
        between :meth:`serve`/:meth:`pump` (drive until it parks on an
        empty request port — ``Server.recv`` at a safe point) and
        delivery of new requests via :meth:`submit`.  A primary crash
        during any pump fails over transparently: the backup replays
        the delivered log, resolves the uncertain tail, reconciles the
        request port (requests consumed by the dead primary whose recv
        record never arrived are requeued), and continues serving."""
        if self._ran:
            raise AlreadyRanError(
                "this ReplicatedJVM already ran; clone() a fresh machine"
            )
        if self.hot_backup:
            raise ReplicationError(
                "serving mode drives the backup only at failover; "
                "hot_backup is not supported here"
            )
        self._ran = True
        self._serve_port = port
        self._serve_main = main_class
        self._serve_args = list(args) if args else None
        primary = self._build_primary()
        primary.bootstrap(main_class, self._serve_args)
        self._active_jvm = primary
        self._pump()

    @property
    def serving(self) -> bool:
        """True while the program is parked waiting for requests."""
        return self._ran and self._serve_result is None \
            and self._serve_port is not None

    @property
    def serve_result(self) -> Optional[FailoverResult]:
        return self._serve_result

    def submit(self, request: str) -> None:
        """Queue a request without driving the machine."""
        if self._serve_port is None:
            raise ReplicationError(
                "not serving: call start_serving() first"
            )
        self.env.port(self._serve_port).push(request)

    def serve(self, request: str) -> Optional[str]:
        """Deliver one request and pump until the machine parks again;
        returns the committed response text (None if the program exited
        without answering — e.g. a shutdown command)."""
        self.submit(request)
        self._pump()
        return self.env.responses.get(request_id(request))

    def pump(self) -> bool:
        """Drive the active machine until it parks on an empty port or
        the program completes.  Returns True while still serving."""
        self._pump()
        return self._serve_result is None

    def stop_serving(self, stop_request: str) -> FailoverResult:
        """Deliver ``stop_request`` and run the program to completion."""
        self.submit(stop_request)
        self._pump()
        if self._serve_result is None:
            raise ReplicationError(
                "program still serving after stop request "
                f"{stop_request!r}"
            )
        return self._serve_result

    def _pump(self) -> None:
        if self._serve_result is not None:
            return
        while True:
            jvm = self._active_jvm
            try:
                result = jvm.run_to_completion(pause_on_starvation=True)
                if (result is None and self._steady is not None
                        and jvm is self.primary_jvm):
                    # Parked on the empty request port: a quiescent
                    # point — emit a checkpoint if the interval elapsed.
                    # A crash injected mid-emission lands in the
                    # failover path below, like any other.
                    self._steady.note_park(jvm)
            except PrimaryCrashed:
                self._failover_serving()
                if self._serve_result is not None:
                    return
                continue
            if result is None:
                return                     # parked, waiting for requests
            if jvm is self.primary_jvm:
                self.channel.settle()
                self._finish_metrics(jvm, self.primary_metrics)
                self._serve_result = FailoverResult(
                    outcome="primary_completed",
                    primary_result=result,
                    backup_result=None,
                    primary_metrics=self.primary_metrics,
                    backup_metrics=self.backup_metrics,
                )
            else:
                self._finish_metrics(jvm, self.backup_metrics)
                self._serve_result = FailoverResult(
                    outcome="failover_completed",
                    primary_result=None,
                    backup_result=result,
                    primary_metrics=self.primary_metrics,
                    backup_metrics=self.backup_metrics,
                    crash_event=self._serve_crash_event,
                    detection_intervals=self._serve_detection,
                )
            return

    def _failover_serving(self) -> None:
        """The serving-mode failover: replay, resolve the tail,
        reconcile the request port, promote the backup to live serving."""
        primary = self.primary_jvm
        self._finish_metrics(primary, self.primary_metrics)
        self._serve_crash_event = self.shipper.injector.events
        primary.session.destroy()
        self.channel.crash_primary()
        self._serve_detection = self.detector.await_detection()

        backup = self._build_backup()
        policy = backup.native_policy
        # Replay in hold mode: past-the-log execution must wait until
        # the port has been reconciled, or a live recv could consume a
        # request out of order with the requeued lost ones.
        policy.hold_when_drained = True
        self._backup_driver.set_hold(True)
        controller = getattr(self._backup_driver, "controller", None)
        if controller is not None and hasattr(controller, "tail_gate"):
            controller.tail_gate = policy.has_uncertain_tail
        if not self._backup_from_basis:
            backup.bootstrap(self._serve_main, self._serve_args)
        result = backup.run_to_completion(pause_on_starvation=True)
        if result is None and any(
            policy.has_uncertain_tail(t.vid) for t in backup.scheduler.threads
        ):
            # Admit exactly the uncertain output — the strategy keeps
            # holding everything else — and let test/confirm/re-execute
            # resolve it exactly-once.
            policy.tail_resolution = True
            controller = backup.scheduler.controller
            if hasattr(controller, "starving"):
                controller.starving = False
            backup.sync.reevaluate_parked()
            result = backup.run_to_completion(pause_on_starvation=True)

        self._reconcile_port()

        policy.hold_when_drained = False
        self._release_hold(backup)
        self._active_jvm = backup
        if result is not None:             # program finished during replay
            self._finish_metrics(backup, self.backup_metrics)
            self._serve_result = FailoverResult(
                outcome="failover_completed",
                primary_result=None,
                backup_result=result,
                primary_metrics=self.primary_metrics,
                backup_metrics=self.backup_metrics,
                crash_event=self._serve_crash_event,
                detection_intervals=self._serve_detection,
            )

    def _release_hold(self, backup: JVM) -> None:
        self._backup_driver.set_hold(False)
        controller = backup.scheduler.controller
        if hasattr(controller, "starving"):
            controller.starving = False
        backup.sync.reevaluate_parked()

    def _reconcile_port(self) -> None:
        """Exactly-once request consumption across the failover.

        ``port.consumed`` counts live takes at the dead primary; the
        surviving log holds a ``Server.recv`` result record for each
        take whose log batch was flushed before the crash.  Every reply
        forces an output commit first, so any *answered* request's recv
        record is guaranteed delivered — the mismatch can only be
        unanswered requests consumed in the crash window.  Those are
        lost in flight: un-consume them (truncate ``consumed``) and
        requeue them at the front, preserving arrival order."""
        port = self.env.port(self._serve_port)
        parsed = parse_log(self.channel.backup_log())
        survived = sum(
            1
            for records in parsed.results.values()
            for record in records
            if record.signature == INGEST_SIGNATURE
        )
        # Takes before the last adopted checkpoint were truncated out of
        # the log but are baked into the recovery basis — already
        # accounted for, not lost.
        accounted = self._port_basis + survived
        lost = port.consumed[accounted:]
        if lost:
            del port.consumed[accounted:]
            port.requeue(lost)
            if self.backup_metrics is not None:
                self.backup_metrics.requests_requeued += len(lost)

    # ==================================================================
    def _finish_metrics(self, jvm: JVM, metrics: ReplicationMetrics) -> None:
        metrics.instructions = jvm.instructions
        metrics.cf_changes = sum(t.br_cnt for t in jvm.scheduler.threads)
        metrics.engine = jvm.config.engine
        metrics.blocks_compiled = jvm.interpreter.blocks_compiled
        metrics.block_cache_hits = jvm.interpreter.block_cache_hits
        metrics.heavy_ops = jvm.heavy_ops
        metrics.native_calls = jvm.native_calls
        metrics.locks_acquired = jvm.sync.total_acquisitions
        metrics.objects_locked = jvm.sync.monitors_created
        metrics.largest_l_asn = jvm.sync.largest_l_asn
        metrics.reschedules = jvm.scheduler.reschedules
        if metrics.role == "primary":
            stats = self.transport.stats
            metrics.retransmits = stats.retransmits
            metrics.messages_dropped = stats.messages_dropped
            metrics.messages_duplicated = stats.messages_duplicated
            metrics.backpressure_stalls = stats.backpressure_stalls
            metrics.heartbeats_sent = stats.heartbeats_sent
            metrics.heartbeats_delivered = stats.heartbeats_delivered


def run_unreplicated(
    registry: ClassRegistry,
    main_class: str,
    args: Optional[List[str]] = None,
    *,
    env: Optional[Environment] = None,
    natives: Optional[NativeRegistry] = None,
    settings: ReplicaSettings = DEFAULT_PRIMARY,
    jvm_config: Optional[JVMConfig] = None,
) -> Tuple[RunResult, JVM]:
    """Run the original, unreplicated JVM (the performance baseline)."""
    env = env or Environment()
    session = env.attach(
        "baseline",
        clock_offset_ms=settings.clock_offset_ms,
        entropy_seed=settings.entropy_seed,
    )
    config = replace(
        jvm_config or JVMConfig(), scheduler_seed=settings.scheduler_seed
    )
    jvm = JVM(registry, natives or default_natives(), session, config,
              name="baseline")
    result = jvm.run(main_class, args)
    return result, jvm

"""Steady-state incremental checkpointing: bounded logs, bounded recovery.

Log-based recovery as implemented by :class:`ReplicatedJVM` and
:class:`ReplicaGroup` replays every record shipped since the current
recovery basis.  Without a mid-run checkpoint that basis is the start
of the run (pair machine) or the generation's arm-time snapshot
(replica group), so two quantities grow without bound while the primary
stays healthy: the retained log (memory on both sides) and worst-case
recovery replay (time to promote after a crash).  The paper notes the
fix in §3.3 — periodically checkpoint the primary and truncate the log
at the checkpoint boundary — and this module implements it
*incrementally*, so steady-state cost scales with what changed, not
with heap size:

1. the heap tracks mutations per object (``mut_era``, stamped by
   putfield/arrstore/arraycopy/monitor transitions and advanced by
   :meth:`~repro.runtime.heap.Heap.advance_era`), so a capture can
   serialize only objects dirtied since the last adopted checkpoint
   plus the set of freed oids;
2. every ``checkpoint_interval`` execution slices, at the next
   *replayable boundary* (a QUANTUM/YIELDED slice end of a runnable
   application thread, or a serving-mode park on the empty request
   port), the primary captures a :class:`DeltaCheckpoint` and ships
   its chunks through the ordinary log channel, then performs a
   checkpoint commit (flush + ack) exactly like an output commit;
3. the receive side reassembles the chunks *from the wire*, composes
   the delta onto its retained basis (:func:`compose_delta` — pure
   state surgery, no JVM), optionally verifies the composed snapshot
   by restoring it into a scratch machine and re-deriving the digest,
   and only then truncates the delivered log to empty;
4. the heap era advances, opening the next dirty window.

A crash anywhere inside an emission is safe: chunk logging and the
commit run through the ordinary :class:`CrashInjector` event counter,
torn delta chunks in a dead primary's log tail have no parse rule and
are ignored by recovery, and the basis only moves *after* the transfer
is acknowledged and composed.  Recovery from the retained basis then
replays only the post-checkpoint tail — work bounded by the emission
interval, not by run length.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReplicationError
from repro.replication.checkpoint import (
    DEFAULT_CHUNK_BYTES,
    Checkpoint,
    CheckpointAssembler,
    CheckpointChunkRecord,
    DeltaAssembler,
    DeltaCheckpoint,
    DeltaChunkRecord,
    compose_delta,
)
from repro.replication.commit import EpochFence
from repro.replication.records import decode_record
from repro.runtime.jvm import RunHooks
from repro.runtime.scheduler import SliceEnd
from repro.runtime.threads import ThreadState

Vid = Tuple[int, ...]


class SteadyHooks(RunHooks):
    """Run-hook wrapper installed on a steadily-checkpointing primary.
    The relay runs *after* the inner hooks' heartbeat, so an emission's
    commit round-trip never starves the failure detector."""

    def __init__(self, inner: RunHooks, steady: "SteadyCheckpointer"
                 ) -> None:
        self._inner = inner
        self._steady = steady

    def on_slice_end(self, jvm, thread, reason) -> None:
        self._inner.on_slice_end(jvm, thread, reason)
        self._steady.note_slice(jvm, thread, reason)

    def on_gc(self, jvm, freed_cells) -> None:
        self._inner.on_gc(jvm, freed_cells)

    def on_exit(self, jvm, result) -> None:
        self._inner.on_exit(jvm, result)


class SteadyCheckpointer:
    """Periodic delta-checkpoint emission plus synchronous adoption.

    Owned by the side that holds the primary role; the "backup half"
    (reassembly, composition, verification, truncation bookkeeping) is
    executed synchronously after the transfer ack, exactly as the
    replica group's arm-time transfer does, so the retained
    :attr:`basis` is always something a promoted backup can restore.

    ``verify_restore(checkpoint)`` — optional callback that restores
    the composed snapshot into a scratch machine (raising on digest
    mismatch); ``on_adopt(checkpoint, delta)`` — optional bookkeeping
    callback fired after adoption but *before* log truncation (the
    replica group re-arms its k recovery bases and re-biases the
    request-port accounting here).
    """

    def __init__(self, shipper, channel, metrics, se_manager, *,
                 interval: int,
                 generation: int = 0,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                 basis: Optional[Checkpoint] = None,
                 env_snapshot: Optional[Callable[[], Dict[str, str]]] = None,
                 verify_restore: Optional[Callable[[Checkpoint], None]] = None,
                 on_adopt: Optional[Callable] = None) -> None:
        if interval is None or interval < 1:
            raise ReplicationError(
                f"checkpoint_interval must be a positive slice count, "
                f"got {interval!r}"
            )
        self._shipper = shipper
        self._channel = channel
        self._metrics = metrics
        self._se_manager = se_manager
        self.interval = interval
        self.generation = generation
        self.chunk_bytes = chunk_bytes
        #: Last adopted full checkpoint (None until the first emission,
        #: which then ships a full snapshot instead of a delta).
        self.basis = basis
        #: Stream position: seq of the current basis (-1 = none yet).
        #: The replica group's arm-time full checkpoint is seq 0.
        self.seq = -1 if basis is None else 0
        self._env_snapshot = env_snapshot or (lambda: {})
        self._verify_restore = verify_restore
        self._on_adopt = on_adopt
        self._slices = 0
        #: Checkpoints successfully emitted and adopted.
        self.emissions = 0

    # ------------------------------------------------------------------
    # Run-hook relays
    # ------------------------------------------------------------------
    def note_slice(self, jvm, thread, reason: SliceEnd) -> None:
        """Count one execution slice; emit at a replayable boundary.

        Only QUANTUM/YIELDED ends of a still-runnable application
        thread qualify: the descheduled thread is then ``current`` and
        not yet requeued, so the *next* ScheduleRecord the primary logs
        deschedules it at exactly the captured progress point — a
        schedule-replaying backup resumes by dispatching that thread
        and consuming the record with zero re-executed instructions.
        """
        retained = (len(self._channel.delivered)
                    + self._channel.pending_records)
        if retained > self._metrics.retained_records_max:
            self._metrics.retained_records_max = retained
        self._slices += 1
        if self._slices < self.interval:
            return
        if reason not in (SliceEnd.QUANTUM, SliceEnd.YIELDED):
            return
        if thread.is_system or thread.state is not ThreadState.RUNNABLE:
            return
        self.emit(jvm)

    def note_park(self, jvm) -> None:
        """Serving mode: the pump parked on an empty request port — a
        quiescent point (no current thread), ideal for emission."""
        if self._slices >= self.interval:
            self.emit(jvm)

    # ------------------------------------------------------------------
    # One emission
    # ------------------------------------------------------------------
    def emit(self, jvm) -> None:
        """Capture, ship, adopt, truncate, advance the dirty window.

        May raise :class:`~repro.errors.PrimaryCrashed` from the crash
        injector while chunks are logged or at the commit — the basis
        is untouched in that case and recovery proceeds from it.
        """
        from repro.replication.checkpoint import (
            take_checkpoint,
            take_delta_checkpoint,
        )

        self._slices = 0
        metrics = self._metrics
        sched_epoch = metrics.schedule_records
        policy = jvm.native_policy
        native_seqs = (policy.native_seqs()
                       if hasattr(policy, "native_seqs") else None)

        if self.basis is None:
            full = take_checkpoint(
                jvm, self._se_manager, generation=self.generation,
                env_snapshot=self._env_snapshot(),
                native_seqs=native_seqs, sched_epoch=sched_epoch,
            )
            chunks = full.to_chunks(self.chunk_bytes)
            for chunk in chunks:
                self._shipper.log(chunk)
                metrics.checkpoint_records += 1
                metrics.checkpoint_bytes += len(chunk.data)
        else:
            delta = take_delta_checkpoint(
                jvm, self._se_manager, generation=self.generation,
                seq=self.seq + 1, base_seq=self.seq,
                sched_epoch=sched_epoch,
                env_snapshot=self._env_snapshot(),
                native_seqs=native_seqs,
            )
            chunks = delta.to_chunks(self.chunk_bytes)
            for chunk in chunks:
                self._shipper.log(chunk)
                metrics.delta_records += 1
                metrics.delta_bytes += len(chunk.data)
        self._shipper.checkpoint_commit()

        composed, delta = self._adopt_from_wire()
        if self._verify_restore is not None:
            self._verify_restore(composed)
        self.basis = composed
        self.seq += 1
        self.emissions += 1
        if delta is not None:
            metrics.deltas_shipped += 1
        if self._on_adopt is not None:
            self._on_adopt(composed, delta)
        self._shipper.truncate_at_checkpoint(len(self._channel.delivered))
        jvm.heap.advance_era()

    # ------------------------------------------------------------------
    def _adopt_from_wire(self) -> Tuple[Checkpoint,
                                        Optional[DeltaCheckpoint]]:
        """The receive half: reassemble the acknowledged transfer from
        the *delivered wire records* (not the in-memory object), so
        chunk framing and assembler idempotence are exercised on every
        emission, then compose onto the basis."""
        raw = self._channel.backup_log()
        if self._shipper.epoch is not None:
            raw = EpochFence(self._shipper.epoch,
                             self._metrics).filter_raw(raw)
        want_seq = self.seq + 1
        full_asm = CheckpointAssembler()
        delta_asm = DeltaAssembler()
        full: Optional[Checkpoint] = None
        delta: Optional[DeltaCheckpoint] = None
        for data in raw:
            record = decode_record(data)
            if isinstance(record, DeltaChunkRecord):
                got = delta_asm.feed(record)
                if got is not None and got.generation == self.generation \
                        and got.seq == want_seq:
                    delta = got
            elif isinstance(record, CheckpointChunkRecord):
                got = full_asm.feed(record)
                if got is not None and got.generation == self.generation:
                    full = got
        if self.basis is None:
            if full is None:
                raise ReplicationError(
                    f"steady checkpoint transfer (generation "
                    f"{self.generation}) was acknowledged but never "
                    f"assembled from the delivered log"
                )
            return full, None
        if delta is None:
            raise ReplicationError(
                f"delta checkpoint seq {want_seq} (generation "
                f"{self.generation}) was acknowledged but never "
                f"assembled from the delivered log"
            )
        if delta.base_seq != self.seq:
            raise ReplicationError(
                f"delta seq {delta.seq} applies to base {delta.base_seq}, "
                f"but the retained basis is seq {self.seq} — refusing "
                f"out-of-order composition"
            )
        composed = compose_delta(self.basis, delta)
        self._metrics.deltas_composed += 1
        return composed, delta

"""Replication metrics: the event counters behind Table 2 and the
overhead components behind Figures 2-4.

Counters are *facts* (how many records, messages, bytes, commits);
turning them into simulated time is the job of the cost model in
:mod:`repro.harness.costs`, so the same run can be re-costed without
re-executing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ReplicationMetrics:
    """Counters collected on one replica during one run."""

    role: str = "primary"

    # --- Table 2 rows -------------------------------------------------
    natives_intercepted: int = 0     # non-deterministic natives invoked
    output_commits: int = 0          # NM output commits
    lock_records: int = 0            # lock acquisition records created
    id_maps: int = 0
    schedule_records: int = 0
    native_result_records: int = 0
    se_records: int = 0
    digest_records: int = 0          # state-digest checkpoints emitted
    digest_bytes: int = 0            # wire bytes spent on digests
    #: distinct objects whose monitor was ever acquired
    objects_locked: int = 0
    locks_acquired: int = 0
    largest_l_asn: int = 0
    reschedules: int = 0

    # --- Wire-level ---------------------------------------------------
    messages_sent: int = 0
    records_sent: int = 0
    bytes_sent: int = 0
    ack_waits: int = 0
    #: Records serialized by the per-flush batch encoder (the hot-path
    #: log call buffers objects; wire work happens once per flush).
    records_batch_encoded: int = 0

    # --- Transport-level (zero on the in-memory transport) ------------
    retransmits: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    backpressure_stalls: int = 0
    #: measured round-trip time spent inside output-commit ack waits
    ack_wait_time: float = 0.0
    heartbeats_sent: int = 0
    heartbeats_delivered: int = 0

    # --- Execution ----------------------------------------------------
    instructions: int = 0
    cf_changes: int = 0              # br_cnt sum over threads
    heavy_ops: int = 0               # array/float bytecodes
    native_calls: int = 0            # all native invocations
    #: Execution engine the run used ("step", "slice", or "block"); the
    #: cost model prices per-bytecode progress tracking differently
    #: when the fast path only updates it at safe-point events.
    engine: str = "step"
    #: Superinstruction blocks compiled by the ``block`` engine.
    blocks_compiled: int = 0
    #: Executions served by an already-compiled block.
    block_cache_hits: int = 0

    # --- Checkpoint transfer (replica-group re-integration) -----------
    checkpoint_records: int = 0      # checkpoint chunk records shipped
    checkpoint_bytes: int = 0        # wire bytes spent on checkpoints
    checkpoints_shipped: int = 0     # complete checkpoints transferred
    checkpoints_restored: int = 0    # checkpoints adopted by a replica
    records_fenced: int = 0          # stale-epoch records discarded
    records_truncated: int = 0       # log records dropped at a boundary
    #: measured time spent shipping checkpoints (flush + ack)
    checkpoint_transfer_wait: float = 0.0

    # --- Steady-state incremental checkpoints --------------------------
    delta_records: int = 0           # delta chunk records shipped
    delta_bytes: int = 0             # wire bytes spent on delta chunks
    deltas_shipped: int = 0          # complete delta checkpoints acked
    deltas_composed: int = 0         # deltas composed onto a basis
    #: high-water mark of the retained (delivered + buffered) log —
    #: with checkpointing on, bounded by the emission interval.
    retained_records_max: int = 0
    #: log records in the retained tail at recovery time (backup role):
    #: the replay work a promoted backup actually performed.
    recovery_tail_records: int = 0

    # --- Backup-only --------------------------------------------------
    records_replayed: int = 0
    outputs_suppressed: int = 0
    outputs_tested: int = 0
    outputs_reexecuted: int = 0

    # --- Quorum voting (Byzantine mode) --------------------------------
    votes_cast: int = 0              # ballots tallied (all members)
    vote_bytes: int = 0              # wire bytes spent on vote records
    quorum_certs: int = 0            # certificates formed (f+1 matches)
    outputs_gated: int = 0           # outputs held for a quorum check
    members_suspected: int = 0       # recoverable heartbeat suspicions
    suspicions_cleared: int = 0      # suspicions absolved by resumed
                                     # beats or a matching vote
    members_quarantined: int = 0     # convictions (outvoted/equivocated)
    members_rearmed: int = 0         # convicted members rebuilt from a
                                     # verified checkpoint
    variant_divergences: int = 0     # MVEE guard alarms
    #: Graceful degradations: the whole group rebuilt onto the oracle
    #: engine at a safe-point boundary after a confirmed
    #: engine-correlated divergence.
    engine_demotions: int = 0

    # --- Serving (request/response lifecycle) -------------------------
    #: ``Server.recv`` takes executed live on this replica.
    requests_ingested: int = 0
    #: ``Server.reply`` outputs committed live on this replica.
    responses_committed: int = 0
    #: Requests found lost in flight at a failover and requeued.
    requests_requeued: int = 0

    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def records_logged(self) -> int:
        """Total log records created (the paper's 'Logged Messages' row
        counts messages; records feed the buffering ablation)."""
        return (
            self.lock_records + self.id_maps + self.schedule_records
            + self.native_result_records + self.se_records
            + self.output_commits
        )

    def as_dict(self) -> Dict[str, int]:
        base = {
            name: getattr(self, name)
            for name in (
                "natives_intercepted", "output_commits", "lock_records",
                "id_maps", "schedule_records", "native_result_records",
                "se_records", "digest_records", "digest_bytes",
                "objects_locked", "locks_acquired",
                "largest_l_asn", "reschedules", "messages_sent",
                "records_sent", "bytes_sent", "ack_waits",
                "records_batch_encoded", "retransmits",
                "messages_dropped", "messages_duplicated",
                "backpressure_stalls", "instructions",
                "cf_changes", "records_replayed", "outputs_suppressed",
                "outputs_tested", "outputs_reexecuted",
                "checkpoint_records", "checkpoint_bytes",
                "checkpoints_shipped", "checkpoints_restored",
                "records_fenced", "records_truncated",
                "delta_records", "delta_bytes", "deltas_shipped",
                "deltas_composed", "retained_records_max",
                "recovery_tail_records",
                "requests_ingested", "responses_committed",
                "requests_requeued",
                "blocks_compiled", "block_cache_hits",
                "votes_cast", "vote_bytes", "quorum_certs",
                "outputs_gated", "members_suspected",
                "suspicions_cleared", "members_quarantined",
                "members_rearmed", "variant_divergences",
                "engine_demotions",
            )
        }
        base["engine"] = self.engine
        base.update(self.extra)
        return base

"""Logging and output commit at the primary; crash injection.

The :class:`LogShipper` is the primary's half of the paper's log
transfer thread: records are serialized, buffered in the channel, and
flushed either when the batch fills or at an *output commit*, where the
primary synchronously waits for the backup's acknowledgment before
letting the output command touch the environment (pessimistic logging).

:class:`CrashInjector` implements fail-stop at a precise point in the
event sequence.  Every observable action (record logged, flush, ack,
output about to execute, output executed) bumps an event counter; when
the counter reaches the configured crash point the injector raises
:class:`~repro.errors.PrimaryCrashed`, which unwinds the primary's run
loop.  Tests sweep the crash point across a run's entire event range to
prove exactly-once output for *every* failure position.
"""

from __future__ import annotations

from typing import List, Optional

from repro.env.channel import Channel
from repro.errors import PrimaryCrashed
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import encode


class CrashInjector:
    """Deterministically fail-stop the primary at event N."""

    def __init__(self, crash_at: Optional[int] = None) -> None:
        self.crash_at = crash_at
        self.events = 0
        self.fired = False
        #: Ordered labels of all events, for test diagnostics.
        self.trace: List[str] = []

    def step(self, label: str) -> None:
        self.events += 1
        self.trace.append(label)
        if self.crash_at is not None and self.events >= self.crash_at:
            self.fired = True
            raise PrimaryCrashed(
                f"fail-stop injected at event {self.events} ({label})"
            )


class LogShipper:
    """Primary-side record logging and output commit."""

    def __init__(self, channel: Channel, metrics: ReplicationMetrics,
                 injector: Optional[CrashInjector] = None) -> None:
        self.channel = channel
        self._channel = channel
        self.metrics = metrics
        self.injector = injector or CrashInjector()
        #: Optional observer invoked after every record is logged
        #: (e.g. the digest emitter counts scheduling records here).
        self.on_record = None
        channel.on_flush = self._on_flush
        channel.on_ack_wait = self._on_ack

    # ------------------------------------------------------------------
    def log(self, record) -> None:
        """Buffer one record for shipment to the backup."""
        self.injector.step(f"log:{type(record).__name__}")
        self._channel.send_record(encode(record))
        if self.on_record is not None:
            self.on_record(record)

    def output_commit(self) -> None:
        """Flush everything logged so far and wait for the ack.  Only
        after this returns may the output command execute.  The ack is
        an explicit transport-level message, so the measured wait is a
        true round trip (zero on the in-memory transport)."""
        self.metrics.output_commits += 1
        self.injector.step("commit")
        rtt = self._channel.flush_and_wait_ack()
        if rtt:
            self.metrics.ack_wait_time += rtt

    # ------------------------------------------------------------------
    def _on_flush(self, n_records: int, n_bytes: int) -> None:
        self.metrics.messages_sent += 1
        self.metrics.records_sent += n_records
        self.metrics.bytes_sent += n_bytes

    def _on_ack(self) -> None:
        self.metrics.ack_waits += 1

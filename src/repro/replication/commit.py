"""Logging and output commit at the primary; crash injection.

The :class:`LogShipper` is the primary's half of the paper's log
transfer thread: records are serialized, buffered in the channel, and
flushed either when the batch fills or at an *output commit*, where the
primary synchronously waits for the backup's acknowledgment before
letting the output command touch the environment (pessimistic logging).

:class:`CrashInjector` implements fail-stop at a precise point in the
event sequence.  Every observable action (record logged, flush, ack,
output about to execute, output executed) bumps an event counter; when
the counter reaches the configured crash point the injector raises
:class:`~repro.errors.PrimaryCrashed`, which unwinds the primary's run
loop.  Tests sweep the crash point across a run's entire event range to
prove exactly-once output for *every* failure position.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Optional

from repro.env.channel import Channel
from repro.errors import PrimaryCrashed
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import EpochRecord, KIND_EPOCH, encode
from repro.replication.wire import Reader


class CrashInjector:
    """Deterministically fail-stop the primary at event N."""

    def __init__(self, crash_at: Optional[int] = None) -> None:
        self.crash_at = crash_at
        self.events = 0
        self.fired = False
        #: Ordered labels of all events, for test diagnostics.
        self.trace: List[str] = []

    def step(self, label: str) -> None:
        self.events += 1
        self.trace.append(label)
        if self.crash_at is not None and self.events >= self.crash_at:
            self.fired = True
            raise PrimaryCrashed(
                f"fail-stop injected at event {self.events} ({label})"
            )


class LogShipper:
    """Primary-side record logging and output commit."""

    def __init__(self, channel: Channel, metrics: ReplicationMetrics,
                 injector: Optional[CrashInjector] = None,
                 epoch: Optional[int] = None) -> None:
        self.channel = channel
        self._channel = channel
        self.metrics = metrics
        self.injector = injector or CrashInjector()
        #: Generation stamp: when set, every record ships inside an
        #: :class:`~repro.replication.records.EpochRecord` envelope so
        #: the receive side can fence out a deposed primary.  ``None``
        #: (the single-failover :class:`ReplicatedJVM`) ships records
        #: unwrapped.
        self.epoch = epoch
        #: Optional observer invoked after every record is logged
        #: (e.g. the digest emitter counts scheduling records here).
        self.on_record = None
        #: Optional quorum gate invoked at the end of every
        #: :meth:`output_commit`, after the flush+ack round trip but
        #: before the caller is allowed to execute the output command.
        #: A voting group installs its certificate check here: the gate
        #: raises (:class:`~repro.errors.PrimaryOutvoted`,
        #: :class:`~repro.errors.QuorumLostError`) to veto the release.
        self.commit_gate = None
        channel.on_flush = self._on_flush
        channel.on_ack_wait = self._on_ack
        channel.encoder = self._encode_batch

    # ------------------------------------------------------------------
    def log(self, record) -> None:
        """Buffer one record for shipment to the backup.

        The record object itself is buffered; serialization happens in
        one batch pass per flush (:meth:`_encode_batch`), so the hot
        log call does no wire work.  Records are immutable dataclasses,
        so deferring the encoding cannot change the bytes."""
        self.injector.step(f"log:{type(record).__name__}")
        self._channel.send_record(record)
        if self.on_record is not None:
            self.on_record(record)

    def _encode_batch(self, records) -> List[bytes]:
        """Serialize one flush's worth of buffered records.

        Byte-identical to the former per-record path: with a generation
        stamp, each record ships inside an ``EpochRecord`` envelope —
        ``uvarint(KIND_EPOCH) + uvarint(epoch) + uvarint(len(payload))
        + payload`` — whose constant prefix is computed once per batch
        instead of once per record."""
        self.metrics.records_batch_encoded += len(records)
        if self.epoch is None:
            return [encode(record) for record in records]
        from repro.replication.wire import Writer

        prefix = Writer().uvarint(KIND_EPOCH).uvarint(self.epoch).bytes()
        out = []
        for record in records:
            payload = encode(record)
            out.append(
                prefix + Writer().uvarint(len(payload)).bytes() + payload
            )
        return out

    @contextmanager
    def atomic(self):
        """Keep everything logged inside the block in one flush unit.

        A native's completion marker and its side-effect record describe
        a single event; if a flush boundary fell between them, a crash
        could deliver the marker (so the backup adopts the result and
        suppresses re-execution) while losing the side-effect state
        needed to carry on after it.  Deferring auto-flush for the pair
        makes them delivered-together or lost-together — the lost case
        degrades to the ordinary uncertain-tail recovery."""
        self._channel.begin_atomic()
        try:
            yield
        except BaseException:
            # Crashing mid-unit: the half-logged unit must die with us,
            # not be flushed out by the unwind.
            self._channel.end_atomic(flush=False)
            raise
        else:
            self._channel.end_atomic()

    def output_commit(self) -> None:
        """Flush everything logged so far and wait for the ack.  Only
        after this returns may the output command execute.  The ack is
        an explicit transport-level message, so the measured wait is a
        true round trip (zero on the in-memory transport)."""
        self.metrics.output_commits += 1
        self.injector.step("commit")
        rtt = self._channel.flush_and_wait_ack()
        if rtt:
            self.metrics.ack_wait_time += rtt
        if self.commit_gate is not None:
            self.commit_gate()

    def checkpoint_commit(self) -> None:
        """Flush a fully-logged checkpoint and wait for the ack.

        The ack is the *log-truncation point*: once the backup holds
        the complete checkpoint, every record that preceded it in the
        log is redundant (replay starts from the snapshot, not from
        the beginning of time) and may be dropped on both sides."""
        self.injector.step("checkpoint-commit")
        rtt = self._channel.flush_and_wait_ack()
        if rtt:
            self.metrics.checkpoint_transfer_wait += rtt
        self.metrics.checkpoints_shipped += 1

    def truncate_at_checkpoint(self, n_records: int) -> None:
        """Drop ``n_records`` delivered records at a checkpoint
        boundary (sender-side view of the shared log)."""
        self._channel.truncate_delivered(n_records)
        self.metrics.records_truncated += n_records

    # ------------------------------------------------------------------
    def _on_flush(self, n_records: int, n_bytes: int) -> None:
        self.metrics.messages_sent += 1
        self.metrics.records_sent += n_records
        self.metrics.bytes_sent += n_bytes

    def _on_ack(self) -> None:
        self.metrics.ack_waits += 1


class EpochFence:
    """Receive-side split-brain guard.

    Filters a raw delivered log down to the payloads stamped with the
    expected epoch.  Records from older epochs (a deposed primary that
    kept shipping before noticing it lost the role) are discarded and
    counted — never silently adopted.  Records from *newer* epochs
    would mean this fence itself is stale; they are also discarded,
    and the caller can inspect :attr:`newest_seen` to find out.
    Unwrapped records (no envelope) predate the epoch protocol and are
    rejected whenever fencing is active."""

    def __init__(self, expected_epoch: int,
                 metrics: Optional[ReplicationMetrics] = None) -> None:
        self.expected_epoch = expected_epoch
        self._metrics = metrics
        self.fenced = 0
        #: Largest epoch observed on any record, fenced or not.
        self.newest_seen = -1

    def _reject(self, count: int = 1) -> None:
        self.fenced += count
        if self._metrics is not None:
            self._metrics.records_fenced += count

    def filter_raw(self, raw_records: List[bytes]) -> List[bytes]:
        """Unwrap and keep only current-epoch payloads, in order."""
        kept: List[bytes] = []
        for data in raw_records:
            r = Reader(data)
            if r.uvarint() != KIND_EPOCH:
                self._reject()
                continue
            epoch = r.uvarint()
            self.newest_seen = max(self.newest_seen, epoch)
            if epoch != self.expected_epoch:
                self._reject()
                continue
            kept.append(r.raw(r.uvarint()))
        return kept

"""Compact binary wire format for log records.

The paper reports 36-byte lock acquisition messages; reproducing the
communication-volume economics requires an honest wire encoding rather
than pickled Python objects.  The format is self-describing and
deterministic:

* unsigned LEB128 varints for lengths and small integers;
* zigzag varints for signed integers;
* one tag byte per value for the tagged-value encoding used in native
  result records (None / int / float / str / int-list / float-list /
  str-list).

Round-tripping is exercised by property-based tests.
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.errors import ReplicationError


class Writer:
    """Append-only byte sink."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def uvarint(self, value: int) -> "Writer":
        if value < 0:
            raise ReplicationError(f"uvarint of negative {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._parts.append(bytes((byte | 0x80,)))
            else:
                self._parts.append(bytes((byte,)))
                return self

    def svarint(self, value: int) -> "Writer":
        return self.uvarint((value << 1) ^ (value >> 63) if value >= 0
                            else ((-value) << 1) - 1)

    def f64(self, value: float) -> "Writer":
        self._parts.append(struct.pack("<d", value))
        return self

    def text(self, value: str) -> "Writer":
        data = value.encode("utf-8")
        self.uvarint(len(data))
        self._parts.append(data)
        return self

    def raw(self, data: bytes) -> "Writer":
        self._parts.append(data)
        return self

    def vid(self, vid: Tuple[int, ...]) -> "Writer":
        self.uvarint(len(vid))
        for part in vid:
            self.uvarint(part)
        return self

    def value(self, v: Any) -> "Writer":
        """Tagged runtime value (native results may be any scalar)."""
        if v is None:
            self.raw(b"\x00")
        elif isinstance(v, bool):
            self.raw(b"\x01").svarint(1 if v else 0)
        elif isinstance(v, int):
            self.raw(b"\x01").svarint(v)
        elif isinstance(v, float):
            self.raw(b"\x02").f64(v)
        elif isinstance(v, str):
            self.raw(b"\x03").text(v)
        elif isinstance(v, list):
            self.raw(b"\x04").uvarint(len(v))
            for item in v:
                self.value(item)
        else:
            raise ReplicationError(
                f"value {v!r} cannot cross the wire — references never "
                f"leave a replica"
            )
        return self

    def bytes(self) -> bytes:
        return b"".join(self._parts)


class Reader:
    """Sequential byte source."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if self._pos + n > len(self._data):
            raise ReplicationError("truncated log record")
        chunk = self._data[self._pos:self._pos + n]
        self._pos += n
        return chunk

    def uvarint(self) -> int:
        shift = 0
        value = 0
        while True:
            byte = self._take(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise ReplicationError("varint too long")

    def svarint(self) -> int:
        raw = self.uvarint()
        return (raw >> 1) ^ -(raw & 1)

    def f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def raw(self, n: int) -> bytes:
        return self._take(n)

    def text(self) -> str:
        return self._take(self.uvarint()).decode("utf-8")

    def vid(self) -> Tuple[int, ...]:
        return tuple(self.uvarint() for _ in range(self.uvarint()))

    def value(self) -> Any:
        tag = self._take(1)[0]
        if tag == 0x00:
            return None
        if tag == 0x01:
            return self.svarint()
        if tag == 0x02:
            return self.f64()
        if tag == 0x03:
            return self.text()
        if tag == 0x04:
            return [self.value() for _ in range(self.uvarint())]
        raise ReplicationError(f"unknown value tag {tag:#x}")

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

"""Primary-backup replication of the mini-JVM (the paper's contribution)."""

from repro.replication.config import (
    ReplicationConfig, ReplicaSettings, DEFAULT_PRIMARY, DEFAULT_BACKUP,
)
from repro.replication.machine import (
    ReplicatedJVM, FailoverResult, run_unreplicated,
    STRATEGIES, ParsedLog, parse_log, register_log_record,
)
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import (
    IdMap, LockAcqRecord, LockIntervalRecord, ScheduleRecord,
    NativeResultRecord, OutputIntentRecord, SideEffectRecord,
    EpochRecord, KIND_EPOCH,
    encode, decode_record, register_record_kind, FIRST_CUSTOM_KIND,
)
from repro.replication.commit import LogShipper, CrashInjector, EpochFence
from repro.replication.checkpoint import (
    Checkpoint, CheckpointAssembler, CheckpointChunkRecord,
    take_checkpoint, restore_checkpoint, first_dispatch_vid,
    DEFAULT_CHUNK_BYTES,
)
from repro.replication.supervisor import (
    ReplicaGroup, GroupResult, GenerationReport,
    default_generation_settings,
)
from repro.replication.digest import (
    StateDigest, DigestRecord, DigestEmitter, DigestVerifier,
    compute_state_digest, KIND_DIGEST,
)
from repro.replication.failure import FailureDetector
from repro.replication.strategy import (
    CoordinationStrategy, PrimaryDriver, BackupDriver,
    AdmissionPrimaryDriver, AdmissionBackupDriver,
    SchedulerPrimaryDriver, SchedulerBackupDriver,
    LockSyncStrategy, ThreadSchedStrategy, LockIntervalsStrategy,
    register_strategy, resolve_strategy, strategy_names,
)
from repro.replication.transport import (
    Transport, TransportStats, InMemoryTransport, FaultyTransport,
    SocketTransport, FaultProfile, FAULT_PROFILES, make_transport,
)
from repro.replication.lock_sync import PrimaryLockSync, BackupLockSync
from repro.replication.lock_intervals import (
    PrimaryIntervalLockSync, BackupIntervalLockSync,
)
from repro.replication.thread_sched import (
    PrimarySchedController, BackupSchedController,
)
from repro.replication.ndnatives import PrimaryNativePolicy, BackupNativePolicy
from repro.replication.sehandlers import (
    SideEffectHandler, SideEffectManager, FileSEHandler, ConsoleSEHandler,
    ResponseSEHandler,
)

__all__ = [
    "ReplicatedJVM", "FailoverResult", "ReplicaSettings", "run_unreplicated",
    "ReplicationConfig",
    "DEFAULT_PRIMARY", "DEFAULT_BACKUP", "STRATEGIES",
    "ParsedLog", "parse_log", "register_log_record",
    "ReplicationMetrics",
    "IdMap", "LockAcqRecord", "ScheduleRecord", "NativeResultRecord",
    "OutputIntentRecord", "SideEffectRecord", "encode", "decode_record",
    "register_record_kind", "FIRST_CUSTOM_KIND",
    "EpochRecord", "KIND_EPOCH", "EpochFence",
    "Checkpoint", "CheckpointAssembler", "CheckpointChunkRecord",
    "take_checkpoint", "restore_checkpoint", "first_dispatch_vid",
    "DEFAULT_CHUNK_BYTES",
    "ReplicaGroup", "GroupResult", "GenerationReport",
    "default_generation_settings",
    "LogShipper", "CrashInjector", "FailureDetector",
    "StateDigest", "DigestRecord", "DigestEmitter", "DigestVerifier",
    "compute_state_digest", "KIND_DIGEST",
    "CoordinationStrategy", "PrimaryDriver", "BackupDriver",
    "AdmissionPrimaryDriver", "AdmissionBackupDriver",
    "SchedulerPrimaryDriver", "SchedulerBackupDriver",
    "LockSyncStrategy", "ThreadSchedStrategy", "LockIntervalsStrategy",
    "register_strategy", "resolve_strategy", "strategy_names",
    "Transport", "TransportStats", "InMemoryTransport", "FaultyTransport",
    "SocketTransport", "FaultProfile", "FAULT_PROFILES", "make_transport",
    "PrimaryLockSync", "BackupLockSync",
    "PrimaryIntervalLockSync", "BackupIntervalLockSync",
    "LockIntervalRecord",
    "PrimarySchedController", "BackupSchedController",
    "PrimaryNativePolicy", "BackupNativePolicy",
    "SideEffectHandler", "SideEffectManager", "FileSEHandler",
    "ConsoleSEHandler", "ResponseSEHandler",
]

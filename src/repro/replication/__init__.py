"""Primary-backup replication of the mini-JVM (the paper's contribution)."""

from repro.replication.machine import (
    ReplicatedJVM, FailoverResult, ReplicaSettings, run_unreplicated,
    DEFAULT_PRIMARY, DEFAULT_BACKUP, STRATEGIES, parse_log,
)
from repro.replication.metrics import ReplicationMetrics
from repro.replication.records import (
    IdMap, LockAcqRecord, LockIntervalRecord, ScheduleRecord,
    NativeResultRecord, OutputIntentRecord, SideEffectRecord,
    encode, decode_record,
)
from repro.replication.commit import LogShipper, CrashInjector
from repro.replication.failure import FailureDetector
from repro.replication.lock_sync import PrimaryLockSync, BackupLockSync
from repro.replication.lock_intervals import (
    PrimaryIntervalLockSync, BackupIntervalLockSync,
)
from repro.replication.thread_sched import (
    PrimarySchedController, BackupSchedController,
)
from repro.replication.ndnatives import PrimaryNativePolicy, BackupNativePolicy
from repro.replication.sehandlers import (
    SideEffectHandler, SideEffectManager, FileSEHandler, ConsoleSEHandler,
)

__all__ = [
    "ReplicatedJVM", "FailoverResult", "ReplicaSettings", "run_unreplicated",
    "DEFAULT_PRIMARY", "DEFAULT_BACKUP", "STRATEGIES", "parse_log",
    "ReplicationMetrics",
    "IdMap", "LockAcqRecord", "ScheduleRecord", "NativeResultRecord",
    "OutputIntentRecord", "SideEffectRecord", "encode", "decode_record",
    "LogShipper", "CrashInjector", "FailureDetector",
    "PrimaryLockSync", "BackupLockSync",
    "PrimaryIntervalLockSync", "BackupIntervalLockSync",
    "LockIntervalRecord",
    "PrimarySchedController", "BackupSchedController",
    "PrimaryNativePolicy", "BackupNativePolicy",
    "SideEffectHandler", "SideEffectManager", "FileSEHandler",
    "ConsoleSEHandler",
]

"""Pluggable primary→backup transports for the log channel.

The paper runs its two replicas on separate machines over 100 Mbps
Ethernet; the log channel's behavior — ack round trips, message loss,
reordering — is where the output-commit economics of Figures 3/4 come
from.  This module isolates *how messages move* behind a small
interface so the rest of the replication layer (Channel, LogShipper,
FailureDetector, ReplicatedJVM) is transport-generic:

* :class:`InMemoryTransport` — instant, loss-free delivery.  The
  default; byte-for-byte equivalent to the original in-process list.
* :class:`FaultyTransport` — a deterministic, seeded network simulator
  with latency, jitter, drops, duplication and reordering, plus the
  sender-side machinery a real link needs: per-message sequence
  numbers, cumulative acks, retransmission with timeout and
  exponential backoff, and a bounded send window that exerts
  backpressure on the primary.
* :class:`SocketTransport` — a real TCP connection over localhost with
  the backup's log receiver on its own thread, framed with the same
  varint encoding as the log records (:mod:`repro.replication.wire`).

Delivery semantics under fail-stop, per transport:

* in-memory: every flushed record is delivered; buffered records die
  with the primary (the original model).
* faulty: the delivered log is always a *contiguous prefix* of the
  flushed message sequence.  A message arrives only when every earlier
  message has arrived (the receiver holds out-of-order arrivals);
  messages dropped on the wire and never retransmitted before the
  crash are lost together with everything after them.  An ack for
  message *n* therefore proves messages 1..n are in the backup's log —
  exactly the property output commit needs.
* socket: TCP gives loss-free ordered delivery; bytes still in flight
  when the sender's socket closes are delivered before EOF, so flushed
  records are delivered, as in the in-memory model.

Multiplexed operation
---------------------

The original interface was *blocking*: one connection per replica
group, with :meth:`Transport.wait_ack` spinning the transport's own
clock (or socket) until the ack arrived.  A fleet of replica groups
cannot be built on that — one group stalled in an output-commit wait
would freeze every other group's link.  The interface is therefore
poll-driven:

* :meth:`Transport.poll` advances the transport **without blocking**
  (delivers due arrivals, processes acks, runs retransmit timers) and
  reports whether anything progressed;
* :meth:`Transport.send_nowait` ships a batch if the send window has
  room, returning ``False`` instead of stalling under backpressure;
* :attr:`Transport.on_deliver` / :attr:`Transport.on_ack` are
  readiness callbacks fired when records land in the backup's log or
  the cumulative ack advances;
* :class:`TransportMux` is the one event loop servicing all group
  connections: every registered transport's blocking waits service the
  *other* members between their own poll steps, so a group waiting on
  its ack keeps the rest of the fleet's frames moving.

The blocking methods (``send``/``wait_ack``) remain, implemented on
top of the poll layer, so single-group users (:class:`ReplicatedJVM`,
the conformance sweeps) are unchanged.
"""

from __future__ import annotations

import heapq
import socket
import threading
import time
from dataclasses import dataclass, replace
from random import Random
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.replication.wire import Reader, Writer

_FRAME_DATA = 1
_FRAME_HEARTBEAT = 2
_FRAME_ACK = 3


@dataclass
class TransportStats:
    """Transport-level counters, beyond the Channel's wire counters."""

    retransmits: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_reordered: int = 0
    backpressure_stalls: int = 0
    #: Simulated (faulty) or wall-clock (socket) time spent inside
    #: output-commit ack waits — the true round-trip component.
    ack_wait_time: float = 0.0
    acks_delivered: int = 0
    heartbeats_sent: int = 0
    heartbeats_delivered: int = 0
    #: Connection resets injected (socket transport fault injection).
    connection_resets: int = 0
    #: Successful sender reconnects after a reset.
    reconnects: int = 0


class Transport:
    """Base transport: moves framed record batches primary→backup.

    Subclasses must deliver records into :attr:`delivered` (the
    backup's in-memory log) such that ``delivered`` is always a prefix
    of the concatenation of all sent batches.  Delivery must go
    through :meth:`_deliver` and ack advancement through
    :meth:`_ack_advanced` so the readiness callbacks fire.
    """

    def __init__(self) -> None:
        #: The backup's log: records delivered, in order.
        self.delivered: List[bytes] = []
        self.stats = TransportStats()
        self.closed = False
        #: Readiness callback ``(transport, n_new_records)`` fired when
        #: records land in :attr:`delivered`.  The socket transport
        #: fires it on its receiver thread.
        self.on_deliver: Optional[Callable[["Transport", int], None]] = None
        #: Readiness callback ``(transport, acked_through_seq)`` fired
        #: when the cumulative ack advances.
        self.on_ack: Optional[Callable[["Transport", int], None]] = None
        #: Set by :meth:`TransportMux.register`: while this transport
        #: blocks (ack wait, backpressure stall), it services the other
        #: members of its mux so one stalled group cannot freeze the
        #: rest of the fleet.
        self.mux: Optional["TransportMux"] = None

    # -- delivery/ack choke points (fire the readiness callbacks) ------
    def _deliver(self, records: List[bytes]) -> None:
        self.delivered.extend(records)
        if self.on_deliver is not None and records:
            self.on_deliver(self, len(records))

    def _ack_advanced(self, through: int) -> None:
        if self.on_ack is not None:
            self.on_ack(self, through)

    def _service_others(self) -> None:
        """One idle step for the rest of the fleet (no-op unmuxed)."""
        if self.mux is not None:
            self.mux.poll_others(self)

    # -- sender side ---------------------------------------------------
    def send(self, records: List[bytes]) -> None:
        """Ship one batch (a flushed buffer) toward the backup,
        blocking under backpressure until the window has room."""
        raise NotImplementedError

    def send_nowait(self, records: List[bytes]) -> bool:
        """Ship one batch if the send window has room; returns
        ``False`` (and ships nothing) when backpressured — the caller
        should :meth:`poll` and retry.  Default: transports without a
        bounded window never refuse."""
        self.send(records)
        return True

    def poll(self) -> bool:
        """Advance the transport without blocking: deliver due
        arrivals, process acks, run retransmit timers.  Returns True
        when anything progressed.  Default: nothing to advance."""
        return False

    def ack_pending(self) -> bool:
        """True while some sent batch is not yet acknowledged."""
        return False

    def wait_ack(self) -> float:
        """Block until every sent batch is acknowledged; returns the
        time spent waiting (the output-commit round trip)."""
        raise NotImplementedError

    def send_heartbeat(self) -> None:
        """I-am-alive datagram; never enters the record log."""
        raise NotImplementedError

    def crash_sender(self) -> None:
        """Fail-stop the sender.  In-flight data may still arrive;
        nothing is retransmitted afterwards."""
        self.closed = True

    # -- receiver side -------------------------------------------------
    def truncate(self, n_records: int) -> None:
        """Forget the first ``n_records`` delivered records (log
        truncation at a checkpoint boundary)."""
        del self.delivered[:n_records]

    def drain(self) -> None:
        """Let everything already in flight arrive (no retransmits)."""

    def settle(self) -> None:
        """Cooperative completion: the sender is alive and idle, so
        push retransmissions until everything sent is delivered."""
        self.drain()

    def close(self) -> None:
        """Release transport resources; the delivered log survives."""
        self.closed = True

    def fresh(self) -> "Transport":
        """A new, unused transport with the same configuration (used
        by :meth:`ReplicatedJVM.clone`)."""
        raise NotImplementedError


class InMemoryTransport(Transport):
    """Zero-latency loss-free delivery — the original channel model."""

    def __init__(self) -> None:
        super().__init__()
        self._sent_batches = 0

    def send(self, records: List[bytes]) -> None:
        if self.closed:
            return
        self._deliver(list(records))
        self._sent_batches += 1
        # Delivery is the ack on this transport: the batch is in the
        # backup's log the moment send returns.
        self._ack_advanced(self._sent_batches - 1)

    def wait_ack(self) -> float:
        self.stats.acks_delivered += 1
        return 0.0

    def send_heartbeat(self) -> None:
        if self.closed:
            return
        self.stats.heartbeats_sent += 1
        self.stats.heartbeats_delivered += 1

    def fresh(self) -> "InMemoryTransport":
        return InMemoryTransport()


# ======================================================================
# Deterministic fault injection
# ======================================================================
@dataclass(frozen=True)
class FaultProfile:
    """Knobs of the simulated link.  Rates are probabilities in [0, 1];
    times are abstract ticks (the cost model scales them)."""

    name: str = "clean"
    drop_rate: float = 0.0        # message vanishes on the wire
    dup_rate: float = 0.0         # message arrives twice
    reorder_rate: float = 0.0     # message takes a slow path (overtaken)
    latency: float = 4.0          # one-way delay
    jitter: float = 0.0           # uniform extra delay in [0, jitter]
    retry_timeout: float = 40.0   # retransmit deadline after send
    backoff: float = 2.0          # timeout multiplier per retry
    max_retries: int = 12         # attempts before the link is declared dead
    window: int = 16              # bounded send buffer (unacked messages)


#: Built-in fault profiles used by tests, examples and benchmarks.
FAULT_PROFILES: Dict[str, FaultProfile] = {
    "clean": FaultProfile(name="clean"),
    "slow": FaultProfile(name="slow", latency=40.0, jitter=10.0),
    "lossy": FaultProfile(name="lossy", drop_rate=0.25, jitter=2.0),
    "flaky": FaultProfile(name="flaky", drop_rate=0.15, dup_rate=0.2,
                          jitter=3.0),
    "jittery": FaultProfile(name="jittery", reorder_rate=0.4, jitter=12.0),
    "chaotic": FaultProfile(name="chaotic", drop_rate=0.2, dup_rate=0.15,
                            reorder_rate=0.3, latency=8.0, jitter=8.0,
                            window=4),
}


class FaultyTransport(Transport):
    """Seeded network simulator with retransmission and backpressure.

    Time is virtual: it advances when the sender waits (ack waits,
    backpressure stalls) and by a small fixed cost per send, and the
    event queue (arrivals, acks) is processed whenever the clock moves.
    Two transports built with the same profile and seed behave
    identically — fault schedules are reproducible by construction.
    """

    _ARRIVE, _ACK, _HEARTBEAT = 0, 1, 2

    def __init__(self, profile: Optional[FaultProfile] = None, *,
                 seed: int = 20030622, send_cost: float = 1.0,
                 **overrides) -> None:
        super().__init__()
        profile = profile or FaultProfile()
        if overrides:
            profile = replace(profile, **overrides)
        self.profile = profile
        self.seed = seed
        self.send_cost = send_cost
        self._rng = Random(seed)
        self.now = 0.0
        self._events: List[Tuple[float, int, int, int, List[bytes]]] = []
        self._tiebreak = 0
        # Sender state.
        self._next_seq = 0
        #: seq -> [records, n_attempts, timeout_at]
        self._unacked: Dict[int, list] = {}
        self._acked_through = -1
        # Receiver state.
        self._expected = 0
        self._held: Dict[int, List[bytes]] = {}

    # -- virtual network internals -------------------------------------
    def _schedule(self, delay: float, kind: int, seq: int,
                  records: List[bytes]) -> None:
        self._tiebreak += 1
        heapq.heappush(
            self._events, (self.now + delay, self._tiebreak, kind, seq, records)
        )

    def _one_way_delay(self) -> float:
        p = self.profile
        delay = p.latency + self._rng.uniform(0.0, p.jitter)
        if p.reorder_rate and self._rng.random() < p.reorder_rate:
            # The slow path: enough extra delay that a later message
            # can overtake this one.
            delay += p.latency + p.jitter + self._rng.uniform(0.0, 4 * p.jitter)
        return delay

    def _transmit(self, seq: int) -> None:
        """Put one (re)transmission of message ``seq`` on the wire."""
        pending = self._unacked[seq]
        pending[1] += 1
        if pending[1] > 1:
            self.stats.retransmits += 1
        timeout = self.profile.retry_timeout * (
            self.profile.backoff ** (pending[1] - 1)
        )
        pending[2] = self.now + timeout
        if self._rng.random() < self.profile.drop_rate:
            self.stats.messages_dropped += 1
        else:
            self._schedule(self._one_way_delay(), self._ARRIVE, seq, pending[0])
        if self.profile.dup_rate and self._rng.random() < self.profile.dup_rate:
            self.stats.messages_duplicated += 1
            self._schedule(self._one_way_delay(), self._ARRIVE, seq, pending[0])

    def _receive(self, seq: int, records: List[bytes]) -> None:
        if seq < self._expected:
            # Duplicate of something already in the log: re-ack.
            self._send_ack()
            return
        if seq > self._expected:
            if seq not in self._held:
                self.stats.messages_reordered += 1
                self._held[seq] = records
            return
        batch = list(records)
        self._expected += 1
        while self._expected in self._held:
            batch.extend(self._held.pop(self._expected))
            self._expected += 1
        self._deliver(batch)
        self._send_ack()

    def _send_ack(self) -> None:
        """Cumulative ack for everything contiguously delivered."""
        if self._rng.random() < self.profile.drop_rate:
            self.stats.messages_dropped += 1
            return
        self._schedule(self._one_way_delay(), self._ACK,
                       self._expected - 1, [])

    def _handle(self, kind: int, seq: int, records: List[bytes]) -> None:
        if kind == self._ARRIVE:
            self._receive(seq, records)
        elif kind == self._ACK:
            if seq > self._acked_through:
                self._acked_through = seq
                self.stats.acks_delivered += 1
                for acked in [s for s in self._unacked if s <= seq]:
                    del self._unacked[acked]
                self._ack_advanced(seq)
        else:
            self.stats.heartbeats_delivered += 1

    def _process_due(self, limit: Optional[int] = None) -> int:
        """Handle events due at the current clock; at most ``limit`` of
        them when given (the poll path's fairness bound — blocking
        paths drain unbounded as before).  Returns the count handled."""
        handled = 0
        while self._events and self._events[0][0] <= self.now:
            if limit is not None and handled >= limit:
                break
            _, _, kind, seq, records = heapq.heappop(self._events)
            self._handle(kind, seq, records)
            handled += 1
        return handled

    def _advance_one_step(self, allow_retransmit: bool,
                          drain_limit: Optional[int] = None) -> bool:
        """Move the clock to the next arrival or retransmit deadline.
        Returns False when nothing can make progress."""
        if drain_limit is not None and self._process_due(drain_limit):
            # A backlog left by a previous bounded drain: hand out the
            # next slice before moving the clock again.
            return True
        next_event = self._events[0][0] if self._events else None
        next_timeout = None
        if allow_retransmit and self._unacked:
            next_timeout = min(p[2] for p in self._unacked.values())
        if next_event is None and next_timeout is None:
            return False
        if next_timeout is None or (next_event is not None
                                    and next_event <= next_timeout):
            self.now = max(self.now, next_event)
            self._process_due(drain_limit)
            return True
        self.now = max(self.now, next_timeout)
        for seq, pending in sorted(self._unacked.items()):
            if pending[2] <= self.now:
                if pending[1] > self.profile.max_retries:
                    raise TransportError(
                        f"message {seq} unacknowledged after "
                        f"{self.profile.max_retries} retries — link dead"
                    )
                self._transmit(seq)
        self._process_due(drain_limit)
        return True

    def _admit(self, records: List[bytes]) -> None:
        """Accept one batch into the send window and transmit it."""
        seq = self._next_seq
        self._next_seq += 1
        self._unacked[seq] = [list(records), 0, 0.0]
        self._transmit(seq)
        self.now += self.send_cost
        self._process_due()

    # -- Transport interface -------------------------------------------
    def send(self, records: List[bytes]) -> None:
        if self.closed:
            return
        while len(self._unacked) >= self.profile.window:
            # Bounded send buffer: the primary stalls until an ack
            # frees a slot (backpressure).
            self.stats.backpressure_stalls += 1
            self._service_others()
            if not self._advance_one_step(allow_retransmit=True):
                raise TransportError(
                    "send window full and the link is silent"
                )
        self._admit(records)

    def send_nowait(self, records: List[bytes]) -> bool:
        if self.closed:
            return True
        if len(self._unacked) >= self.profile.window:
            self.stats.backpressure_stalls += 1
            return False
        self._admit(records)
        return True

    #: Max events one :meth:`poll` call may handle.  A mux iterates
    #: members calling poll once each; without the bound, a member
    #: sitting on a large due backlog (e.g. a post-heal thundering
    #: herd) would monopolize the whole mux pass and starve the other
    #: groups' readiness callbacks.
    poll_drain_limit: int = 8

    def poll(self) -> bool:
        if self.closed:
            return False
        if not self._events and not self._unacked:
            return False
        return self._advance_one_step(allow_retransmit=True,
                                      drain_limit=self.poll_drain_limit)

    def ack_pending(self) -> bool:
        return self._acked_through < self._next_seq - 1

    def wait_ack(self) -> float:
        if self.closed:
            return 0.0
        target = self._next_seq - 1
        started = self.now
        while self._acked_through < target:
            self._service_others()
            if not self._advance_one_step(allow_retransmit=True):
                raise TransportError("awaiting ack on a silent link")
        waited = self.now - started
        self.stats.ack_wait_time += waited
        return waited

    def send_heartbeat(self) -> None:
        if self.closed:
            return
        self.stats.heartbeats_sent += 1
        if self._rng.random() < self.profile.drop_rate:
            return
        self._schedule(self._one_way_delay(), self._HEARTBEAT, 0, [])
        self._process_due()

    def crash_sender(self) -> None:
        super().crash_sender()
        self._unacked.clear()
        self.drain()

    def drain(self) -> None:
        """Everything already on the wire arrives; no retransmissions,
        so messages dropped before the crash stay lost (and block any
        later messages — the contiguous-prefix rule)."""
        while self._events:
            time, _, kind, seq, records = heapq.heappop(self._events)
            self.now = max(self.now, time)
            self._handle(kind, seq, records)

    def settle(self) -> None:
        if self.closed:
            self.drain()
            return
        target = self._next_seq - 1
        while self._acked_through < target:
            if not self._advance_one_step(allow_retransmit=True):
                raise TransportError("settle on a silent link")
        self.drain()

    def fresh(self) -> "FaultyTransport":
        return FaultyTransport(self.profile, seed=self.seed,
                               send_cost=self.send_cost)


# ======================================================================
# Seeded chaos: partitions, flaps, asymmetric links
# ======================================================================
@dataclass(frozen=True)
class LinkOutage:
    """One scheduled cut of the whole link, in virtual-time ticks.

    ``direction`` selects which half of the link is severed:
    ``"both"`` is a symmetric partition, ``"fwd"`` cuts data and
    heartbeats (primary→backup) while acks still flow, ``"rev"`` is the
    *asymmetric* case the paper's fail-stop model cannot express — data
    keeps arriving but every ack vanishes, so the sender's output
    commit stalls across the window and resumes at the heal.
    """

    start: float
    end: float
    direction: str = "both"        # "both" | "fwd" | "rev"

    def __post_init__(self) -> None:
        if self.direction not in ("both", "fwd", "rev"):
            raise TransportError(
                f"outage direction must be 'both', 'fwd' or 'rev', "
                f"got {self.direction!r}"
            )
        if self.end <= self.start:
            raise TransportError(
                f"outage window must be non-empty, got "
                f"[{self.start}, {self.end})"
            )

    def cuts(self, direction: str, at: float) -> bool:
        return (self.start <= at < self.end
                and self.direction in ("both", direction))


def link_flaps(start: float, count: int, down: float, up: float,
               direction: str = "both") -> Tuple[LinkOutage, ...]:
    """A flapping link: ``count`` outages of length ``down`` separated
    by ``up`` ticks of healthy link, beginning at ``start``."""
    if count < 1 or down <= 0 or up < 0:
        raise TransportError(
            f"flap schedule needs count>=1, down>0, up>=0; got "
            f"count={count} down={down} up={up}"
        )
    return tuple(
        LinkOutage(start + i * (down + up), start + i * (down + up) + down,
                   direction)
        for i in range(count)
    )


@dataclass(frozen=True)
class MemberPartition:
    """One voting-group member cut off from the delivered log.

    The transport cannot see group membership, so the window is
    *published* (:meth:`ChaosTransport.blocked_members`) and enforced
    by the consumer: a :class:`~repro.replication.voting.VotingGroup`
    stops feeding a blocked member, its feed offset freezes, suspicion
    accrues from the silence, and the backlog floods in at the heal.
    ``unit="records"`` windows are measured in delivered-log length
    (deterministic under load, heals only as traffic flows);
    ``unit="time"`` windows are virtual-time ticks (heal even while an
    output-commit gate starves — see ``chaos_advance``).
    """

    member: int
    start: float
    end: float
    unit: str = "records"          # "records" | "time"

    def __post_init__(self) -> None:
        if self.unit not in ("records", "time"):
            raise TransportError(
                f"partition unit must be 'records' or 'time', "
                f"got {self.unit!r}"
            )
        if self.end <= self.start:
            raise TransportError(
                f"partition window must be non-empty, got "
                f"[{self.start}, {self.end})"
            )


@dataclass
class ChaosStats:
    """What the chaos schedule actually did to the link."""

    #: Transmissions eaten by an active outage (not lossy-link drops:
    #: they neither consume retry attempts nor back off the timer).
    partition_drops: int = 0
    #: Acks eaten by a rev/both outage.
    acks_cut: int = 0
    #: Heartbeats eaten by a fwd/both outage.
    heartbeats_cut: int = 0
    #: Clock jumps made by ``chaos_advance`` (gate-starvation waits).
    boundary_jumps: int = 0


class ChaosTransport(FaultyTransport):
    """A :class:`FaultyTransport` under a deterministic chaos schedule.

    On top of the seeded lossy-link model this injects *scheduled*
    faults: whole-link outages (symmetric or per-direction), link
    flaps (:func:`link_flaps`), per-direction latency/jitter
    overrides, and member-level partitions published to the voting
    layer.  Every schedule is plain data evaluated against the
    virtual clock, so two transports with the same schedule and seed
    misbehave identically.

    A transmission eaten by an outage is not a lossy-link drop: the
    retransmit timer re-arms at the *base* cadence and the attempt
    budget is untouched — a partitioned link is down, not dead, and
    must come back at the heal instead of tripping ``max_retries``
    mid-window.
    """

    def __init__(self, profile: Optional[FaultProfile] = None, *,
                 seed: int = 20030622, send_cost: float = 1.0,
                 outages: Tuple[LinkOutage, ...] = (),
                 member_partitions: Tuple[MemberPartition, ...] = (),
                 fwd_latency: Optional[float] = None,
                 rev_latency: Optional[float] = None,
                 fwd_jitter: Optional[float] = None,
                 rev_jitter: Optional[float] = None,
                 **overrides) -> None:
        super().__init__(profile, seed=seed, send_cost=send_cost,
                         **overrides)
        self.outages = tuple(outages)
        self.member_partitions = tuple(member_partitions)
        self.fwd_latency = fwd_latency
        self.rev_latency = rev_latency
        self.fwd_jitter = fwd_jitter
        self.rev_jitter = rev_jitter
        self.chaos = ChaosStats()

    # -- schedule evaluation -------------------------------------------
    def _cut(self, direction: str) -> bool:
        return any(o.cuts(direction, self.now) for o in self.outages)

    def _delay(self, direction: str) -> float:
        p = self.profile
        latency = self.fwd_latency if direction == "fwd" else self.rev_latency
        jitter = self.fwd_jitter if direction == "fwd" else self.rev_jitter
        latency = p.latency if latency is None else latency
        jitter = p.jitter if jitter is None else jitter
        delay = latency + self._rng.uniform(0.0, jitter)
        if p.reorder_rate and self._rng.random() < p.reorder_rate:
            delay += latency + jitter + self._rng.uniform(0.0, 4 * jitter)
        return delay

    def blocked_members(self) -> frozenset:
        """Members partitioned from the delivered log *right now* (the
        voting group polls this before feeding its followers)."""
        records = float(len(self.delivered))
        blocked = set()
        for p in self.member_partitions:
            at = self.now if p.unit == "time" else records
            if p.start <= at < p.end:
                blocked.add(p.member)
        return frozenset(blocked)

    def chaos_advance(self) -> bool:
        """Jump the virtual clock to the next schedule boundary.

        An output-commit gate starving on a partitioned quorum has no
        wire traffic to advance time with — real time still passes for
        it, so the gate's wait loop calls this to reach the heal (or
        the next onset) instead of deadlocking.  Returns False when no
        time-based boundary lies ahead (the schedule is exhausted: the
        partition is permanent and the caller must give up)."""
        boundaries = [b for o in self.outages for b in (o.start, o.end)]
        boundaries += [
            b for p in self.member_partitions if p.unit == "time"
            for b in (p.start, p.end)
        ]
        ahead = [b for b in boundaries if b > self.now]
        if not ahead:
            return False
        self.now = min(ahead)
        self.chaos.boundary_jumps += 1
        self._process_due()
        return True

    # -- fault-injected wire primitives --------------------------------
    def _transmit(self, seq: int) -> None:
        pending = self._unacked[seq]
        if self._cut("fwd"):
            self.chaos.partition_drops += 1
            pending[2] = self.now + self.profile.retry_timeout
            return
        pending[1] += 1
        if pending[1] > 1:
            self.stats.retransmits += 1
        timeout = self.profile.retry_timeout * (
            self.profile.backoff ** (pending[1] - 1)
        )
        pending[2] = self.now + timeout
        if self._rng.random() < self.profile.drop_rate:
            self.stats.messages_dropped += 1
        else:
            self._schedule(self._delay("fwd"), self._ARRIVE, seq, pending[0])
        if self.profile.dup_rate and self._rng.random() < self.profile.dup_rate:
            self.stats.messages_duplicated += 1
            self._schedule(self._delay("fwd"), self._ARRIVE, seq, pending[0])

    def _send_ack(self) -> None:
        if self._cut("rev"):
            self.chaos.acks_cut += 1
            return
        if self._rng.random() < self.profile.drop_rate:
            self.stats.messages_dropped += 1
            return
        self._schedule(self._delay("rev"), self._ACK,
                       self._expected - 1, [])

    def send_heartbeat(self) -> None:
        if self.closed:
            return
        self.stats.heartbeats_sent += 1
        if self._cut("fwd"):
            self.chaos.heartbeats_cut += 1
            return
        if self._rng.random() < self.profile.drop_rate:
            return
        self._schedule(self._delay("fwd"), self._HEARTBEAT, 0, [])
        self._process_due()

    def fresh(self) -> "ChaosTransport":
        return ChaosTransport(
            self.profile, seed=self.seed, send_cost=self.send_cost,
            outages=self.outages,
            member_partitions=self.member_partitions,
            fwd_latency=self.fwd_latency, rev_latency=self.rev_latency,
            fwd_jitter=self.fwd_jitter, rev_jitter=self.rev_jitter,
        )


# ======================================================================
# Real sockets
# ======================================================================
def _read_uvarint(sock: socket.socket) -> Optional[int]:
    """Read one varint from a blocking socket; None on clean EOF."""
    shift = 0
    value = 0
    while True:
        byte = sock.recv(1)
        if not byte:
            return None if shift == 0 else value
        value |= (byte[0] & 0x7F) << shift
        if not byte[0] & 0x80:
            return value
        shift += 7
        if shift > 63:
            raise TransportError("varint too long on socket")


def _uvarint_bytes(value: int) -> bytes:
    return Writer().uvarint(value).bytes()


def _buf_uvarint(buf: bytes) -> Optional[Tuple[int, int]]:
    """Parse one varint from the head of ``buf``; returns
    ``(value, bytes_consumed)`` or ``None`` when incomplete."""
    shift = 0
    value = 0
    for i, byte in enumerate(buf):
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, i + 1
        shift += 7
        if shift > 63:
            raise TransportError("varint too long on socket")
    return None


class SocketTransport(Transport):
    """Real TCP over localhost; the backup's log receiver runs on its
    own thread and acks every data frame it appends.

    Frames reuse the varint wire format: both directions carry a
    sequence of ``uvarint(length) || payload`` where payload is built
    with :class:`~repro.replication.wire.Writer` —
    data frames ``(type=1, seq, count, count×(len, bytes))``,
    heartbeats ``(type=2)``, acks ``(type=3, cumulative_seq)``.

    Connection resets are survivable: the sender keeps every unacked
    data frame in an outbox and, after a reset, reconnects and
    retransmits the outbox in order; the receiver accepts successive
    connections, keeps its cumulative ``expected`` sequence across
    them, discards (and re-acks) duplicates, and never appends out of
    order — so the delivered log stays a contiguous prefix of the sent
    record sequence across any number of reconnects.  Seeded reset
    injection (``reset_every`` / ``reset_rate`` + ``reset_seed``)
    exercises exactly this path deterministically in tests.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 *, timeout: float = 10.0,
                 reset_every: Optional[int] = None,
                 reset_rate: float = 0.0,
                 reset_seed: int = 20030622) -> None:
        super().__init__()
        self.timeout = timeout
        self.reset_every = reset_every
        self.reset_rate = reset_rate
        self.reset_seed = reset_seed
        self._reset_rng = Random(reset_seed)
        self._frames_since_reset = 0
        self._cv = threading.Condition()
        self._next_seq = 0
        self._acked_through = -1
        self._records_sent = 0
        self._truncated = 0
        self._eof = False
        #: seq -> encoded DATA frame payload, pruned as acks arrive;
        #: retransmitted in order after a reconnect.
        self._outbox: Dict[int, bytes] = {}
        #: Sender-side buffer of ack bytes read off the socket; frames
        #: are parsed out of it as they complete, so ack reads can be
        #: non-blocking (the poll layer) without tearing frames.
        self._ack_buf = b""
        #: Receiver-side cumulative next-expected sequence; lives on
        #: the instance so it survives connection turnover.
        self._expected = 0
        self._ever_connected = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind((host, port))
        self._listener.listen(1)
        self.address = self._listener.getsockname()
        self._sender: Optional[socket.socket] = None
        self._receiver_sock: Optional[socket.socket] = None
        self._thread = threading.Thread(
            target=self._receiver_loop, name="backup-log-receiver",
            daemon=True,
        )
        self._thread.start()

    # -- receiver thread -----------------------------------------------
    def _receiver_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break               # listener closed: shut down
            self._receiver_sock = conn
            try:
                self._serve(conn)
            except OSError:
                pass                # connection reset: await the next one
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
        with self._cv:
            self._eof = True
            self._cv.notify_all()

    def _serve(self, conn: socket.socket) -> None:
        while True:
            payload = self._read_frame(conn)
            if payload is None:
                return
            r = Reader(payload)
            frame_type = r.uvarint()
            if frame_type == _FRAME_DATA:
                seq = r.uvarint()
                count = r.uvarint()
                records = [r.raw(r.uvarint()) for _ in range(count)]
                with self._cv:
                    if seq > self._expected:
                        # A gap can't arise from TCP ordering; only a
                        # confused sender.  Hold nothing, ack nothing —
                        # the retransmission protocol will fill it in.
                        continue
                    appended = 0
                    if seq == self._expected:
                        self._expected = seq + 1
                        self.delivered.extend(records)
                        appended = len(records)
                        self._cv.notify_all()
                    # seq < expected: duplicate after a reconnect — the
                    # records are already in the log; just re-ack.
                    acked = self._expected - 1
                # NB: fires on the receiver thread, outside the lock.
                if appended and self.on_deliver is not None:
                    self.on_deliver(self, appended)
                ack = Writer().uvarint(_FRAME_ACK).uvarint(acked).bytes()
                conn.sendall(_uvarint_bytes(len(ack)) + ack)
            elif frame_type == _FRAME_HEARTBEAT:
                with self._cv:
                    self.stats.heartbeats_delivered += 1

    @staticmethod
    def _read_frame(conn: socket.socket) -> Optional[bytes]:
        length = _read_uvarint(conn)
        if length is None:
            return None
        payload = b""
        while len(payload) < length:
            chunk = conn.recv(length - len(payload))
            if not chunk:
                return None
            payload += chunk
        return payload

    # -- sender side ---------------------------------------------------
    def _drop_connection(self) -> None:
        if self._sender is not None:
            try:
                self._sender.close()
            except OSError:
                pass
            self._sender = None
        # A partial ack frame from the dead connection is garbage.
        self._ack_buf = b""

    def _connect(self) -> socket.socket:
        if self._sender is None:
            self._sender = socket.create_connection(
                self.address, timeout=self.timeout
            )
            if self._ever_connected:
                self.stats.reconnects += 1
                # Retransmit every unacked data frame in order; the
                # receiver re-acks duplicates and appends the rest, so
                # the contiguous prefix resumes exactly where it broke.
                for seq in sorted(self._outbox):
                    frame = self._outbox[seq]
                    self.stats.retransmits += 1
                    self._sender.sendall(_uvarint_bytes(len(frame)) + frame)
            self._ever_connected = True
        return self._sender

    def _maybe_inject_reset(self) -> None:
        if self.reset_every is None and not self.reset_rate:
            return
        self._frames_since_reset += 1
        due = (self.reset_every is not None
               and self._frames_since_reset >= self.reset_every)
        if not due and self.reset_rate:
            due = self._reset_rng.random() < self.reset_rate
        if due:
            # A graceful close still delivers the kernel-buffered bytes
            # (so no data is torn mid-frame), but any ACKs in flight to
            # us are gone — the reconnect path must cope with both.
            self._frames_since_reset = 0
            self.stats.connection_resets += 1
            self._drop_connection()

    def _send_frame(self, payload: bytes) -> None:
        frame = _uvarint_bytes(len(payload)) + payload
        for attempt in (0, 1):
            try:
                self._connect().sendall(frame)
                return
            except OSError as exc:
                self._drop_connection()
                if attempt:
                    raise TransportError(
                        f"socket send failed: {exc}"
                    ) from exc

    def send(self, records: List[bytes]) -> None:
        if self.closed:
            return
        w = Writer()
        w.uvarint(_FRAME_DATA).uvarint(self._next_seq).uvarint(len(records))
        for record in records:
            w.uvarint(len(record)).raw(record)
        payload = w.bytes()
        self._outbox[self._next_seq] = payload
        self._send_frame(payload)
        self._next_seq += 1
        self._records_sent += len(records)
        self._maybe_inject_reset()

    def send_heartbeat(self) -> None:
        if self.closed:
            return
        self.stats.heartbeats_sent += 1
        self._send_frame(Writer().uvarint(_FRAME_HEARTBEAT).bytes())

    def _parse_ack_frames(self) -> bool:
        """Consume complete frames from the ack buffer; True when the
        cumulative ack advanced."""
        advanced = False
        while True:
            head = _buf_uvarint(self._ack_buf)
            if head is None:
                return advanced
            length, consumed = head
            if len(self._ack_buf) < consumed + length:
                return advanced
            payload = self._ack_buf[consumed:consumed + length]
            self._ack_buf = self._ack_buf[consumed + length:]
            r = Reader(payload)
            if r.uvarint() != _FRAME_ACK:
                continue
            acked = r.uvarint()
            self.stats.acks_delivered += 1
            if acked > self._acked_through:
                self._acked_through = acked
                for seq in [s for s in self._outbox if s <= acked]:
                    del self._outbox[seq]
                self._ack_advanced(acked)
                advanced = True

    def _recv_ack_bytes(self, timeout: float) -> str:
        """Pull whatever ack bytes the socket has into the buffer
        within ``timeout`` seconds (0 = non-blocking).  Returns
        ``"data"``, ``"idle"`` (nothing arrived) or ``"eof"``.
        Non-timeout ``OSError`` propagates to the caller."""
        sock = self._connect()
        sock.settimeout(timeout)
        try:
            chunk = sock.recv(65536)
        except (socket.timeout, BlockingIOError, InterruptedError):
            return "idle"
        finally:
            try:
                sock.settimeout(self.timeout)
            except OSError:
                pass
        if not chunk:
            return "eof"
        self._ack_buf += chunk
        return "data"

    def poll(self) -> bool:
        """Non-blocking ack pump: drain available ack bytes and
        process complete frames.  Connection trouble here is left for
        the blocking paths (send/wait_ack) to repair."""
        if self.closed or not self.ack_pending():
            return False
        progressed = self._parse_ack_frames()
        try:
            status = self._recv_ack_bytes(0.0)
        except OSError:
            self._drop_connection()
            return progressed
        if status == "eof":
            self._drop_connection()
            return progressed
        return self._parse_ack_frames() or progressed

    def ack_pending(self) -> bool:
        return self._acked_through < self._next_seq - 1

    def wait_ack(self) -> float:
        if self.closed or self._next_seq == 0:
            return 0.0
        target = self._next_seq - 1
        started = time.monotonic()
        deadline = started + self.timeout
        failures = 0
        while self._acked_through < target:
            if self._parse_ack_frames():
                continue
            self._service_others()
            # Muxed: short reads so the rest of the fleet keeps moving,
            # bounded by an overall deadline.  Unmuxed: one blocking
            # read with the full timeout, as before.
            if self.mux is not None and time.monotonic() > deadline:
                raise TransportError("timed out waiting for backup ack")
            read_timeout = 0.05 if self.mux is not None else self.timeout
            try:
                status = self._recv_ack_bytes(read_timeout)
            except OSError as exc:
                self._drop_connection()
                failures += 1
                if failures > 3:
                    raise TransportError(f"ack read failed: {exc}") from exc
                continue
            if status == "eof":
                # Our end of the link went away (e.g. an injected reset
                # between send and wait): reconnect and retransmit.
                self._drop_connection()
                failures += 1
                if failures > 3:
                    raise TransportError("backup closed the link mid-ack")
                continue
            if status == "idle" and self.mux is None:
                raise TransportError("timed out waiting for backup ack")
        waited = time.monotonic() - started
        self.stats.ack_wait_time += waited
        return waited

    # -- completion ----------------------------------------------------
    def truncate(self, n_records: int) -> None:
        with self._cv:
            del self.delivered[:n_records]
            self._truncated += n_records

    def crash_sender(self) -> None:
        super().crash_sender()
        self._drop_connection()    # flushes in-flight bytes, then EOF
        try:
            self._listener.close()  # unblocks accept → receiver EOF
        except OSError:
            pass
        self.drain()

    def settle(self) -> None:
        """The sender is alive: ack everything outstanding (forcing a
        reconnect-retransmit round if a reset is pending), then drain."""
        self.wait_ack()
        self.drain()

    def drain(self) -> None:
        deadline = time.monotonic() + self.timeout
        with self._cv:
            while (len(self.delivered) + self._truncated < self._records_sent
                   and not self._eof):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError("receiver did not drain in time")
                self._cv.wait(remaining)

    def close(self) -> None:
        super().close()
        for sock in (self._sender, self._receiver_sock, self._listener):
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        self._thread.join(timeout=1.0)

    def fresh(self) -> "SocketTransport":
        return SocketTransport(
            timeout=self.timeout, reset_every=self.reset_every,
            reset_rate=self.reset_rate, reset_seed=self.reset_seed,
        )


# ======================================================================
# Multiplexing
# ======================================================================
class TransportMux:
    """One event loop servicing every replica group's connection.

    Register each group's transport.  Two things follow:

    * :meth:`poll` advances every member one non-blocking step — the
      fleet's idle loop;
    * while any member *blocks* (an output-commit ack wait, a send
      backpressure stall), it calls :meth:`poll_others` between its own
      steps, so one stalled group's link never freezes the rest of the
      fleet's frames.
    """

    def __init__(self) -> None:
        self._members: List[Transport] = []

    def register(self, transport: Transport) -> Transport:
        if transport not in self._members:
            self._members.append(transport)
            transport.mux = self
        return transport

    def unregister(self, transport: Transport) -> None:
        if transport in self._members:
            self._members.remove(transport)
        if transport.mux is self:
            transport.mux = None

    def members(self) -> List[Transport]:
        return list(self._members)

    def poll(self) -> bool:
        """One non-blocking service step over all members, in
        registration order.  True when any member progressed."""
        progressed = False
        for transport in list(self._members):
            if not transport.closed and transport.poll():
                progressed = True
        return progressed

    def poll_others(self, busy: Transport) -> bool:
        """Service every member except ``busy`` (called from inside
        ``busy``'s blocking wait)."""
        progressed = False
        for transport in list(self._members):
            if transport is busy or transport.closed:
                continue
            if transport.poll():
                progressed = True
        return progressed

    def ack_pending(self) -> bool:
        return any(t.ack_pending() for t in self._members)

    def close(self) -> None:
        for transport in list(self._members):
            transport.close()
        self._members.clear()


def make_transport(spec=None) -> Transport:
    """Build a transport from a spec: ``None`` (in-memory default), a
    :class:`Transport` instance, a zero-argument factory, a fault
    profile name from :data:`FAULT_PROFILES`, or ``"memory"`` /
    ``"socket"``."""
    if spec is None:
        return InMemoryTransport()
    if isinstance(spec, Transport):
        return spec
    if callable(spec):
        transport = spec()
        if not isinstance(transport, Transport):
            raise TransportError(
                f"transport factory returned {transport!r}, not a Transport"
            )
        return transport
    if isinstance(spec, str):
        if spec == "memory":
            return InMemoryTransport()
        if spec == "socket":
            return SocketTransport()
        if spec in FAULT_PROFILES:
            return FaultyTransport(FAULT_PROFILES[spec])
        raise TransportError(
            f"unknown transport {spec!r}; expected 'memory', 'socket', or "
            f"a fault profile from {sorted(FAULT_PROFILES)}"
        )
    raise TransportError(f"cannot build a transport from {spec!r}")

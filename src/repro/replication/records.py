"""Log record types shipped from primary to backup.

These are the paper's data structures, verbatim where it defines them:

* :class:`IdMap` — ``(l_id, t_id, t_asn)``: names a lock by the first
  acquisition that touched it (Section 4.2, replicated lock sync);
* :class:`LockAcqRecord` — ``(t_id, t_asn, l_id, l_asn)``: one monitor
  acquisition (36 bytes in the paper; comparable here);
* :class:`ScheduleRecord` — ``(br_cnt, pc_off, mon_cnt, l_asn, t_id)``:
  one scheduling decision (replicated thread scheduling);
* :class:`NativeResultRecord` — return value / exception / modified
  array arguments of a non-deterministic or output native (§4.1); it
  also serves as the *completion marker* for output commands;
* :class:`OutputIntentRecord` — logged and acknowledged *before* an
  output command executes (output commit / pessimistic logging);
* :class:`SideEffectRecord` — payload produced by a handler's ``log``
  method, consumed by ``receive``/``restore`` at the backup (§4.4).

All records serialize to the compact wire format in
:mod:`repro.replication.wire`; ``encode``/``decode_record`` round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReplicationError
from repro.replication.wire import Reader, Writer

Vid = Tuple[int, ...]

_KIND_ID_MAP = 1
_KIND_LOCK_ACQ = 2
_KIND_SCHEDULE = 3
_KIND_NATIVE_RESULT = 4
_KIND_OUTPUT_INTENT = 5
_KIND_SIDE_EFFECT = 6
_KIND_LOCK_INTERVAL = 7
#: Reserved for :class:`repro.replication.digest.DigestRecord`, which
#: registers its reader on import (core=True) to avoid a module cycle.
KIND_DIGEST = 8
#: :class:`EpochRecord` — the generation-stamped envelope every shipped
#: record travels in once a replica group is running (split-brain guard).
KIND_EPOCH = 9
#: Reserved for :class:`repro.replication.checkpoint.CheckpointChunkRecord`,
#: which registers its reader on import (core=True), like the digest.
KIND_CHECKPOINT_CHUNK = 10
#: Reserved for :class:`repro.replication.checkpoint.DeltaChunkRecord`
#: (steady-state incremental checkpoints), registered the same way.
KIND_CHECKPOINT_DELTA = 11
#: Reserved for :class:`repro.replication.voting.VoteRecord` (quorum
#: ballots over digest/output fingerprints), registered on import with
#: ``core=True`` like the digest and checkpoint kinds.
KIND_VOTE = 12


@dataclass(frozen=True)
class IdMap:
    """Associates a locally-generated lock id with the (thread,
    acquisition-number) pair that first acquired the lock."""

    l_id: int
    t_id: Vid
    t_asn: int

    def write(self, w: Writer) -> None:
        w.uvarint(_KIND_ID_MAP).uvarint(self.l_id).vid(self.t_id)
        w.uvarint(self.t_asn)

    @staticmethod
    def read(r: Reader) -> "IdMap":
        return IdMap(r.uvarint(), r.vid(), r.uvarint())


@dataclass(frozen=True)
class LockAcqRecord:
    """One (non-recursive) monitor acquisition at the primary."""

    t_id: Vid
    t_asn: int
    l_id: int
    l_asn: int

    def write(self, w: Writer) -> None:
        w.uvarint(_KIND_LOCK_ACQ).vid(self.t_id).uvarint(self.t_asn)
        w.uvarint(self.l_id).uvarint(self.l_asn)

    @staticmethod
    def read(r: Reader) -> "LockAcqRecord":
        return LockAcqRecord(r.vid(), r.uvarint(), r.uvarint(), r.uvarint())


@dataclass(frozen=True)
class ScheduleRecord:
    """One scheduling decision: the progress point at which the primary
    descheduled ``prev_t_id`` and the thread it scheduled next."""

    br_cnt: int
    pc_off: int
    mon_cnt: int
    l_asn: int          # of the monitor prev was waiting on, or -1
    t_id: Vid           # next scheduled thread
    prev_t_id: Vid      # descheduled thread (kept for replay assertions)

    def write(self, w: Writer) -> None:
        w.uvarint(_KIND_SCHEDULE).uvarint(self.br_cnt).svarint(self.pc_off)
        w.uvarint(self.mon_cnt).svarint(self.l_asn)
        w.vid(self.t_id).vid(self.prev_t_id)

    @staticmethod
    def read(r: Reader) -> "ScheduleRecord":
        return ScheduleRecord(
            r.uvarint(), r.svarint(), r.uvarint(), r.svarint(),
            r.vid(), r.vid(),
        )

    @property
    def progress(self) -> Tuple[int, int, int]:
        return (self.br_cnt, self.pc_off, self.mon_cnt)


@dataclass(frozen=True)
class NativeResultRecord:
    """Outcome of a native invocation the backup must adopt.

    Doubles as the completion marker for output commands: it is logged
    immediately after the output executes, so its presence in the
    delivered log proves the output completed (§3.4 / §4.4).
    """

    t_id: Vid
    seq: int                       # per-thread native sequence number
    signature: str
    value: Any = None
    exception: Optional[Tuple[str, str]] = None
    #: arg index -> post-call array contents (out-parameters).
    array_results: Dict[int, list] = field(default_factory=dict)

    def write(self, w: Writer) -> None:
        w.uvarint(_KIND_NATIVE_RESULT).vid(self.t_id).uvarint(self.seq)
        w.text(self.signature).value(self.value)
        if self.exception is None:
            w.uvarint(0)
        else:
            w.uvarint(1).text(self.exception[0]).text(self.exception[1])
        w.uvarint(len(self.array_results))
        for index in sorted(self.array_results):
            w.uvarint(index).value(self.array_results[index])

    @staticmethod
    def read(r: Reader) -> "NativeResultRecord":
        t_id = r.vid()
        seq = r.uvarint()
        signature = r.text()
        value = r.value()
        exception = None
        if r.uvarint():
            exception = (r.text(), r.text())
        arrays = {}
        for _ in range(r.uvarint()):
            index = r.uvarint()
            arrays[index] = r.value()
        return NativeResultRecord(t_id, seq, signature, value, exception, arrays)


@dataclass(frozen=True)
class OutputIntentRecord:
    """Logged (and acknowledged) before an output command executes."""

    t_id: Vid
    seq: int
    signature: str

    def write(self, w: Writer) -> None:
        w.uvarint(_KIND_OUTPUT_INTENT).vid(self.t_id).uvarint(self.seq)
        w.text(self.signature)

    @staticmethod
    def read(r: Reader) -> "OutputIntentRecord":
        return OutputIntentRecord(r.vid(), r.uvarint(), r.text())


@dataclass(frozen=True)
class SideEffectRecord:
    """A side-effect handler's ``log`` payload (flat str->scalar dict)."""

    handler: str
    payload: Dict[str, Any]

    def write(self, w: Writer) -> None:
        w.uvarint(_KIND_SIDE_EFFECT).text(self.handler)
        w.uvarint(len(self.payload))
        for key in sorted(self.payload):
            w.text(key).value(self.payload[key])

    @staticmethod
    def read(r: Reader) -> "SideEffectRecord":
        handler = r.text()
        payload = {}
        for _ in range(r.uvarint()):
            key = r.text()
            payload[key] = r.value()
        return SideEffectRecord(handler, payload)


@dataclass(frozen=True)
class LockIntervalRecord:
    """A run of ``count`` consecutive monitor acquisitions by one
    thread (the paper's §6 interval-coalescing optimization — between
    interleavings a thread's acquisitions are deterministic, so only
    the run length must cross the wire)."""

    t_id: Vid
    count: int

    def write(self, w: Writer) -> None:
        w.uvarint(_KIND_LOCK_INTERVAL).vid(self.t_id).uvarint(self.count)

    @staticmethod
    def read(r: Reader) -> "LockIntervalRecord":
        return LockIntervalRecord(r.vid(), r.uvarint())


@dataclass(frozen=True)
class EpochRecord:
    """Generation-stamped envelope around one encoded record.

    Every record a replica-group primary ships is wrapped in the epoch
    (generation number) under which that primary holds the primary
    role.  The receive side *fences* on it: records stamped with a
    stale epoch come from a deposed primary that does not yet know it
    was deposed, and adopting them would corrupt the group (the
    classic split-brain hazard).  ``payload`` is the complete wire
    encoding of the inner record, decodable with
    :func:`decode_record`."""

    epoch: int
    payload: bytes

    def write(self, w: Writer) -> None:
        w.uvarint(KIND_EPOCH).uvarint(self.epoch)
        w.uvarint(len(self.payload)).raw(self.payload)

    @staticmethod
    def read(r: Reader) -> "EpochRecord":
        epoch = r.uvarint()
        return EpochRecord(epoch, r.raw(r.uvarint()))

    def inner(self):
        """Decode the wrapped record."""
        return decode_record(self.payload)


_READERS = {
    _KIND_ID_MAP: IdMap.read,
    _KIND_LOCK_ACQ: LockAcqRecord.read,
    _KIND_SCHEDULE: ScheduleRecord.read,
    _KIND_NATIVE_RESULT: NativeResultRecord.read,
    _KIND_OUTPUT_INTENT: OutputIntentRecord.read,
    _KIND_SIDE_EFFECT: SideEffectRecord.read,
    _KIND_LOCK_INTERVAL: LockIntervalRecord.read,
    KIND_EPOCH: EpochRecord.read,
}

#: Kinds below this value are reserved for the core protocol.
FIRST_CUSTOM_KIND = 64


def register_record_kind(kind: int, reader, *, replace: bool = False,
                         core: bool = False) -> int:
    """Register a decoder for a plug-in record kind.

    Strategy plug-ins ship their own record types alongside their
    strategy: the record's ``write`` method must emit
    ``uvarint(kind)`` first, and ``reader(r)`` must consume exactly the
    rest.  Custom kinds start at :data:`FIRST_CUSTOM_KIND`; the core
    kinds cannot be replaced unless ``replace=True``.  ``core=True``
    lets an in-tree protocol module claim a *reserved but unassigned*
    kind (it never overwrites an existing reader).  Returns the kind
    for convenience.
    """
    if kind < FIRST_CUSTOM_KIND and not (replace or core):
        raise ReplicationError(
            f"record kind {kind} is reserved for the core protocol "
            f"(custom kinds start at {FIRST_CUSTOM_KIND})"
        )
    if kind in _READERS and not replace:
        raise ReplicationError(f"record kind {kind} already registered")
    _READERS[kind] = reader
    return kind


def encode(record) -> bytes:
    """Serialize one record to its wire form."""
    w = Writer()
    record.write(w)
    return w.bytes()


def decode_record(data: bytes):
    """Deserialize one record; raises ReplicationError on junk."""
    r = Reader(data)
    kind = r.uvarint()
    reader = _READERS.get(kind)
    if reader is None:
        raise ReplicationError(f"unknown record kind {kind}")
    record = reader(r)
    if not r.exhausted:
        raise ReplicationError("trailing bytes after record")
    return record

"""Failure detection (the paper's extra system thread).

The paper adds two system threads to the JVM: one transfers logging
information, one performs failure detection "to allow the backup to
initiate recovery".  Log transfer is modelled by
:class:`~repro.replication.commit.LogShipper` + the channel; this
module models the detector: the primary emits heartbeats as it runs
(driven from the JVM's slice hook), and the backup side counts silent
intervals before declaring the primary dead.

In the single-process harness the fail-stop itself is injected
deterministically, so the detector's role is observability: tests
assert that detection happens after the configured number of silent
intervals and never while heartbeats are flowing (no false positives
under a fail-stop model).

The detector counts heartbeats *as the backup sees them*.  When bound
to a transport heartbeat source (the replicated machine passes
``source=lambda: transport.stats.heartbeats_delivered``), it keys off
missed transport-level heartbeats — a heartbeat the network dropped is
a heartbeat the detector never saw.  Without a source it counts its
own :meth:`heartbeat` calls (the original in-process mode, still used
by unit tests and standalone detectors).
"""

from __future__ import annotations

from typing import Callable, Optional

#: Sentinel distinguishing "keep the current source" from "clear it".
_UNSET: Optional[Callable[[], int]] = object()  # type: ignore[assignment]


class FailureDetector:
    """Heartbeat-counting failure detector."""

    def __init__(self, timeout_intervals: int = 3,
                 source: Optional[Callable[[], int]] = None) -> None:
        if timeout_intervals < 1:
            raise ValueError("timeout_intervals must be >= 1")
        self.timeout_intervals = timeout_intervals
        self.heartbeats = 0
        self._source = source
        self._beats_at_last_interval = 0
        self.silent_intervals = 0
        self.suspected = False
        self.convicted = False
        self.conviction_reason = ""
        self.intervals_observed = 0
        self.suspicions_cleared = 0

    def reset(self, source: Optional[Callable[[], int]] = _UNSET) -> None:
        """Forget everything observed so far (new generation).

        A replica group reuses one detector across failovers: after a
        promotion the new primary/backup pair must start from a clean
        slate — inheriting ``suspected`` or accumulated
        ``silent_intervals`` from the deposed generation would fire a
        false detection immediately.  Pass ``source`` to rebind the
        heartbeat source to the new generation's transport."""
        self.heartbeats = 0
        self._beats_at_last_interval = 0
        self.silent_intervals = 0
        self.suspected = False
        self.convicted = False
        self.conviction_reason = ""
        self.intervals_observed = 0
        if source is not _UNSET:
            self._source = source

    # -- primary side ---------------------------------------------------
    def heartbeat(self) -> None:
        """The primary is alive (called from its run loop)."""
        self.heartbeats += 1

    def observed_heartbeats(self) -> int:
        """Heartbeats visible at the backup: the transport's delivered
        count when bound to one, else the in-process counter."""
        if self._source is not None:
            return self._source()
        return self.heartbeats

    # -- backup side ----------------------------------------------------
    def interval(self) -> bool:
        """One detection interval elapsed; returns True while the
        member is suspected or convicted.

        Suspicion is *recoverable*: a transient hiccup (scheduling
        stall, slow network) silences the heartbeats for a few
        intervals, but once beats resume the member was merely slow,
        not faulty, and the suspicion clears.  Conviction — set by
        :meth:`convict` when a member is outvoted or fenced — is
        permanent until :meth:`rearm`; resumed heartbeats never clear
        it, because a liar is perfectly capable of beating on time.
        """
        self.intervals_observed += 1
        beats = self.observed_heartbeats()
        if beats > self._beats_at_last_interval:
            self._beats_at_last_interval = beats
            self.silent_intervals = 0
            if self.suspected and not self.convicted:
                self.suspected = False
                self.suspicions_cleared += 1
        else:
            self.silent_intervals += 1
            if self.silent_intervals >= self.timeout_intervals:
                self.suspected = True
        return self.suspected or self.convicted

    def absolve(self) -> None:
        """Clear a live suspicion out-of-band (the member's latest
        digest vote matched the quorum certificate, so it is provably
        healthy even if its heartbeats are lagging).  No-op once
        convicted."""
        if self.convicted or not self.suspected:
            return
        self.suspected = False
        self.silent_intervals = 0
        self.suspicions_cleared += 1

    def convict(self, reason: str = "") -> None:
        """Permanently mark the member faulty (outvoted, equivocated,
        or fenced).  Unlike suspicion this survives resumed heartbeats
        and only :meth:`rearm` lifts it."""
        self.convicted = True
        self.conviction_reason = reason
        self.suspected = True

    def rearm(self) -> None:
        """The member was rebuilt from a verified checkpoint: lift the
        conviction and start counting from a clean slate."""
        self.convicted = False
        self.conviction_reason = ""
        self.suspected = False
        self.silent_intervals = 0
        self._beats_at_last_interval = self.observed_heartbeats()

    def await_detection(self, max_intervals: int = 1_000) -> int:
        """Run intervals until suspicion fires; returns how many were
        needed.  Used by the failover machinery after a real crash."""
        for i in range(1, max_intervals + 1):
            if self.interval():
                return i
        raise RuntimeError("failure detector never fired")

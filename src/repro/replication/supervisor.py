"""Replica-group supervision: surviving repeated failures.

:class:`~repro.replication.machine.ReplicatedJVM` proves the paper's
core protocol for *one* failover: primary dies, cold backup replays the
log, continues as the sole machine.  A real deployment cannot stop
there — after the backup promotes, the system is running without a
spare, and the next fault would be fatal.  :class:`ReplicaGroup` closes
the loop with **checkpoint-based re-integration**:

1. every *generation* (epoch) begins with the primary snapshotting its
   complete state (:mod:`repro.replication.checkpoint`) and shipping it
   through the ordinary log channel to a freshly spun-up backup;
2. the backup reassembles the snapshot, restores it into a new JVM, and
   *verifies the state digest* before adopting it — a torn or corrupted
   transfer is rejected, not silently adopted;
3. once the checkpoint is acknowledged, the log is truncated at the
   checkpoint boundary on both sides: replay starts from the snapshot,
   so the prefix is dead weight and the log no longer grows without
   bound across the run;
4. every shipped record travels inside an
   :class:`~repro.replication.records.EpochRecord` envelope stamped
   with the generation; the receive side fences out records from any
   other generation, so a deposed primary that keeps transmitting
   (split brain) is provably discarded;
5. when the failure detector fires, the backup replays checkpoint +
   post-checkpoint log, resolves the uncertain output exactly-once,
   is promoted, and the cycle restarts at (1) with the next epoch.

The transfer itself is crashable: checkpoint chunks pass through the
same :class:`~repro.replication.commit.CrashInjector` event counter as
log records, so a sweep can kill the primary mid-transfer.  Because
chunk assembly is idempotent and the supervisor retains the previous
generation's basis (checkpoint + fenced execution records) until the
new transfer completes, a mid-transfer death re-runs recovery from the
old basis — replay is deterministic, so the re-promoted replica reaches
the identical state and simply re-ships its snapshot under a fresh
epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.classfile.loader import ClassRegistry
from repro.env.channel import Channel
from repro.env.environment import Environment
from repro.env.port import INGEST_SIGNATURE
from repro.errors import (
    AlreadyRanError,
    PrimaryCrashed,
    RecoveryError,
    ReplicationError,
)
from repro.replication.checkpoint import (
    DEFAULT_CHUNK_BYTES,
    Checkpoint,
    CheckpointAssembler,
    CheckpointChunkRecord,
    DeltaCheckpoint,
    compose_delta,
    first_dispatch_vid,
    restore_checkpoint,
    take_checkpoint,
)
from repro.replication.commit import CrashInjector, EpochFence, LogShipper
from repro.replication.config import (
    ReplicaSettings,
    ReplicationConfig,
    config_from_kwargs,
)
from repro.replication.failure import FailureDetector
from repro.replication.machine import parse_log
from repro.replication.metrics import ReplicationMetrics
from repro.replication.ndnatives import BackupNativePolicy, PrimaryNativePolicy
from repro.replication.records import decode_record
from repro.replication.sehandlers import SideEffectHandler, SideEffectManager
from repro.replication.steady import SteadyCheckpointer, SteadyHooks
from repro.replication.strategy import resolve_strategy
from repro.replication.transport import Transport, make_transport
from repro.runtime.jvm import JVM, JVMConfig, RunHooks, RunResult
from repro.runtime.natives import NativeRegistry
from repro.runtime.stdlib import default_natives


def default_generation_settings(generation: int) -> ReplicaSettings:
    """Per-generation non-determinism sources.  Each replica gets its
    own scheduler seed, clock skew, and entropy stream — replication
    must succeed despite them (restriction R0)."""
    return ReplicaSettings(
        scheduler_seed=101 + 91 * generation,
        clock_offset_ms=13 * generation,
        entropy_seed=7001 + 97 * generation,
    )


class _GroupHeartbeatHooks(RunHooks):
    """Transport-level heartbeats from the active primary's run loop."""

    def __init__(self, channel: Channel) -> None:
        self._channel = channel

    def on_slice_end(self, jvm, thread, reason) -> None:
        self._channel.heartbeat()


# ======================================================================
# Membership state machine (quorum-voting groups)
# ======================================================================
class MemberState:
    """Lifecycle states of one voting-group member.

    ``HEALTHY → SUSPECTED`` on missed heartbeats and back on resumed
    beats or a quorum-matching vote (a slow member is not a faulty
    member); ``→ CONVICTED`` only on hard evidence — outvoted by a
    quorum certificate, equivocation, or an explicit fence — and then
    only a checkpoint re-arm returns it to ``HEALTHY``.
    """

    HEALTHY = "healthy"
    SUSPECTED = "suspected"
    CONVICTED = "convicted"


@dataclass
class MemberSlot:
    """Bookkeeping for one member slot of a voting group.

    The slot's identity (index, pinned execution engine) outlives any
    one incarnation of the member: quarantine destroys the runtime but
    keeps the slot, and a re-arm builds a fresh runtime into it.
    """

    index: int
    engine: str
    detector: FailureDetector
    state: str = MemberState.HEALTHY
    role: str = "follower"               # "proposer" | "follower"
    conviction: str = ""
    #: How many times this slot's runtime has been (re)built — used to
    #: give every incarnation a distinct environment session name.
    incarnation: int = 0
    quarantines: int = 0
    rearms: int = 0

    @property
    def healthy(self) -> bool:
        return self.state != MemberState.CONVICTED

    def suspect(self) -> bool:
        """Mark suspected; returns True on a fresh HEALTHY→SUSPECTED
        transition (convicted members stay convicted)."""
        if self.state != MemberState.HEALTHY:
            return False
        self.state = MemberState.SUSPECTED
        return True

    def absolve(self) -> bool:
        """A suspected member proved itself (resumed beats or a vote
        matching the quorum certificate); returns True if a suspicion
        was actually cleared."""
        if self.state != MemberState.SUSPECTED:
            return False
        self.state = MemberState.HEALTHY
        self.detector.absolve()
        return True

    def convict(self, reason: str) -> None:
        """Hard evidence of a fault: permanent until :meth:`rearm`."""
        if self.state == MemberState.CONVICTED:
            return
        self.state = MemberState.CONVICTED
        self.conviction = reason
        self.quarantines += 1
        self.detector.convict(reason)

    def rearm(self) -> None:
        """Rebuilt from a digest-verified checkpoint: clean slate."""
        self.state = MemberState.HEALTHY
        self.conviction = ""
        self.rearms += 1
        self.detector.rearm()


@dataclass
class GenerationReport:
    """What happened while one epoch's primary held the role."""

    generation: int
    outcome: str = "pending"
    #: Injector event count at the crash (None when no crash fired).
    crash_event: Optional[int] = None
    #: Total injector events observed this generation.
    events: int = 0
    detection_intervals: Optional[int] = None
    checkpoint_bytes: int = 0
    checkpoint_chunks: int = 0
    primary_metrics: Optional[ReplicationMetrics] = None
    #: Metrics of the recovery replay that *produced* this generation's
    #: primary (None for generation 0's fresh boot).
    recovery_metrics: Optional[ReplicationMetrics] = None
    #: Steady-state delta checkpoints adopted while this generation
    #: held the primary role (0 when checkpoint_interval is off).
    steady_checkpoints: int = 0


@dataclass
class GroupResult:
    """Outcome of one replica-group run."""

    outcome: str                      # always "completed" on return
    result: RunResult
    generations: List[GenerationReport]
    failures_survived: int

    @property
    def final_generation(self) -> int:
        return self.generations[-1].generation

    @property
    def records_fenced(self) -> int:
        total = 0
        for report in self.generations:
            for metrics in (report.primary_metrics, report.recovery_metrics):
                if metrics is not None:
                    total += metrics.records_fenced
        return total

    @property
    def checkpoint_bytes_shipped(self) -> int:
        return sum(r.checkpoint_bytes for r in self.generations
                   if r.outcome != "completed_in_recovery")


@dataclass
class _Generation:
    """Everything one armed generation owns: the instrumented primary
    and its channel-side plumbing.  Kept in one bundle so the crash
    path (which can fire during transfer *or* during execution) always
    has the right handles."""

    generation: int
    jvm: JVM
    se_manager: SideEffectManager
    transport: Transport
    channel: Channel
    metrics: ReplicationMetrics
    injector: CrashInjector
    shipper: LogShipper
    report: GenerationReport
    transfer_ok: bool = False
    #: Steady-state emitter, installed once the arm transfer completes.
    steady: Optional[SteadyCheckpointer] = None


class ReplicaGroup:
    """Primary + backup over a transport, surviving *k* failovers.

    ``crash_schedule`` maps generation -> injector crash event (a dict,
    or a sequence indexed by generation); generations without an entry
    run until program completion.  Each generation gets a fresh
    transport from ``transport`` (a spec string, a
    :class:`~repro.replication.transport.Transport` template whose
    ``fresh()`` re-arms it, or a ``factory(generation)`` callable — the
    callable form is how sweeps give every generation deterministic,
    distinct fault seeds)."""

    def __init__(
        self,
        registry: ClassRegistry,
        natives: Optional[NativeRegistry] = None,
        env: Optional[Environment] = None,
        *,
        config: Optional[ReplicationConfig] = None,
        **kwargs,
    ) -> None:
        config = config_from_kwargs(config, kwargs, owner="ReplicaGroup")
        self.config = config
        self._strategy = resolve_strategy(config.strategy)
        self.registry = registry
        self.natives = natives or default_natives()
        self.env = env or Environment()
        self.crash_schedule = config.crash_schedule
        self.max_failures = config.max_failures
        self._transport_spec = config.transport
        self._transport_template_used = False
        self._settings_for = config.settings_for or default_generation_settings
        self.base_config = config.jvm_config or JVMConfig()
        self.batch_records = config.batch_records
        self.detector = FailureDetector(config.detector_timeout)
        self._extra_se_handlers = list(config.se_handlers)
        self.chunk_bytes = (DEFAULT_CHUNK_BYTES if config.chunk_bytes is None
                            else config.chunk_bytes)
        self.checkpoint_interval = config.checkpoint_interval
        self.k_backups = config.k_backups
        if self.k_backups < 1:
            raise ReplicationError(
                f"k_backups must be at least 1, got {self.k_backups}"
            )

        #: Per-generation reports, appended as the run progresses.
        self.reports: List[GenerationReport] = []
        #: The machine that produced the final output (for digest checks).
        self.final_jvm: Optional[JVM] = None

        # --- recovery basis: everything the surviving side knows -------
        #: Last checkpoint fully transferred and digest-verified.
        self._ckpt: Optional[Checkpoint] = None
        #: The k recovery bases, all re-armed from the same checkpoint
        #: stream: every adopted checkpoint (arm-time full or steady
        #: delta) updates each slot independently, so after a crash any
        #: slot can seed the next generation's backup.
        self._backup_bases: List[Checkpoint] = []
        #: Scratch-restore sessions attached for steady verification.
        self._verify_sessions = 0
        #: Epoch that shipped (and therefore stamps) the basis records.
        self._ckpt_epoch = -1
        #: Raw (still epoch-wrapped) records delivered after the basis
        #: checkpoint, captured when that epoch's primary crashed.
        self._exec_raw: List[bytes] = []
        #: Raw leavings of deposed primaries whose transfer never
        #: completed — retained only so the fence can provably discard
        #: them at the next recovery.
        self._stale_raw: List[bytes] = []
        self._ran = False
        self._failures = 0

        # --- serving lifecycle state -----------------------------------
        #: Request port name when serving (None = classic run()).
        self._serve_port: Optional[str] = None
        #: ``len(port.consumed)`` at basis-checkpoint adoption: live
        #: takes already accounted for by the checkpoint itself.
        self._port_basis = 0
        self._serve_main: Optional[str] = None
        self._serve_args: Optional[List[str]] = None
        self._serve_result: Optional[GroupResult] = None
        self._gen: Optional[_Generation] = None
        self._generation = 0

    @property
    def failures_survived(self) -> int:
        return self._failures

    @property
    def generation(self) -> int:
        """Epoch of the currently armed generation (serving mode)."""
        return self._generation

    @property
    def active_jvm(self) -> Optional[JVM]:
        """The machine currently holding the primary role, if armed."""
        return self._gen.jvm if self._gen is not None else None

    @property
    def strategy(self) -> str:
        return self._strategy.name

    # ==================================================================
    # Plumbing
    # ==================================================================
    def _crash_at(self, generation: int) -> Optional[int]:
        schedule = self.crash_schedule
        if schedule is None:
            return None
        if isinstance(schedule, dict):
            return schedule.get(generation)
        if isinstance(schedule, (list, tuple)):
            return (schedule[generation]
                    if generation < len(schedule) else None)
        raise ReplicationError(
            "crash_schedule must be a dict or sequence of crash events"
        )

    def _make_transport(self, generation: int) -> Transport:
        spec = self._transport_spec
        if isinstance(spec, Transport):
            if self._transport_template_used:
                return spec.fresh()
            self._transport_template_used = True
            return spec
        if callable(spec):
            built = spec(generation)
            return (built if isinstance(built, Transport)
                    else make_transport(built))
        return make_transport(spec)

    def _make_se_manager(self) -> SideEffectManager:
        manager = SideEffectManager()
        for handler in self._extra_se_handlers:
            manager.add_handler(handler.fresh())
        return manager

    def _config_for(self, generation: int) -> JVMConfig:
        return replace(
            self.base_config,
            scheduler_seed=self._settings_for(generation).scheduler_seed,
        )

    @staticmethod
    def _finish_metrics(jvm: JVM, metrics: ReplicationMetrics,
                        transport: Optional[Transport] = None) -> None:
        metrics.instructions = jvm.instructions
        metrics.cf_changes = sum(t.br_cnt for t in jvm.scheduler.threads)
        metrics.heavy_ops = jvm.heavy_ops
        metrics.native_calls = jvm.native_calls
        metrics.locks_acquired = jvm.sync.total_acquisitions
        metrics.objects_locked = jvm.sync.monitors_created
        metrics.largest_l_asn = jvm.sync.largest_l_asn
        metrics.reschedules = jvm.scheduler.reschedules
        metrics.engine = jvm.config.engine
        metrics.blocks_compiled = jvm.interpreter.blocks_compiled
        metrics.block_cache_hits = jvm.interpreter.block_cache_hits
        if transport is not None:
            stats = transport.stats
            metrics.retransmits = stats.retransmits
            metrics.messages_dropped = stats.messages_dropped
            metrics.messages_duplicated = stats.messages_duplicated
            metrics.backpressure_stalls = stats.backpressure_stalls
            metrics.heartbeats_sent = stats.heartbeats_sent
            metrics.heartbeats_delivered = stats.heartbeats_delivered

    # ==================================================================
    # Recovery (build the next primary from the basis)
    # ==================================================================
    def _has_uncertain_tail(self, policy: BackupNativePolicy,
                            jvm: JVM) -> bool:
        return any(
            policy.has_uncertain_tail(t.vid) for t in jvm.scheduler.threads
        )

    def _recover(self, generation: int, main_class: str,
                 args: Optional[List[str]]
                 ) -> Tuple[JVM, SideEffectManager, Optional[RunResult],
                            ReplicationMetrics]:
        """Replay the basis into a promoted, quiescent machine.

        Restores the basis checkpoint (or boots from the identical
        initial state when no checkpoint ever completed), fences the
        retained raw log down to the basis epoch, replays it in hold
        mode, resolves the uncertain output tail exactly-once, and
        applies promotion cleanup.  Returns the machine, its side-effect
        manager, the program result if replay ran to completion (the
        recovered machine finished as sole survivor), and the replay's
        metrics."""
        metrics = ReplicationMetrics(role="backup")
        settings = self._settings_for(generation)
        session = self.env.attach(
            f"replica-g{generation}",
            clock_offset_ms=settings.clock_offset_ms,
            entropy_seed=settings.entropy_seed,
        )
        config = self._config_for(generation)
        se_manager = self._make_se_manager()

        fence = EpochFence(max(self._ckpt_epoch, 0), metrics)
        inner = fence.filter_raw(list(self._exec_raw)
                                 + list(self._stale_raw))

        if self._ckpt is not None:
            jvm = restore_checkpoint(
                self._ckpt, self.registry, self.natives, session, config,
                name=f"replica-g{generation}", se_manager=se_manager,
            )
            metrics.checkpoints_restored += 1
        else:
            jvm = JVM(self.registry, self.natives, session, config,
                      name=f"replica-g{generation}")
            jvm.bootstrap(main_class, args)

        parsed = parse_log(inner)
        metrics.recovery_tail_records = parsed.total
        self._reconcile_port(parsed, metrics)
        for record in parsed.side_effects:
            se_manager.receive(record)
        policy = BackupNativePolicy(
            parsed.results, parsed.intents, se_manager, metrics
        )
        policy.hold_when_drained = True
        if self._ckpt is not None:
            # A steady (mid-generation) basis carries the crashed
            # primary's per-thread native numbering; the tail's records
            # hold absolute seqs, so replay must resume the counters.
            policy.seed_seqs(self._ckpt.state().native_seqs)
        jvm.native_policy = policy
        driver = self._strategy.make_backup(parsed, metrics, settings, config)
        driver.install(jvm)
        driver.set_hold(True)
        controller = getattr(driver, "controller", None)
        if controller is not None and hasattr(controller, "tail_gate"):
            controller.tail_gate = policy.has_uncertain_tail
        if (controller is not None and self._ckpt is not None
                and hasattr(controller, "set_resume_vid")):
            controller.set_resume_vid(first_dispatch_vid(jvm))
        if self._ckpt is not None:
            # A steady basis was captured with the descheduled thread
            # still `current`; the resume vid is recorded above, so
            # normalize the scheduler exactly as the primary's requeue
            # did (no-op for quiescent arm-time checkpoints).
            jvm.scheduler.release_current()
        jvm.sync.reevaluate_parked()

        result = jvm.run_to_completion(pause_on_starvation=True)
        if result is None and self._has_uncertain_tail(policy, jvm):
            # The paper's uncertain output: intent delivered, marker
            # lost.  Admit exactly that native — the strategy keeps
            # holding everything else — and let test/confirm/re-execute
            # resolve it exactly-once.
            policy.tail_resolution = True
            if controller is not None and hasattr(controller, "starving"):
                controller.starving = False
            jvm.sync.reevaluate_parked()
            result = jvm.run_to_completion(pause_on_starvation=True)
        if result is None and policy.remaining():
            raise RecoveryError(
                f"recovery for generation {generation} stalled with "
                f"{policy.remaining()} unreplayed native record(s)"
            )
        self._promote(jvm, se_manager)
        return jvm, se_manager, result, metrics

    def _promote(self, jvm: JVM, se_manager: SideEffectManager) -> None:
        """Strip replay-era residue before the machine takes the
        primary role (or is checkpointed as one)."""
        # Lock ids are a per-generation naming scheme; the next
        # generation's strategy assigns fresh ones.
        for obj in jvm.heap.objects:
            monitor = getattr(obj, "monitor", None)
            if monitor is not None:
                monitor.l_id = None
        jvm.sync.notify_wakes_all = False
        jvm.scheduler.release_current()
        jvm.scheduler.last_reason = None
        # Volatile environment state (open fds, console position) must
        # be live before the promoted machine touches the environment;
        # no-op if the uncertain-tail path already restored it.
        se_manager.restore(jvm.session)

    # ==================================================================
    # State transfer (sender + receiver halves of re-integration)
    # ==================================================================
    def _adopt_checkpoint(self, channel: Channel,
                          metrics: ReplicationMetrics, generation: int,
                          n_chunks: int, shipper: LogShipper) -> None:
        """The fresh backup's half: reassemble the delivered chunks,
        verify the snapshot restores to the sender's digest, then
        truncate the chunk prefix from the shared log."""
        fence = EpochFence(generation, metrics)
        assembler = CheckpointAssembler()
        checkpoint: Optional[Checkpoint] = None
        for data in fence.filter_raw(channel.backup_log()):
            record = decode_record(data)
            if isinstance(record, CheckpointChunkRecord):
                assembled = assembler.feed(record)
                if assembled is not None:
                    checkpoint = assembled
        if checkpoint is None:
            raise ReplicationError(
                f"checkpoint transfer for generation {generation} was "
                f"acknowledged but never assembled"
            )
        # Digest verification by restore into a scratch machine: the
        # snapshot is adopted only if it reproduces the sender's state.
        verify_session = self.env.attach(f"verify-g{generation}")
        try:
            restore_checkpoint(
                checkpoint, self.registry, self.natives, verify_session,
                self._config_for(generation),
                name=f"verify-g{generation}",
                se_manager=self._make_se_manager(),
            )
        finally:
            verify_session.destroy()
        shipper.truncate_at_checkpoint(n_chunks)
        self._ckpt = checkpoint
        self._backup_bases = [checkpoint] * self.k_backups
        self._ckpt_epoch = generation
        self._exec_raw = []
        self._stale_raw = []
        if self._serve_port is not None:
            # Every request consumed so far is baked into the basis
            # checkpoint; only post-checkpoint recv records count at
            # the next reconciliation.
            self._port_basis = len(self.env.port(self._serve_port).consumed)

    def _verify_steady(self, checkpoint: Checkpoint) -> None:
        """Scratch-restore an adopted steady checkpoint —
        :func:`restore_checkpoint` re-derives the state digest and
        refuses the snapshot on any mismatch, so a delta-composition
        bug is caught at adoption, not at the next failover."""
        self._verify_sessions += 1
        session = self.env.attach(f"steady-verify-{self._verify_sessions}")
        try:
            restore_checkpoint(
                checkpoint, self.registry, self.natives, session,
                self._config_for(self._generation),
                name="steady-verify", se_manager=self._make_se_manager(),
            )
        finally:
            session.destroy()

    def _adopt_steady(self, composed: Checkpoint,
                      delta: Optional[DeltaCheckpoint]) -> None:
        """Re-arm every recovery basis from the checkpoint stream: the
        delta composes onto each retained slot independently, and all
        k results must agree with the adopted snapshot — composition
        is pure state surgery, so a disagreement is a corruption."""
        if delta is not None:
            slots = [compose_delta(base, delta)
                     for base in self._backup_bases]
        else:
            slots = [composed] * self.k_backups
        for index, slot in enumerate(slots):
            if slot.digest != composed.digest:
                raise ReplicationError(
                    f"recovery basis slot {index} diverged after delta "
                    f"seq {delta.seq}: digest {slot.digest.hex()} != "
                    f"adopted {composed.digest.hex()}"
                )
        self._backup_bases = slots
        self._ckpt = composed
        if self._gen is not None:
            self._gen.report.steady_checkpoints += 1
        if self._serve_port is not None:
            # Requests consumed so far are baked into the new basis;
            # only post-checkpoint recv records count at the next
            # reconciliation.
            self._port_basis = len(self.env.port(self._serve_port).consumed)

    def _reconcile_port(self, parsed,
                        metrics: Optional[ReplicationMetrics] = None
                        ) -> None:
        """Exactly-once request consumption across a failover.

        ``port.consumed`` counts live takes since the run began; the
        basis accounts for ``_port_basis`` of them (baked into the
        checkpoint) plus one ``Server.recv`` result record per take
        whose flush survived the crash.  Every reply performs output
        commit first, so an *answered* request's recv record is always
        delivered — the overhang can only be unanswered requests
        consumed in the crash window.  Those are lost in flight:
        un-consume them and requeue at the front, preserving order.
        Re-running after a torn transfer is a no-op (same basis, no
        takes in between)."""
        if self._serve_port is None:
            return
        survived = sum(
            1
            for records in parsed.results.values()
            for record in records
            if record.signature == INGEST_SIGNATURE
        )
        port = self.env.port(self._serve_port)
        accounted = self._port_basis + survived
        lost = port.consumed[accounted:]
        if lost:
            del port.consumed[accounted:]
            port.requeue(lost)
            if metrics is not None:
                metrics.requests_requeued += len(lost)

    # ==================================================================
    # The generation loop
    # ==================================================================
    def _boot(self, main_class: str, args: Optional[List[str]]
              ) -> Tuple[JVM, SideEffectManager]:
        """Generation 0's fresh boot: identical initial state, no replay."""
        settings = self._settings_for(0)
        session = self.env.attach(
            "replica-g0",
            clock_offset_ms=settings.clock_offset_ms,
            entropy_seed=settings.entropy_seed,
        )
        jvm = JVM(self.registry, self.natives, session,
                  self._config_for(0), name="replica-g0")
        jvm.bootstrap(main_class, args)
        return jvm, self._make_se_manager()

    def _arm(self, jvm: JVM, se_manager: SideEffectManager,
             generation: int,
             recovery_metrics: Optional[ReplicationMetrics]) -> _Generation:
        """Instrument ``jvm`` as this generation's primary and perform
        the checkpoint transfer to the fresh backup.  May raise
        :class:`PrimaryCrashed` mid-transfer; ``self._gen`` is already
        populated by then so the crash path has the handles."""
        transport = self._make_transport(generation)
        channel = Channel(batch_records=self.batch_records,
                          transport=transport)
        self.detector.reset(
            source=(lambda t: lambda: t.stats.heartbeats_delivered)(
                transport
            )
        )
        metrics = ReplicationMetrics(role="primary")
        injector = CrashInjector(self._crash_at(generation))
        shipper = LogShipper(channel, metrics, injector, epoch=generation)
        report = GenerationReport(generation=generation,
                                  recovery_metrics=recovery_metrics)
        gen = _Generation(generation, jvm, se_manager, transport, channel,
                          metrics, injector, shipper, report)
        self._gen = gen

        # Quiescent snapshot first, then primary instrumentation —
        # the checkpoint must not contain primary-side hooks.
        checkpoint = take_checkpoint(
            jvm, se_manager, generation=generation,
            env_snapshot=self.env.snapshot_stable(),
        )
        if self.checkpoint_interval is not None:
            # Open the dirty window at the capture point: everything
            # mutated from here on belongs to the first steady delta.
            jvm.heap.advance_era()
        chunks = checkpoint.to_chunks(self.chunk_bytes)
        report.checkpoint_bytes = checkpoint.byte_size
        report.checkpoint_chunks = len(chunks)

        jvm.native_policy = PrimaryNativePolicy(shipper, metrics, se_manager)
        driver = self._strategy.make_primary(
            shipper, metrics, self._settings_for(generation),
            self._config_for(generation),
        )
        driver.install(jvm)
        jvm.run_hooks = _GroupHeartbeatHooks(channel)
        jvm.sync.reevaluate_parked()

        for chunk in chunks:
            shipper.log(chunk)
            metrics.checkpoint_records += 1
            metrics.checkpoint_bytes += len(chunk.data)
        shipper.checkpoint_commit()
        self._adopt_checkpoint(channel, metrics, generation, len(chunks),
                               shipper)
        gen.transfer_ok = True
        if self.checkpoint_interval is not None:
            # Steady-state emission only once the arm transfer is fully
            # adopted: a truncation can therefore never race the
            # re-integration transfer — the log the arm chunks travel
            # through is only ever cut at the adoption boundary itself.
            gen.steady = SteadyCheckpointer(
                shipper, channel, metrics, se_manager,
                interval=self.checkpoint_interval,
                generation=generation,
                chunk_bytes=self.chunk_bytes,
                basis=self._ckpt,
                env_snapshot=self.env.snapshot_stable,
                verify_restore=(self._verify_steady
                                if self.config.verify_checkpoints
                                else None),
                on_adopt=self._adopt_steady,
            )
            jvm.run_hooks = SteadyHooks(jvm.run_hooks, gen.steady)
        return gen

    def _dispose_crash(self, gen: _Generation) -> None:
        """Crash bookkeeping: metrics, report, basis capture, teardown."""
        self._failures += 1
        self._finish_metrics(gen.jvm, gen.metrics, gen.transport)
        gen.report.outcome = ("crashed" if gen.transfer_ok
                              else "crashed_in_transfer")
        gen.report.crash_event = gen.injector.events
        gen.report.events = gen.injector.events
        gen.report.primary_metrics = gen.metrics
        # Fail-stop: volatile state and buffered records die with the
        # primary.
        gen.jvm.session.destroy()
        gen.channel.crash_primary()
        gen.report.detection_intervals = self.detector.await_detection()
        raw = gen.channel.backup_log()
        if gen.transfer_ok:
            # The fresh backup holds checkpoint + post-transfer
            # records: that is the new recovery basis.
            self._exec_raw = raw
            self._stale_raw = []
        else:
            # Torn transfer: the old basis stands; these stamped
            # leavings exist only to be fenced.
            self._stale_raw.extend(raw)
        self.reports.append(gen.report)
        gen.transport.close()

    def _complete(self, gen: _Generation, result: RunResult) -> GroupResult:
        """Normal-completion bookkeeping for the active generation."""
        gen.channel.settle()
        self._finish_metrics(gen.jvm, gen.metrics, gen.transport)
        gen.report.outcome = "completed"
        gen.report.events = gen.injector.events
        gen.report.primary_metrics = gen.metrics
        self.reports.append(gen.report)
        gen.transport.close()
        self.final_jvm = gen.jvm
        return GroupResult("completed", result, self.reports, self._failures)

    def _complete_in_recovery(self, jvm: JVM, result: RunResult,
                              generation: int,
                              recovery_metrics: ReplicationMetrics
                              ) -> GroupResult:
        """The program finished during replay: the recovered machine is
        the sole survivor and its output is final."""
        self._finish_metrics(jvm, recovery_metrics)
        self.final_jvm = jvm
        self.reports.append(GenerationReport(
            generation=generation,
            outcome="completed_in_recovery",
            recovery_metrics=recovery_metrics,
        ))
        return GroupResult("completed", result, self.reports, self._failures)

    def _check_budget(self, generation: int) -> None:
        if generation > self.max_failures:
            raise ReplicationError(
                f"replica group exhausted its failover budget "
                f"({self.max_failures}) — giving up"
            )

    def run(self, main_class: str, args: Optional[List[str]] = None
            ) -> GroupResult:
        """Run under supervision until the program completes, surviving
        every scheduled failure along the way."""
        if self._ran:
            raise AlreadyRanError(
                "ReplicaGroup.run() may only be called once; build a "
                "fresh group for another run"
            )
        self._ran = True
        jvm: Optional[JVM] = None
        se_manager: Optional[SideEffectManager] = None
        recovery_metrics: Optional[ReplicationMetrics] = None
        generation = 0

        while True:
            self._check_budget(generation)
            if jvm is None:
                if generation == 0 and self._ckpt is None \
                        and not self._stale_raw:
                    jvm, se_manager = self._boot(main_class, args)
                    recovery_metrics = None
                else:
                    jvm, se_manager, recovered, recovery_metrics = \
                        self._recover(generation, main_class, args)
                    if recovered is not None:
                        return self._complete_in_recovery(
                            jvm, recovered, generation, recovery_metrics
                        )
            try:
                gen = self._arm(jvm, se_manager, generation,
                                recovery_metrics)
                recovery_metrics = None
                result = jvm.run_to_completion()
                return self._complete(gen, result)
            except PrimaryCrashed:
                self._dispose_crash(self._gen)
                jvm = None
                se_manager = None
                generation += 1

    # ==================================================================
    # Serving lifecycle (resumable request/response operation)
    # ==================================================================
    def start_serving(self, main_class: str,
                      args: Optional[List[str]] = None, *,
                      port: str) -> None:
        """Boot generation 0, arm it (checkpoint transfer to the fresh
        backup), and drive it to its first request wait.

        From here the group alternates between :meth:`submit` /
        :meth:`pump` and failover: a primary crash during any pump is
        absorbed transparently — recovery replays the basis, the
        request port is reconciled for exactly-once consumption, the
        promoted machine re-arms a fresh backup under the next epoch,
        and serving resumes."""
        if self._ran:
            raise AlreadyRanError(
                "this ReplicaGroup already ran; build a fresh group"
            )
        self._ran = True
        self._serve_port = port
        self._serve_main = main_class
        self._serve_args = list(args) if args else None
        jvm, se_manager = self._boot(main_class, self._serve_args)
        self._arm_serving(jvm, se_manager, None)
        self.pump()

    @property
    def serving(self) -> bool:
        """True while the program is parked waiting for requests."""
        return self._ran and self._serve_port is not None \
            and self._serve_result is None

    @property
    def serve_result(self) -> Optional[GroupResult]:
        return self._serve_result

    def submit(self, request: str) -> None:
        """Queue a request without driving the machine."""
        if self._serve_port is None:
            raise ReplicationError(
                "not serving: call start_serving() first"
            )
        self.env.port(self._serve_port).push(request)

    def serve(self, request: str) -> Optional[str]:
        """Deliver one request and pump to the next quiescent point;
        returns the committed response text (None if the program exited
        without answering)."""
        from repro.env.port import request_id

        self.submit(request)
        self.pump()
        return self.env.responses.get(request_id(request))

    def pump(self) -> bool:
        """Drive the active generation until it parks on an empty port
        or the program completes, absorbing any primary crash along the
        way.  Returns True while still serving."""
        if self._serve_result is not None:
            return False
        while True:
            gen = self._gen
            try:
                result = gen.jvm.run_to_completion(pause_on_starvation=True)
                if result is None and gen.steady is not None:
                    # Parked on the empty request port: a quiescent
                    # point — emit if the interval elapsed.  A crash
                    # injected mid-emission falls through to the
                    # failover arm below, like any other.
                    gen.steady.note_park(gen.jvm)
            except PrimaryCrashed:
                self._dispose_crash(gen)
                self._generation += 1
                self._check_budget(self._generation)
                jvm, se_manager, recovered, recovery_metrics = \
                    self._recover(self._generation, self._serve_main,
                                  self._serve_args)
                if recovered is not None:
                    self._serve_result = self._complete_in_recovery(
                        jvm, recovered, self._generation, recovery_metrics
                    )
                    return False
                self._arm_serving(jvm, se_manager, recovery_metrics)
                if self._serve_result is not None:
                    return False
                continue
            if result is None:
                return True                # parked, waiting for requests
            self._serve_result = self._complete(gen, result)
            return False

    def stop_serving(self, stop_request: str) -> GroupResult:
        """Deliver ``stop_request`` and run the program to completion."""
        self.submit(stop_request)
        self.pump()
        if self._serve_result is None:
            raise ReplicationError(
                f"group still serving after stop request {stop_request!r}"
            )
        return self._serve_result

    def _arm_serving(self, jvm: JVM, se_manager: SideEffectManager,
                     recovery_metrics: Optional[ReplicationMetrics]) -> None:
        """Arm a generation for serving, absorbing crashes that strike
        during the checkpoint transfer itself."""
        while True:
            try:
                self._arm(jvm, se_manager, self._generation,
                          recovery_metrics)
                return
            except PrimaryCrashed:
                self._dispose_crash(self._gen)
                self._generation += 1
                self._check_budget(self._generation)
                jvm, se_manager, recovered, recovery_metrics = \
                    self._recover(self._generation, self._serve_main,
                                  self._serve_args)
                if recovered is not None:
                    self._serve_result = self._complete_in_recovery(
                        jvm, recovered, self._generation, recovery_metrics
                    )
                    return
